//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ (the same family `rand`'s `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64. Streams are
//! deterministic given a seed but are **not** bit-compatible with the
//! upstream crate — nothing in this workspace depends on upstream
//! streams, only on internal determinism.

#![warn(missing_docs)]

pub mod rngs;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type: `f64` uniform in
    /// `[0, 1)`, integers uniform over their whole range, `bool` fair.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(&mut |_| self.next_u64())
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut |_| self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value; `next` yields raw 64-bit words (its argument is
    /// ignored and exists only to keep the closure signature nameable).
    fn sample_standard(next: &mut dyn FnMut(()) -> u64) -> Self;
}

impl Standard for f64 {
    fn sample_standard(next: &mut dyn FnMut(()) -> u64) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (next(()) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard(next: &mut dyn FnMut(()) -> u64) -> Self {
        next(())
    }
}

impl Standard for u32 {
    fn sample_standard(next: &mut dyn FnMut(()) -> u64) -> Self {
        (next(()) >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard(next: &mut dyn FnMut(()) -> u64) -> Self {
        next(()) & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T;
}

/// Uniform u64 in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64(span: u64, next: &mut dyn FnMut(()) -> u64) -> u64 {
    debug_assert!(span > 0);
    // Zone: the largest multiple of `span` that fits in u64.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = next(());
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(span, next) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is in range.
                    return next(()) as $t;
                }
                lo + uniform_u64(span, next) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(span, next) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return next(()) as $t;
                }
                lo.wrapping_add(uniform_u64(span, next) as $t)
            }
        }
    )*};
}

signed_int_range!(i64: u64, i32: u32, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(next);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = f64::sample_standard(next);
        lo + unit * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0u64..=4);
            assert!(y <= 4);
            seen_lo |= y == 0;
            seen_hi |= y == 4;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
    }

    #[test]
    fn f64_range_scales() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let x = rng.gen_range(0.05..0.5);
            assert!((0.05..0.5).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
