//! Validate the optimizer's world model against reality: execute plans on
//! synthetic data with the mini engine and compare (a) estimated vs
//! measured intermediate sizes, (b) cost-model ranking vs measured work.

use ljqo::prelude::*;
use ljqo_cost::estimate::intermediate_sizes;
use ljqo_exec::{execute_order, generate_data};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A moderate query whose execution is fast but non-trivial.
///
/// Cardinalities are kept small so plans execute in milliseconds, and the
/// distinct-value fractions are kept high: tiny join-column domains make
/// the *realized* selectivity of a join a high-variance random variable,
/// and those errors compound multiplicatively over an 8-join chain. With
/// domains of at least half the cardinality, measured sizes concentrate
/// tightly around the uniformity-assumption estimates.
fn test_query(seed: u64) -> Query {
    let spec = ljqo_workload::QuerySpec {
        cardinalities: ljqo_workload::CardinalityDist::Uniform(50, 800),
        distinct_values: ljqo_workload::DistinctDist(vec![(0.5, 1.0, 1.0)]),
        ..Default::default()
    };
    ljqo_workload::generate_query(&spec, 8, seed)
}

#[test]
fn estimated_sizes_track_measured_sizes() {
    // Under uniformity + independence the estimates are unbiased for
    // these uncorrelated synthetic columns, but any single step is one
    // sample of a high-variance count (and errors compound down the
    // chain). Within one query the errors are also *correlated* across
    // orders — every order reuses the same realized join selectivities —
    // so we sample several independent (query, dataset) pairs and assert
    // on the pooled distribution of log-ratios: typical agreement within
    // 2x, 95th percentile within 8x.
    let mut log_ratios = Vec::new();
    for qseed in 1..=4u64 {
        let query = test_query(qseed);
        let data = generate_data(&query, 42 + qseed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(7 ^ qseed);
        for _ in 0..10 {
            let order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
            let est = intermediate_sizes(&query, order.rels());
            let Ok(stats) = execute_order(&query, &data, order.rels()) else {
                continue; // blowup guard tripped; skip this order
            };
            for (e, &m) in est.iter().zip(&stats.intermediate_rows) {
                let m = m as f64;
                if m >= 20.0 {
                    log_ratios.push((e / m).ln());
                }
            }
        }
    }
    assert!(log_ratios.len() >= 10, "too few comparable steps");
    let mean_abs = log_ratios.iter().map(|r| r.abs()).sum::<f64>() / log_ratios.len() as f64;
    let mut abs: Vec<f64> = log_ratios.iter().map(|r| r.abs()).collect();
    abs.sort_by(f64::total_cmp);
    let p95 = abs[(abs.len() * 95 / 100).min(abs.len() - 1)];
    assert!(
        mean_abs <= 2.0f64.ln(),
        "typical estimate error {:.2}x exceeds 2x",
        mean_abs.exp()
    );
    assert!(
        p95 <= 8.0f64.ln(),
        "95th-percentile estimate error {:.2}x exceeds 8x",
        p95.exp()
    );
}

#[test]
fn cost_model_ranking_predicts_measured_work() {
    let query = test_query(2);
    let data = generate_data(&query, 43);
    let comp: Vec<RelId> = query.rel_ids().collect();
    let model = MemoryCostModel::default();
    let mut rng = SmallRng::seed_from_u64(9);

    // Gather (model cost, measured work) for a batch of random plans.
    let mut points: Vec<(f64, f64)> = Vec::new();
    for _ in 0..40 {
        let order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let cost = model.order_cost(&query, order.rels());
        if let Ok(stats) = execute_order(&query, &data, order.rels()) {
            points.push((cost, stats.total_work() as f64));
        }
    }
    assert!(points.len() >= 20, "too many blowups");

    // Rank correlation: count concordant pairs.
    let mut concordant = 0;
    let mut total = 0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let (c1, w1) = points[i];
            let (c2, w2) = points[j];
            if (c1 - c2).abs() < 1e-9 || (w1 - w2).abs() < 0.5 {
                continue;
            }
            total += 1;
            if (c1 < c2) == (w1 < w2) {
                concordant += 1;
            }
        }
    }
    assert!(
        concordant * 10 >= total * 7,
        "cost model ranks only {concordant}/{total} pairs correctly"
    );
}

#[test]
fn optimized_plan_does_less_work_than_median_random_plan() {
    let query = test_query(3);
    let data = generate_data(&query, 44);
    let comp: Vec<RelId> = query.rel_ids().collect();
    let model = MemoryCostModel::default();

    let best = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Iai).with_seed(5),
    );
    let best_work = execute_order(&query, &data, best.plan.segments[0].rels())
        .expect("optimized plan must execute")
        .total_work();

    let mut rng = SmallRng::seed_from_u64(11);
    let mut works: Vec<u64> = Vec::new();
    for _ in 0..9 {
        let order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        if let Ok(stats) = execute_order(&query, &data, order.rels()) {
            works.push(stats.total_work());
        }
    }
    works.sort_unstable();
    let median = works[works.len() / 2];
    assert!(
        best_work <= median,
        "optimized plan did {best_work} tuples of work, median random {median}"
    );
}

#[test]
fn final_result_size_is_plan_invariant_in_execution() {
    let query = test_query(4);
    let data = generate_data(&query, 45);
    let comp: Vec<RelId> = query.rel_ids().collect();
    let mut rng = SmallRng::seed_from_u64(13);

    let mut finals = Vec::new();
    for _ in 0..4 {
        let order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        if let Ok(stats) = execute_order(&query, &data, order.rels()) {
            finals.push(stats.final_rows());
        }
    }
    assert!(finals.len() >= 2);
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "join result must not depend on the order: {finals:?}"
    );
}
