//! Small-scale statistical checks of the paper's headline claims. These
//! are deliberately modest (few queries, small N) so the test suite stays
//! fast; the bench harness reruns them at full scale.

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 20;
const QUERIES: u64 = 8;

/// Best cost found by `method` at time limit `tau` on a query.
fn run(query: &Query, method: Method, tau: f64, seed: u64) -> f64 {
    let model = MemoryCostModel::default();
    let budget = TimeLimit::of(tau).units(query.n_joins(), 5.0);
    let mut ev = Evaluator::with_budget(query, &model, budget);
    let comp: Vec<RelId> = query.rel_ids().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    MethodRunner::default().run(method, &mut ev, &comp, &mut rng);
    ev.best_cost()
}

/// Mean of per-query cost ratios method_a / method_b.
fn mean_ratio(method_a: Method, method_b: Method, tau: f64) -> f64 {
    let mut sum = 0.0;
    for q in 0..QUERIES {
        let query = generate_query(&Benchmark::Default.spec(), N, 0xc1a + q);
        let a = run(&query, method_a, tau, q ^ 0x1);
        let b = run(&query, method_b, tau, q ^ 0x2);
        sum += (a / b).clamp(0.1, 10.0);
    }
    sum / QUERIES as f64
}

#[test]
fn claim_sa_is_inferior_to_ii_at_generous_limits() {
    // Paper §6.4: "Simulated annealing alone and the combinations
    // involving simulated annealing are clearly inferior."
    let ratio = mean_ratio(Method::Sa, Method::Ii, 9.0);
    assert!(ratio >= 1.0, "SA/II mean ratio {ratio} < 1");
}

#[test]
fn claim_iai_at_least_matches_ii_at_generous_limits() {
    // Paper: IAI is the method of choice at 9N².
    let ratio = mean_ratio(Method::Iai, Method::Ii, 9.0);
    assert!(ratio <= 1.005, "IAI/II mean ratio {ratio} > 1");
}

#[test]
fn claim_iai_beats_sa_combinations() {
    // At this small sample the ratios are near 1 but must not favor the
    // SA combinations by any meaningful margin.
    for sa_combo in [Method::Saa, Method::Sak] {
        let ratio = mean_ratio(Method::Iai, sa_combo, 9.0);
        assert!(ratio <= 1.01, "IAI vs {sa_combo}: ratio {ratio}");
    }
}

#[test]
fn claim_augmentation_criterion3_beats_criterion1() {
    // Table 1: minimum join selectivity (3) clearly beats minimum
    // cardinality (1).
    let mut wins3 = 0;
    for q in 0..QUERIES {
        let query = generate_query(&Benchmark::Default.spec(), N, 0x7a + q);
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut best = [f64::INFINITY; 2];
        for (i, crit) in [
            AugmentationCriterion::MinSelectivity,
            AugmentationCriterion::MinCardinality,
        ]
        .into_iter()
        .enumerate()
        {
            let h = AugmentationHeuristic::new(crit);
            let mut ev = Evaluator::new(&query, &model);
            for order in h.generate_all(&query, &comp) {
                best[i] = best[i].min(ev.cost(&order));
            }
        }
        if best[0] <= best[1] {
            wins3 += 1;
        }
    }
    assert!(
        wins3 * 2 > QUERIES as usize,
        "criterion 3 won only {wins3}/{QUERIES} queries"
    );
}

#[test]
fn claim_kbz_is_much_more_expensive_per_state_than_augmentation() {
    // Paper §6.4: KBZ "takes much longer to generate a single state than
    // the augmentation heuristic" — our budget accounting must reflect
    // O(N²) vs O(N) per state.
    let query = generate_query(&Benchmark::Default.spec(), 30, 0x33);
    let model = MemoryCostModel::default();
    let comp: Vec<RelId> = query.rel_ids().collect();

    let mut ev = Evaluator::new(&query, &model);
    KbzHeuristic::default().generate(&mut ev, &comp).unwrap();
    let kbz_units_per_state = ev.used();

    let mut ev = Evaluator::new(&query, &model);
    ev.charge(comp.len() as u64);
    let aug = AugmentationHeuristic::default();
    let first = AugmentationHeuristic::first_relations(&query, &comp)[0];
    ev.cost(&aug.generate(&query, &comp, first));
    let aug_units_per_state = ev.used();

    assert!(
        kbz_units_per_state >= 10 * aug_units_per_state,
        "KBZ {kbz_units_per_state} units vs augmentation {aug_units_per_state}"
    );
}

#[test]
fn claim_heuristics_beat_random_states_on_average() {
    // §6.4: "The heuristic provides (on the average) better starting
    // points than the random state generator."
    let model = MemoryCostModel::default();
    let mut aug_better = 0;
    for q in 0..QUERIES {
        let query = generate_query(&Benchmark::Default.spec(), N, 0x9d + q);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut ev = Evaluator::new(&query, &model);

        let aug = AugmentationHeuristic::default();
        let first = AugmentationHeuristic::first_relations(&query, &comp)[0];
        let aug_cost = ev.cost(&aug.generate(&query, &comp, first));

        let mut rng = SmallRng::seed_from_u64(q);
        let mut random_mean = 0.0;
        for _ in 0..10 {
            let o = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
            random_mean += ev.cost_uncharged(&o) / 10.0;
        }
        if aug_cost < random_mean {
            aug_better += 1;
        }
    }
    assert!(
        aug_better as u64 * 4 >= QUERIES * 3,
        "augmentation beat the random mean on only {aug_better}/{QUERIES} queries"
    );
}

#[test]
fn claim_method_ranking_survives_the_disk_cost_model() {
    // §6.2: changing the cost model does not alter the ordering.
    let model = DiskCostModel::default();
    let mut sa_worse = 0;
    for q in 0..QUERIES {
        let query = generate_query(&Benchmark::Default.spec(), N, 0xd15c + q);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let budget = TimeLimit::of(9.0).units(N, 5.0);
        let mut costs = [0.0f64; 2];
        for (i, m) in [Method::Sa, Method::Iai].into_iter().enumerate() {
            let mut ev = Evaluator::with_budget(&query, &model, budget);
            let mut rng = SmallRng::seed_from_u64(q ^ 0x8);
            MethodRunner::default().run(m, &mut ev, &comp, &mut rng);
            costs[i] = ev.best_cost();
        }
        if costs[0] >= costs[1] {
            sa_worse += 1;
        }
    }
    assert!(
        sa_worse as u64 * 4 >= QUERIES * 3,
        "under the disk model SA beat IAI on {}/{} queries",
        QUERIES as usize - sa_worse,
        QUERIES
    );
}
