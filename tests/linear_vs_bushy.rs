//! Cross-crate checks of the bushy-tree DP against the linear DP and the
//! randomized methods, on workload-generated queries (the paper's open
//! problem about restricting to outer linear trees).

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};

#[test]
fn bushy_optimum_lower_bounds_linear_methods() {
    let model = MemoryCostModel::default();
    for seed in 0..6u64 {
        let query = generate_query(&Benchmark::Default.spec(), 10, 0xb5 + seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let (_, linear) = optimal_order_dp(&query, &comp, &model).unwrap();
        let (tree, bushy) = optimal_bushy_dp(&query, &comp, &model).unwrap().unwrap();
        assert!(
            bushy <= linear * (1.0 + 1e-12),
            "seed {seed}: bushy {bushy} > linear {linear}"
        );
        assert_eq!(tree.n_leaves(), comp.len());

        // Every method's (linear-space) result is bounded below by the
        // bushy optimum too.
        let r = optimize(
            &query,
            &model,
            &OptimizerConfig::new(Method::Iai).with_seed(seed),
        );
        assert!(r.cost >= bushy - bushy * 1e-9);
    }
}

#[test]
fn linear_assumption_holds_on_default_benchmark() {
    // The paper assumes good linear trees exist; on the default benchmark
    // at N = 10 the linear optimum should typically be within a small
    // factor of the bushy optimum.
    let model = MemoryCostModel::default();
    let mut worst: f64 = 1.0;
    for seed in 0..8u64 {
        let query = generate_query(&Benchmark::Default.spec(), 10, 0x11ea + seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let (_, linear) = optimal_order_dp(&query, &comp, &model).unwrap();
        let (_, bushy) = optimal_bushy_dp(&query, &comp, &model).unwrap().unwrap();
        worst = worst.max(linear / bushy);
    }
    assert!(
        worst < 3.0,
        "linear optimum strayed {worst}x from the bushy optimum"
    );
}
