//! Cross-crate integration tests: workload generation → optimization →
//! plan validity, across methods, models, and benchmarks.

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};

fn assert_plan_covers_query(query: &Query, plan: &Plan) {
    assert_eq!(plan.n_relations(), query.n_relations());
    let mut seen = vec![false; query.n_relations()];
    for seg in &plan.segments {
        assert!(
            ljqo::plan::validity::is_valid(query.graph(), seg.rels()),
            "segment {seg} is invalid"
        );
        for r in seg.rels() {
            assert!(!seen[r.index()], "{r} appears twice");
            seen[r.index()] = true;
        }
    }
    assert!(
        seen.into_iter().all(|s| s),
        "plan must cover every relation"
    );
}

#[test]
fn every_method_optimizes_generated_queries() {
    let model = MemoryCostModel::default();
    for n in [10usize, 25] {
        let query = generate_query(&Benchmark::Default.spec(), n, 0xe2e);
        for method in Method::ALL {
            let config = OptimizerConfig::new(method)
                .with_time_limit(1.0)
                .with_seed(5);
            let result = optimize(&query, &model, &config);
            assert_plan_covers_query(&query, &result.plan);
            assert!(result.cost.is_finite(), "{method} at N={n}");
        }
    }
}

#[test]
fn both_cost_models_yield_valid_plans_on_every_benchmark() {
    let memory = MemoryCostModel::default();
    let disk = DiskCostModel::default();
    for bench in Benchmark::ALL {
        let query = generate_query(&bench.spec(), 15, 0xbe).clone();
        for model in [&memory as &dyn CostModel, &disk as &dyn CostModel] {
            let config = OptimizerConfig::new(Method::Iai)
                .with_time_limit(2.0)
                .with_seed(1);
            let result = optimize(&query, model, &config);
            assert_plan_covers_query(&query, &result.plan);
            assert!(
                result.cost > 0.0 && result.cost.is_finite(),
                "{} under {}",
                bench.name(),
                model.name()
            );
        }
    }
}

#[test]
fn methods_reach_dp_optimum_on_small_queries() {
    // With the full 9N² budget on N=10, the paper-recommended IAI should
    // essentially always find the DP optimum of the default benchmark.
    let model = MemoryCostModel::default();
    let mut hit = 0;
    let total = 10;
    for seed in 0..total {
        let query = generate_query(&Benchmark::Default.spec(), 10, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let (_, opt) = optimal_order_dp(&query, &comp, &model).unwrap();
        let result = optimize(
            &query,
            &model,
            &OptimizerConfig::new(Method::Iai).with_seed(seed ^ 0xf),
        );
        assert!(
            result.cost >= opt - opt * 1e-9,
            "cost below proven optimum: optimizer or DP is broken"
        );
        if result.cost <= opt * 1.02 {
            hit += 1;
        }
    }
    assert!(
        hit >= 8,
        "IAI at 9N² found the optimum on only {hit}/{total} small queries"
    );
}

#[test]
fn more_budget_never_hurts() {
    let model = MemoryCostModel::default();
    let query = generate_query(&Benchmark::Default.spec(), 30, 77);
    for method in [Method::Ii, Method::Iai, Method::Sa] {
        let mut prev = f64::INFINITY;
        for tau in [0.3, 1.0, 3.0, 9.0] {
            let config = OptimizerConfig::new(method)
                .with_time_limit(tau)
                .with_seed(4);
            let cost = optimize(&query, &model, &config).cost;
            assert!(
                cost <= prev * (1.0 + 1e-9),
                "{method}: cost rose from {prev} to {cost} at tau={tau}"
            );
            prev = cost;
        }
    }
}

#[test]
fn optimizer_is_deterministic_across_methods() {
    let model = MemoryCostModel::default();
    let query = generate_query(&Benchmark::GraphStar.spec(), 20, 9);
    for method in Method::ALL {
        let config = OptimizerConfig::new(method)
            .with_time_limit(1.0)
            .with_seed(31);
        let a = optimize(&query, &model, &config);
        let b = optimize(&query, &model, &config);
        assert_eq!(a.plan, b.plan, "{method}");
        assert_eq!(a.units_used, b.units_used, "{method}");
    }
}

#[test]
fn disconnected_query_costs_include_cross_products() {
    // Two components; the plan's cost must exceed the sum of the
    // components' own costs (the cross product is not free).
    let query = QueryBuilder::new()
        .relation("a", 1000)
        .relation("b", 100)
        .relation("x", 2000)
        .relation("y", 50)
        .join("a", "b", 0.01)
        .join("x", "y", 0.001)
        .build()
        .unwrap();
    let model = MemoryCostModel::default();
    let result = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Ii).with_seed(2),
    );
    assert_eq!(result.plan.segments.len(), 2);

    let seg_costs: f64 = result
        .plan
        .segments
        .iter()
        .map(|s| model.order_cost(&query, s.rels()))
        .sum();
    assert!(result.cost > seg_costs, "{} !> {seg_costs}", result.cost);
}

#[test]
fn plan_display_and_explain_are_consistent() {
    let query = generate_query(&Benchmark::Default.spec(), 12, 5);
    let model = MemoryCostModel::default();
    let result = optimize(
        &query,
        &model,
        &OptimizerConfig::new(Method::Agi).with_seed(8),
    );
    let tree = result.plan.to_tree();
    assert_eq!(tree.n_leaves(), query.n_relations());
    let explain = tree.explain(&query);
    // Every relation name appears in the explanation.
    for rel in query.relations() {
        assert!(explain.contains(&rel.name), "missing {}", rel.name);
    }
    // Connected query -> no cross products in the explanation.
    assert!(!explain.contains("CrossProduct"));
}
