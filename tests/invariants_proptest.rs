//! Property-based invariants over randomly generated queries, using
//! proptest to drive the workload generator's seed/shape space.

use proptest::prelude::*;

use ljqo::prelude::*;
use ljqo::plan::validity::is_valid;
use ljqo_workload::{generate_query, Benchmark};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The workload generator always produces connected queries with the
    /// requested join count, and the identity order is valid.
    #[test]
    fn generator_invariants(bench in arb_benchmark(), n in 2usize..40, seed in any::<u64>()) {
        let query = generate_query(&bench.spec(), n, seed);
        prop_assert_eq!(query.n_joins(), n);
        prop_assert!(query.graph().is_connected());
        let identity: Vec<RelId> = query.rel_ids().collect();
        prop_assert!(is_valid(query.graph(), &identity));
        for e in query.graph().edges() {
            prop_assert!(e.selectivity > 0.0 && e.selectivity <= 1.0);
        }
    }

    /// Random valid orders are valid permutations of the whole component.
    #[test]
    fn random_order_invariants(n in 2usize..40, seed in any::<u64>(), rng_seed in any::<u64>()) {
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        prop_assert_eq!(order.len(), comp.len());
        prop_assert!(is_valid(query.graph(), order.rels()));
    }

    /// Moves proposed by the generator preserve validity and are exactly
    /// undoable.
    #[test]
    fn move_invariants(n in 3usize..30, seed in any::<u64>(), rng_seed in any::<u64>()) {
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let mut gen = MoveGenerator::new(query.n_relations(), MoveSet::default());
        for _ in 0..20 {
            let before = order.clone();
            if let Some(mv) = gen.propose(query.graph(), &mut order, &mut rng) {
                prop_assert!(is_valid(query.graph(), order.rels()));
                mv.undo(&mut order);
                prop_assert_eq!(&order, &before);
                mv.apply(&mut order);
            }
        }
    }

    /// Augmentation produces a valid full permutation for every criterion
    /// and every choice of first relation.
    #[test]
    fn augmentation_invariants(n in 2usize..25, seed in any::<u64>()) {
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        for crit in AugmentationCriterion::ALL {
            let h = AugmentationHeuristic::new(crit);
            for order in h.generate_all(&query, &comp) {
                prop_assert_eq!(order.len(), comp.len());
                prop_assert!(is_valid(query.graph(), order.rels()));
            }
        }
    }

    /// KBZ produces a valid full permutation on arbitrary (cyclic) graphs.
    #[test]
    fn kbz_invariants(n in 2usize..25, seed in any::<u64>()) {
        let query = generate_query(&Benchmark::GraphDense.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&query, &model);
        let order = KbzHeuristic::default().generate(&mut ev, &comp).unwrap();
        prop_assert_eq!(order.len(), comp.len());
        prop_assert!(is_valid(query.graph(), order.rels()));
    }

    /// Costs are positive and finite on valid orders under both models,
    /// and the final estimated size is order-invariant.
    #[test]
    fn cost_invariants(n in 2usize..30, seed in any::<u64>(), rng_seed in any::<u64>()) {
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let a = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let b = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        for model in [&MemoryCostModel::default() as &dyn CostModel,
                      &DiskCostModel::default() as &dyn CostModel] {
            let ca = model.order_cost(&query, a.rels());
            let cb = model.order_cost(&query, b.rels());
            prop_assert!(ca > 0.0 && ca.is_finite());
            prop_assert!(cb > 0.0 && cb.is_finite());
            // The lower bound is admissible for both orders.
            let lb = model.lower_bound(&query, &comp);
            prop_assert!(lb <= ca * (1.0 + 1e-12) && lb <= cb * (1.0 + 1e-12));
        }
        let sa = ljqo::cost::estimate::final_result_size(&query, a.rels());
        let ia = ljqo::cost::estimate::intermediate_sizes(&query, a.rels());
        let ib = ljqo::cost::estimate::intermediate_sizes(&query, b.rels());
        let (fa, fb) = (*ia.last().unwrap(), *ib.last().unwrap());
        prop_assert!((fa - fb).abs() <= fa.max(fb) * 1e-6);
        prop_assert!((fa - sa).abs() <= fa.max(sa) * 1e-6);
    }

    /// Local improvement never worsens an order and preserves validity.
    #[test]
    fn local_improvement_invariants(n in 3usize..20, seed in any::<u64>(),
                                    cluster in 2usize..5, rng_seed in any::<u64>()) {
        let overlap = cluster - 1;
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let before = model.order_cost(&query, order.rels());
        let mut ev = Evaluator::new(&query, &model);
        LocalImprovement::new(cluster, overlap).improve(&mut ev, &mut order);
        let after = model.order_cost(&query, order.rels());
        prop_assert!(after <= before * (1.0 + 1e-12));
        prop_assert!(is_valid(query.graph(), order.rels()));
        prop_assert_eq!(order.len(), comp.len());
    }

    /// The evaluator's budget is respected up to one indivisible step and
    /// scaled-cost statistics stay within [1, 10].
    #[test]
    fn budget_and_scaling_invariants(n in 3usize..25, seed in any::<u64>(), budget in 16u64..5_000) {
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, budget);
        let mut rng = SmallRng::seed_from_u64(seed);
        MethodRunner::default().run(Method::Iai, &mut ev, &comp, &mut rng);
        let slack = 64 + 5 * query.n_relations() as u64;
        prop_assert!(ev.used() <= budget + slack);
        let best = ev.best_cost();
        prop_assert!(best.is_finite());
        let s = scaled_cost(best * 3.0, best);
        prop_assert!((1.0..=10.0).contains(&s));
    }

    /// DP (when feasible) lower-bounds every method's result.
    #[test]
    fn dp_is_a_true_lower_bound(n in 4usize..11, seed in any::<u64>()) {
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let (_, opt) = optimal_order_dp(&query, &comp, &model).unwrap();
        for method in [Method::Ii, Method::Iai, Method::Agi] {
            let mut ev = Evaluator::with_budget(&query, &model, 2_000);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5);
            MethodRunner::default().run(method, &mut ev, &comp, &mut rng);
            prop_assert!(ev.best_cost() >= opt - opt * 1e-9,
                         "{} found {} below optimum {}", method, ev.best_cost(), opt);
        }
    }
}
