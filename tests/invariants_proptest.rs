//! Property-based invariants over randomly generated queries, driving
//! the workload generator's seed/shape space. Implemented as seeded-RNG
//! loops: the build is offline, so no proptest — every case is
//! reproducible from its printed seed.

use ljqo::plan::validity::is_valid;
use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

fn arb_benchmark(rng: &mut SmallRng) -> Benchmark {
    Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())]
}

/// The workload generator always produces connected queries with the
/// requested join count, and the identity order is valid.
#[test]
fn generator_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0001 ^ case);
        let bench = arb_benchmark(&mut rng);
        let n = rng.gen_range(2usize..40);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&bench.spec(), n, seed);
        assert_eq!(query.n_joins(), n, "case {case}");
        assert!(query.graph().is_connected(), "case {case}");
        let identity: Vec<RelId> = query.rel_ids().collect();
        assert!(is_valid(query.graph(), &identity), "case {case}");
        for e in query.graph().edges() {
            assert!(e.selectivity > 0.0 && e.selectivity <= 1.0, "case {case}");
        }
    }
}

/// Random valid orders are valid permutations of the whole component.
#[test]
fn random_order_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0002 ^ case);
        let n = rng.gen_range(2usize..40);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        assert_eq!(order.len(), comp.len(), "case {case}");
        assert!(is_valid(query.graph(), order.rels()), "case {case}");
    }
}

/// Moves proposed by the generator preserve validity and are exactly
/// undoable.
#[test]
fn move_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0003 ^ case);
        let n = rng.gen_range(3usize..30);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let mut order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let mut gen = MoveGenerator::new(query.n_relations(), MoveSet::default());
        for _ in 0..20 {
            let before = order.clone();
            if let Some(mv) = gen.propose(query.graph(), &mut order, &mut rng) {
                assert!(is_valid(query.graph(), order.rels()), "case {case}");
                mv.undo(&mut order);
                assert_eq!(&order, &before, "case {case}");
                mv.apply(&mut order);
            }
        }
    }
}

/// Augmentation produces a valid full permutation for every criterion
/// and every choice of first relation.
#[test]
fn augmentation_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0004 ^ case);
        let n = rng.gen_range(2usize..25);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        for crit in AugmentationCriterion::ALL {
            let h = AugmentationHeuristic::new(crit);
            for order in h.generate_all(&query, &comp) {
                assert_eq!(order.len(), comp.len(), "case {case}");
                assert!(is_valid(query.graph(), order.rels()), "case {case}");
            }
        }
    }
}

/// KBZ produces a valid full permutation on arbitrary (cyclic) graphs.
#[test]
fn kbz_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0005 ^ case);
        let n = rng.gen_range(2usize..25);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&Benchmark::GraphDense.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&query, &model);
        let order = KbzHeuristic::default().generate(&mut ev, &comp).unwrap();
        assert_eq!(order.len(), comp.len(), "case {case}");
        assert!(is_valid(query.graph(), order.rels()), "case {case}");
    }
}

/// Costs are positive and finite on valid orders under both models,
/// and the final estimated size is order-invariant.
#[test]
fn cost_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0006 ^ case);
        let n = rng.gen_range(2usize..30);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let a = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let b = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        for model in [
            &MemoryCostModel::default() as &dyn CostModel,
            &DiskCostModel::default() as &dyn CostModel,
        ] {
            let ca = model.order_cost(&query, a.rels());
            let cb = model.order_cost(&query, b.rels());
            assert!(ca > 0.0 && ca.is_finite(), "case {case}");
            assert!(cb > 0.0 && cb.is_finite(), "case {case}");
            // The lower bound is admissible for both orders.
            let lb = model.lower_bound(&query, &comp);
            assert!(
                lb <= ca * (1.0 + 1e-12) && lb <= cb * (1.0 + 1e-12),
                "case {case}"
            );
        }
        let sa = ljqo::cost::estimate::final_result_size(&query, a.rels());
        let ia = ljqo::cost::estimate::intermediate_sizes(&query, a.rels());
        let ib = ljqo::cost::estimate::intermediate_sizes(&query, b.rels());
        let (fa, fb) = (*ia.last().unwrap(), *ib.last().unwrap());
        assert!((fa - fb).abs() <= fa.max(fb) * 1e-6, "case {case}");
        assert!((fa - sa).abs() <= fa.max(sa) * 1e-6, "case {case}");
    }
}

/// Local improvement never worsens an order and preserves validity.
#[test]
fn local_improvement_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0007 ^ case);
        let n = rng.gen_range(3usize..20);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let cluster = rng.gen_range(2usize..5);
        let overlap = cluster - 1;
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let mut order = ljqo::plan::random_valid_order(query.graph(), &comp, &mut rng);
        let before = model.order_cost(&query, order.rels());
        let mut ev = Evaluator::new(&query, &model);
        LocalImprovement::new(cluster, overlap).improve(&mut ev, &mut order);
        let after = model.order_cost(&query, order.rels());
        assert!(after <= before * (1.0 + 1e-12), "case {case}");
        assert!(is_valid(query.graph(), order.rels()), "case {case}");
        assert_eq!(order.len(), comp.len(), "case {case}");
    }
}

/// The evaluator's budget is respected up to one indivisible step and
/// scaled-cost statistics stay within [1, 10].
#[test]
fn budget_and_scaling_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0008 ^ case);
        let n = rng.gen_range(3usize..25);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let budget = rng.gen_range(16u64..5_000);
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, budget);
        let mut method_rng = SmallRng::seed_from_u64(seed);
        MethodRunner::default().run(Method::Iai, &mut ev, &comp, &mut method_rng);
        let slack = 64 + 5 * query.n_relations() as u64;
        assert!(ev.used() <= budget + slack, "case {case}");
        let best = ev.best_cost();
        assert!(best.is_finite(), "case {case}");
        let s = scaled_cost(best * 3.0, best);
        assert!((1.0..=10.0).contains(&s), "case {case}");
    }
}

/// DP (when feasible) lower-bounds every method's result.
#[test]
fn dp_is_a_true_lower_bound() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1f1f_0009 ^ case);
        let n = rng.gen_range(4usize..11);
        let seed: u64 = rng.gen_range(0u64..u64::MAX);
        let query = generate_query(&Benchmark::Default.spec(), n, seed);
        let comp: Vec<RelId> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let (_, opt) = optimal_order_dp(&query, &comp, &model).unwrap();
        for method in [Method::Ii, Method::Iai, Method::Agi] {
            let mut ev = Evaluator::with_budget(&query, &model, 2_000);
            let mut method_rng = SmallRng::seed_from_u64(seed ^ 0x5);
            MethodRunner::default().run(method, &mut ev, &comp, &mut method_rng);
            assert!(
                ev.best_cost() >= opt - opt * 1e-9,
                "case {case}: {} found {} below optimum {}",
                method,
                ev.best_cost(),
                opt
            );
        }
    }
}
