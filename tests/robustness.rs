//! Fault-injection and degradation tests for the hardened optimize path.
//!
//! The optimizer driver promises: give it a *validated* catalog and it
//! returns a valid plan whenever one exists — even when the cost model
//! panics or emits `NaN`, when workers die, or when the wall-clock
//! deadline has already passed. Give it an *invalid* catalog and it
//! returns a typed [`CatalogError`] instead of panicking. These tests
//! exercise every rung of that ladder with deterministic faults.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use ljqo::parallel::run_parallel;
use ljqo::prelude::*;
use ljqo_cost::{FaultMode, FaultyCostModel};
use ljqo_plan::validity::is_valid;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn chain_query() -> Query {
    QueryBuilder::new()
        .relation("a", 3000)
        .relation("b", 12)
        .relation("c", 700)
        .relation("d", 55)
        .relation("e", 1400)
        .relation("f", 90)
        .join("a", "b", 0.01)
        .join("b", "c", 0.002)
        .join("c", "d", 0.05)
        .join("d", "e", 0.001)
        .join("e", "f", 0.02)
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------
// Worker panic isolation
// ---------------------------------------------------------------------

#[test]
fn parallel_run_survives_all_but_one_worker_panicking() {
    let q = chain_query();
    let comp: Vec<RelId> = q.rel_ids().collect();
    let runner = MethodRunner::default();
    let workers = 4;
    // Every worker thread except the first one to evaluate panics on
    // every evaluation: 3 of 4 workers die.
    let model = FaultyCostModel::new(
        MemoryCostModel::default(),
        FaultMode::PanicOnAllButFirstThread,
    );
    let r = run_parallel(&q, &model, &runner, Method::Ii, &comp, 4_000, workers, 9)
        .expect("the surviving worker must still produce a plan");
    assert_eq!(r.workers_failed, workers - 1);
    assert!(is_valid(q.graph(), r.order.rels()));
    assert!(r.cost.is_finite());
    assert!(r.n_evals > 0);
}

#[test]
fn parallel_run_with_every_worker_dead_returns_none() {
    let q = chain_query();
    let comp: Vec<RelId> = q.rel_ids().collect();
    let runner = MethodRunner::default();
    // The very first evaluation panics, and with a share of 1 unit each
    // every other worker's first evaluation is also its last chance.
    let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::PanicOnKth(1));
    let r = run_parallel(&q, &model, &runner, Method::Ii, &comp, 4_000, 4, 9);
    // Whichever worker drew the fault died; the others survive, so a
    // result still comes back — but the failure must be accounted.
    let r = r.expect("three healthy workers remain");
    assert_eq!(r.workers_failed, 1);
    assert!(is_valid(q.graph(), r.order.rels()));
}

// ---------------------------------------------------------------------
// Sequential driver degradation ladder
// ---------------------------------------------------------------------

#[test]
fn method_panic_degrades_to_heuristic_plan() {
    let q = chain_query();
    // The method's first evaluation panics; the augmentation fallback
    // (evaluation #2) succeeds.
    let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::PanicOnKth(1));
    let r = try_optimize(&q, &model, &OptimizerConfig::new(Method::Iai).with_seed(3))
        .expect("fallback ladder must rescue the plan");
    assert_eq!(r.degradation, Degradation::Heuristic);
    assert!(r.degradation.is_degraded());
    assert_eq!(r.plan.n_relations(), q.n_relations());
    assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
    assert!(r.cost.is_finite());
}

#[test]
fn panic_at_any_evaluation_still_yields_a_valid_plan() {
    let q = chain_query();
    for k in 1..=40 {
        let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::PanicOnKth(k));
        let config = OptimizerConfig::new(Method::Agi)
            .with_seed(11)
            .with_time_limit(0.5);
        let r = catch_unwind(AssertUnwindSafe(|| try_optimize(&q, &model, &config)))
            .unwrap_or_else(|_| panic!("driver panicked with fault at evaluation {k}"))
            .unwrap_or_else(|e| panic!("no plan with fault at evaluation {k}: {e}"));
        assert!(
            is_valid(q.graph(), r.plan.segments[0].rels()),
            "invalid plan with fault at evaluation {k}"
        );
        assert!(r.cost.is_finite(), "fault at evaluation {k}");
    }
}

#[test]
fn nan_costs_never_poison_the_result() {
    let q = chain_query();
    for k in [1, 2, 5, 20] {
        let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::NanOnKth(k));
        let r = try_optimize(&q, &model, &OptimizerConfig::new(Method::Ii).with_seed(7))
            .expect("NaN is saturated, not fatal");
        // The NaN evaluation saturates to f64::MAX and loses to every
        // healthy evaluation, so the method completes undegraded.
        assert_eq!(r.degradation, Degradation::None);
        assert!(r.cost.is_finite());
        assert!(r.cost < f64::MAX, "NaN evaluation must not be selected");
        assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
    }
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

#[test]
fn immediate_deadline_returns_degraded_fallback() {
    let q = chain_query();
    let model = MemoryCostModel::default();
    let config = OptimizerConfig::new(Method::Ii)
        .with_seed(1)
        .with_deadline(Duration::ZERO);
    let r = try_optimize(&q, &model, &config).expect("fallback must produce a plan");
    assert!(r.deadline_expired);
    assert!(
        r.degradation.is_degraded(),
        "no search time means a fallback plan"
    );
    assert!(is_valid(q.graph(), r.plan.segments[0].rels()));
    assert!(r.cost.is_finite());
}

#[test]
fn generous_deadline_does_not_degrade() {
    let q = chain_query();
    let model = MemoryCostModel::default();
    let config = OptimizerConfig::new(Method::Iai)
        .with_seed(1)
        .with_deadline(Duration::from_secs(3600));
    let r = try_optimize(&q, &model, &config).unwrap();
    assert!(!r.deadline_expired);
    assert_eq!(r.degradation, Degradation::None);
    // Matches an undeadlined run exactly: the deadline only reads the
    // clock, it does not perturb the deterministic search.
    let plain = try_optimize(&q, &model, &OptimizerConfig::new(Method::Iai).with_seed(1)).unwrap();
    assert_eq!(r.plan, plain.plan);
    assert_eq!(r.cost, plain.cost);
}

// ---------------------------------------------------------------------
// Catalog validation at the optimize boundary
// ---------------------------------------------------------------------

#[test]
fn nan_statistics_yield_catalog_errors_not_panics() {
    // NaN selection selectivity.
    let err = QueryBuilder::new()
        .relation_with_selection("a", 10, f64::NAN)
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        CatalogError::BadSelectivity { .. } | CatalogError::NonFinite { .. }
    ));

    // NaN join selectivity.
    let err = QueryBuilder::new()
        .relation("a", 10)
        .relation("b", 20)
        .join("a", "b", f64::NAN)
        .build()
        .unwrap_err();
    assert!(matches!(err, CatalogError::BadSelectivity { .. }));

    // NaN distinct count, injected below the builder's derivations.
    let err = Query::new(
        vec![Relation::new("a", 10), Relation::new("b", 20)],
        vec![JoinEdge::new(0u32, 1u32, 0.5, f64::NAN, 4.0)],
    )
    .unwrap_err();
    assert!(matches!(err, CatalogError::NonFinite { .. }));
}

#[test]
fn random_catalogs_validate_or_optimize_cleanly() {
    // Property: any catalog either fails `Query::new` with a typed error
    // or optimizes to a valid plan — never a panic, never an invalid
    // plan. Statistics are drawn adversarially: zero cardinalities,
    // selectivities outside (0,1], NaN, distincts exceeding cardinality,
    // dangling and self-loop edges.
    let model = MemoryCostModel::default();
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for case in 0u64..120 {
        let mut rng = SmallRng::seed_from_u64(0x0B0B_5000 ^ case);
        let n = rng.gen_range(1usize..7);
        let mut relations = Vec::new();
        for i in 0..n {
            let card = match rng.gen_range(0u32..8) {
                0 => 0,
                1 => 1,
                _ => rng.gen_range(1u64..100_000),
            };
            let mut rel = Relation::new(format!("r{i}"), card);
            if rng.gen_range(0u32..3) == 0 {
                rel = rel.with_selection(match rng.gen_range(0u32..6) {
                    0 => f64::NAN,
                    1 => 0.0,
                    2 => 1.5,
                    3 => -0.2,
                    _ => rng.gen_range(0.01..1.0),
                });
            }
            relations.push(rel);
        }
        let n_edges = rng.gen_range(0usize..(n * 2).max(1));
        let mut edges = Vec::new();
        for _ in 0..n_edges {
            // Deliberately include out-of-range endpoints (dangling) and
            // occasional self-loops.
            let a = rng.gen_range(0u32..(n as u32 + 2));
            let b = if rng.gen_range(0u32..8) == 0 {
                a
            } else {
                rng.gen_range(0u32..(n as u32 + 2))
            };
            let sel = match rng.gen_range(0u32..8) {
                0 => f64::NAN,
                1 => 0.0,
                2 => 2.0,
                _ => rng.gen_range(1e-6..1.0),
            };
            let d = match rng.gen_range(0u32..6) {
                0 => f64::NAN,
                1 => 1e12, // likely exceeds the side's cardinality
                _ => rng.gen_range(1.0..1000.0),
            };
            edges.push(JoinEdge::new(a, b, sel, d, d));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match Query::new(relations.clone(), edges.clone()) {
                Err(_) => None,
                Ok(q) => {
                    let config = OptimizerConfig::new(Method::Iai)
                        .with_seed(case)
                        .with_time_limit(0.5);
                    let r = try_optimize(&q, &model, &config).expect("valid catalog must plan");
                    assert_eq!(r.plan.n_relations(), q.n_relations(), "case {case}");
                    for seg in &r.plan.segments {
                        assert!(is_valid(q.graph(), seg.rels()), "case {case}");
                    }
                    assert!(r.cost.is_finite(), "case {case}");
                    Some(())
                }
            }
        }));
        match outcome.unwrap_or_else(|_| panic!("panic on case {case}")) {
            Some(()) => accepted += 1,
            None => rejected += 1,
        }
    }
    // The generator must actually exercise both arms.
    assert!(accepted >= 10, "only {accepted} catalogs accepted");
    assert!(rejected >= 10, "only {rejected} catalogs rejected");
}

#[test]
fn random_moves_preserve_validity_on_surviving_catalogs() {
    // Property: from any valid order of a validated random catalog, any
    // accepted move proposal yields another valid order.
    let mut checked = 0u32;
    for case in 0u64..40 {
        let mut rng = SmallRng::seed_from_u64(0x5EED_1000 ^ case);
        let n = rng.gen_range(2usize..8);
        let mut builder = QueryBuilder::new();
        for i in 0..n {
            builder = builder.relation(format!("r{i}"), rng.gen_range(1u64..10_000));
        }
        // A random spanning tree keeps the graph connected.
        for i in 1..n {
            let parent = rng.gen_range(0usize..i);
            builder = builder.join(
                &format!("r{parent}"),
                &format!("r{i}"),
                rng.gen_range(1e-4..1.0f64),
            );
        }
        let q = builder
            .build()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut order = ljqo_plan::random_valid_order(q.graph(), &comp, &mut rng);
        assert!(is_valid(q.graph(), order.rels()), "case {case} start");
        let mut gen = MoveGenerator::new(q.n_relations(), MoveSet::default());
        for step in 0..50 {
            // `propose` applies the move before returning it.
            if gen.propose(q.graph(), &mut order, &mut rng).is_some() {
                assert!(
                    is_valid(q.graph(), order.rels()),
                    "case {case} step {step} broke validity"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 200, "only {checked} moves exercised");
}
