//! JOB-shaped query synthesis: star, snowflake, and cyclic join graphs
//! with fact-table skew.
//!
//! The paper's generator (see [`crate::generate_query`]) draws every
//! relation from the same cardinality distribution. Real analytical
//! workloads — the Join Order Benchmark being the canonical example —
//! look different: one or a few *fact* tables orders of magnitude larger
//! than the *dimension* tables around them, joined in star, snowflake
//! (star whose arms are chains), or mildly cyclic shapes. These
//! generators reproduce that asymmetry so the robustness study can probe
//! the optimizer on catalogs where a single wrong estimate on the fact
//! table dominates every plan.
//!
//! Generation is a deterministic function of `(spec, n_joins, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{JoinEdge, Query, Relation};

use crate::spec::{CardinalityDist, DistinctDist, SELECTIVITY_LIST};

/// Shape of a JOB-style join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobShape {
    /// One fact table joined directly to every dimension.
    Star,
    /// A star whose arms are chains: fact → dimension → sub-dimension …
    /// with roughly `√N` arms.
    Snowflake,
    /// A snowflake plus extra closing edges between arms, producing
    /// cycles in the join graph.
    Cyclic,
}

impl JobShape {
    /// All shapes, in report order.
    pub const ALL: [JobShape; 3] = [JobShape::Star, JobShape::Snowflake, JobShape::Cyclic];

    /// Short name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            JobShape::Star => "star",
            JobShape::Snowflake => "snowflake",
            JobShape::Cyclic => "cyclic",
        }
    }

    /// Parse a shape name (case-insensitive).
    pub fn parse(s: &str) -> Option<JobShape> {
        JobShape::ALL
            .into_iter()
            .find(|shape| shape.name().eq_ignore_ascii_case(s))
    }
}

/// Specification of a JOB-shaped benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Join-graph shape.
    pub shape: JobShape,
    /// Dimension-table cardinality distribution.
    pub dimensions: CardinalityDist,
    /// Fact cardinality = dimension draw × this factor (the skew: the
    /// fact table dwarfs every dimension).
    pub fact_scale: f64,
    /// Distinct-value fraction distribution for dimension join columns.
    pub distinct_values: DistinctDist,
    /// Maximum selections per dimension relation (uniform over
    /// `0..=max_selections`); the fact table carries none, as is typical
    /// for JOB-style queries that filter on dimensions.
    pub max_selections: usize,
    /// For [`JobShape::Cyclic`]: extra closing edges as a fraction of
    /// `n_joins` (at least one is always added when `n_joins >= 2`).
    pub cycle_fraction: f64,
}

impl JobSpec {
    /// Default spec for a shape: paper dimension distributions, fact
    /// tables 1000× a dimension draw, a quarter of the joins closed into
    /// cycles for the cyclic shape.
    pub fn new(shape: JobShape) -> Self {
        JobSpec {
            shape,
            dimensions: CardinalityDist::default_paper(),
            fact_scale: 1_000.0,
            distinct_values: DistinctDist::default_paper(),
            max_selections: 2,
            cycle_fraction: 0.25,
        }
    }
}

/// Generate a JOB-shaped query with `n_joins` spanning joins
/// (`n_joins + 1` relations; the cyclic shape adds extra closing edges on
/// top), deterministically in `seed`. Relation 0 is the fact table.
pub fn generate_job_query(spec: &JobSpec, n_joins: usize, seed: u64) -> Query {
    let n_rel = n_joins + 1;
    let mut rng = SmallRng::seed_from_u64(seed);

    // Relations: index 0 is the fact table, scaled up from a dimension
    // draw; the rest are dimensions with optional selections.
    let mut relations = Vec::with_capacity(n_rel);
    let fact_card = ((spec.dimensions.sample(&mut rng) as f64) * spec.fact_scale.max(1.0))
        .round()
        .max(1.0) as u64;
    relations.push(Relation::new("F0", fact_card));
    for i in 1..n_rel {
        let mut rel = Relation::new(format!("D{i}"), spec.dimensions.sample(&mut rng));
        let n_sel = rng.gen_range(0..=spec.max_selections);
        for _ in 0..n_sel {
            let s = SELECTIVITY_LIST[rng.gen_range(0..SELECTIVITY_LIST.len())];
            rel = rel.with_selection(s);
        }
        relations.push(rel);
    }

    // Spanning structure by shape. `parent[i]` is the relation that
    // dimension i joins to.
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n_rel);
    match spec.shape {
        JobShape::Star => {
            for i in 1..n_rel {
                pairs.push((0, i));
            }
        }
        JobShape::Snowflake | JobShape::Cyclic => {
            // ~√N arms; each new dimension extends the shortest arm, so
            // arms stay balanced and depth grows past 1 (the snowflake).
            let n_arms = ((n_joins as f64).sqrt().ceil() as usize).clamp(1, n_joins.max(1));
            let mut arm_tail: Vec<usize> = Vec::with_capacity(n_arms);
            let mut arm_len: Vec<usize> = Vec::with_capacity(n_arms);
            for i in 1..n_rel {
                if arm_tail.len() < n_arms {
                    // Start a new arm at the fact table.
                    pairs.push((0, i));
                    arm_tail.push(i);
                    arm_len.push(1);
                } else {
                    let a = (0..arm_tail.len())
                        .min_by_key(|&a| (arm_len[a], a))
                        .unwrap();
                    pairs.push((arm_tail[a], i));
                    arm_tail[a] = i;
                    arm_len[a] += 1;
                }
            }
            if spec.shape == JobShape::Cyclic && n_rel >= 3 {
                // Close cycles with extra edges between distinct
                // relations, skipping pairs already joined.
                let extra = ((spec.cycle_fraction * n_joins as f64).round() as usize).max(1);
                let mut joined = vec![false; n_rel * n_rel];
                for &(a, b) in &pairs {
                    joined[a * n_rel + b] = true;
                    joined[b * n_rel + a] = true;
                }
                let mut added = 0;
                let mut attempts = 0;
                while added < extra && attempts < 16 * extra {
                    attempts += 1;
                    let a = rng.gen_range(0..n_rel);
                    let b = rng.gen_range(0..n_rel);
                    if a != b && !joined[a * n_rel + b] {
                        joined[a * n_rel + b] = true;
                        joined[b * n_rel + a] = true;
                        pairs.push((a.min(b), a.max(b)));
                        added += 1;
                    }
                }
            }
        }
    }

    // Statistics: the edge's dimension-side key is drawn from the
    // distinct distribution; the fact (or parent) side reuses the child
    // key domain — at most the child's distinct count, shrunk by a skew
    // draw (a few hot keys dominate), and never above the parent's own
    // cardinality. Selectivity then follows J = 1/max(D_a, D_b).
    let edges: Vec<JoinEdge> = pairs
        .into_iter()
        .map(|(a, b)| {
            let child_card = relations[b].cardinality();
            let d_child = (spec.distinct_values.sample(&mut rng) * child_card).max(1.0);
            let skew = spec.distinct_values.sample(&mut rng);
            let d_parent = (d_child * skew).max(1.0).min(relations[a].cardinality());
            JoinEdge::from_distincts(a, b, d_parent, d_child)
        })
        .collect();

    Query::new(relations, edges).expect("generated JOB query must validate")
}

/// Generate a **hub-and-chains** query: a large hub relation with two
/// heavy chains hanging off it, each chain starting huge and shrinking
/// fast toward its tail (`n_joins + 1` relations, deterministic in
/// `seed`). Relation 0 is the hub.
///
/// This is the canonical shape on which bushy join trees strictly beat
/// every outer-linear plan: a linear plan must drag a hub-sized (or
/// chain-head-sized) intermediate through at least one whole chain,
/// while a bushy plan reduces each chain independently to a few tuples
/// and joins the small results. The bushy benchmarks use it as the
/// must-win workload when validating the paper's linear-tree assumption.
pub fn generate_hub_chains_query(n_joins: usize, seed: u64) -> Query {
    assert!(n_joins >= 2, "a hub needs at least two chains");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_rel = n_joins + 1;

    let mut relations = Vec::with_capacity(n_rel);
    relations.push(Relation::new("HUB", 100_000 + rng.gen_range(0..50_000u64)));
    let mut edges = Vec::with_capacity(n_joins);

    // Two chains; the first takes the extra hop when n_joins is odd.
    let len_a = n_joins.div_ceil(2);
    let mut idx = 1usize;
    for (c, len) in [len_a, n_joins - len_a].into_iter().enumerate() {
        let mut prev = 0usize; // chain starts at the hub
        let mut card = 60_000.0 + rng.gen_range(0..40_000u64) as f64;
        for hop in 0..len {
            relations.push(Relation::new(
                format!("C{c}_{hop}"),
                card.round().max(1.0) as u64,
            ));
            // Hub edges are needle-selective (key lookups into a huge
            // head); chain edges are ordinary foreign-key hops.
            let sel = if hop == 0 {
                0.00002 * (1.0 + rng.gen_range(0.0..0.5f64))
            } else {
                0.001 * (1.0 + rng.gen_range(0.0..0.5f64))
            };
            // Distinct counts stay consistent with the selectivity where
            // the cardinalities allow, capped so validation holds on the
            // tiny tail relations.
            let d = 1.0 / sel;
            let d_prev = d.min(relations[prev].cardinality());
            let d_here = d.min(relations[idx].cardinality());
            edges.push(JoinEdge::new(prev, idx, sel, d_prev, d_here));
            prev = idx;
            idx += 1;
            // Each hop shrinks the chain steeply toward a tiny tail.
            card = (card / rng.gen_range(20.0..40.0f64)).max(3.0);
        }
    }

    Query::new(relations, edges).expect("generated hub-chains query must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::RelId;
    use ljqo_plan::validity::is_valid;

    #[test]
    fn star_joins_every_dimension_to_the_fact() {
        let q = generate_job_query(&JobSpec::new(JobShape::Star), 12, 1);
        assert_eq!(q.n_relations(), 13);
        assert_eq!(q.graph().degree(RelId(0)), 12);
        assert!(q.graph().is_connected());
    }

    #[test]
    fn fact_table_dwarfs_dimensions() {
        for shape in JobShape::ALL {
            let q = generate_job_query(&JobSpec::new(shape), 15, 3);
            let fact = q.relation(RelId(0)).base_cardinality;
            let max_dim = q
                .relations()
                .iter()
                .skip(1)
                .map(|r| r.base_cardinality)
                .max()
                .unwrap();
            // The fact table is a dimension draw × fact_scale (1000), so
            // it always clears the dimension range's top end.
            assert!(
                fact > max_dim && fact >= 10_000,
                "{shape:?}: fact {fact} vs max dim {max_dim}"
            );
        }
    }

    #[test]
    fn snowflake_has_chained_arms() {
        let q = generate_job_query(&JobSpec::new(JobShape::Snowflake), 16, 5);
        // ~√16 = 4 arms from the hub; the other dimensions chain.
        assert_eq!(q.graph().degree(RelId(0)), 4);
        assert_eq!(q.graph().edges().len(), 16);
        let deep = q
            .rel_ids()
            .filter(|&r| r != RelId(0) && q.graph().degree(r) == 2)
            .count();
        assert!(deep >= 8, "only {deep} chained dimensions");
    }

    #[test]
    fn cyclic_adds_closing_edges() {
        let q = generate_job_query(&JobSpec::new(JobShape::Cyclic), 16, 5);
        assert!(
            q.graph().edges().len() > 16,
            "cyclic shape must exceed the spanning joins, got {}",
            q.graph().edges().len()
        );
        assert!(q.graph().is_connected());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        for shape in JobShape::ALL {
            let spec = JobSpec::new(shape);
            assert_eq!(
                generate_job_query(&spec, 10, 7),
                generate_job_query(&spec, 10, 7)
            );
            assert_ne!(
                generate_job_query(&spec, 10, 7),
                generate_job_query(&spec, 10, 8),
                "{shape:?}"
            );
        }
    }

    #[test]
    fn identity_permutation_is_valid_by_construction() {
        for shape in JobShape::ALL {
            for seed in 0..5 {
                let q = generate_job_query(&JobSpec::new(shape), 20, seed);
                let order: Vec<RelId> = q.rel_ids().collect();
                assert!(is_valid(q.graph(), &order), "{shape:?} seed {seed}");
            }
        }
    }

    #[test]
    fn hub_chains_is_connected_deterministic_and_two_armed() {
        for n_joins in [2, 5, 8, 13] {
            let q = generate_hub_chains_query(n_joins, 9);
            assert_eq!(q.n_relations(), n_joins + 1);
            assert!(q.graph().is_connected());
            assert_eq!(q.graph().degree(RelId(0)), if n_joins >= 2 { 2 } else { 1 });
            assert_eq!(q, generate_hub_chains_query(n_joins, 9));
            assert_ne!(q, generate_hub_chains_query(n_joins, 10));
            let order: Vec<RelId> = q.rel_ids().collect();
            assert!(is_valid(q.graph(), &order));
        }
    }

    #[test]
    fn hub_chains_heads_are_heavy_and_tails_tiny() {
        let q = generate_hub_chains_query(8, 4);
        let hub = q.relation(RelId(0)).base_cardinality;
        assert!(hub >= 100_000);
        // Head of chain 0 is relation 1; its tail (relation 4) is tiny.
        assert!(q.relation(RelId(1)).base_cardinality >= 60_000);
        assert!(q.relation(RelId(4)).base_cardinality < 100);
    }

    #[test]
    fn shape_names_roundtrip() {
        for shape in JobShape::ALL {
            assert_eq!(JobShape::parse(shape.name()), Some(shape));
            assert_eq!(JobShape::parse(&shape.name().to_uppercase()), Some(shape));
        }
        assert_eq!(JobShape::parse("nope"), None);
    }
}
