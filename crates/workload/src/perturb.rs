//! Controlled q-error injection: turn a *true* catalog into an *observed*
//! one.
//!
//! The q-error of an estimate `ê` for a true value `e` is
//! `max(ê/e, e/ê)`. A [`Perturbation`] multiplies each statistic by a
//! log-uniform factor drawn from `[1/q, q]`, so every observed statistic
//! is within q-error `q` of the truth — the standard model for "estimates
//! off by up to an order of magnitude" (q = 10) or two (q = 100).
//!
//! Two error modes:
//!
//! * [`PerturbMode::Independent`] — every scalar statistic (base
//!   cardinality, each selection selectivity, each join selectivity, each
//!   distinct count) draws its own factor. Models uncorrelated noise.
//! * [`PerturbMode::Correlated`] — one factor per *relation* drives its
//!   cardinality and all statistics touching it (distinct counts on its
//!   side of each edge; edge selectivities divide by the geometric mean
//!   of the endpoint factors). Models the realistic failure where one
//!   misjudged table skews everything it joins with.
//!
//! The transform preserves structure exactly: relation names and ids,
//! edge endpoints, and selection counts are untouched — only the numbers
//! move. Results are clamped into the catalog's validity envelope
//! (selectivities in `(0, 1]`, distincts in `[1, base_cardinality]`,
//! cardinalities ≥ 1) so the observed catalog always passes
//! `Query::validate`. The transform is a deterministic function of
//! `(query, q, mode, seed)`, and `q = 1` is the exact identity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{JoinEdge, Query, Relation};

/// How perturbation factors are shared across statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbMode {
    /// Every statistic draws its own factor.
    Independent,
    /// One factor per relation drives all statistics touching it.
    Correlated,
}

impl PerturbMode {
    /// Both modes, in report order.
    pub const ALL: [PerturbMode; 2] = [PerturbMode::Independent, PerturbMode::Correlated];

    /// Short name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            PerturbMode::Independent => "independent",
            PerturbMode::Correlated => "correlated",
        }
    }

    /// Parse a mode name (case-insensitive).
    pub fn parse(s: &str) -> Option<PerturbMode> {
        PerturbMode::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(s))
    }
}

/// A seeded q-error injector; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Maximum q-error of any observed statistic (≥ 1).
    pub q: f64,
    /// Factor-sharing mode.
    pub mode: PerturbMode,
    /// RNG seed; same `(query, q, mode, seed)` → same observed catalog.
    pub seed: u64,
}

impl Perturbation {
    /// Create a perturbation. Non-finite or sub-1 `q` is clamped to 1
    /// (the identity) rather than rejected — a robustness transform
    /// should not itself be a source of panics.
    pub fn new(q: f64, mode: PerturbMode, seed: u64) -> Self {
        let q = if q.is_finite() { q.max(1.0) } else { 1.0 };
        Perturbation { q, mode, seed }
    }

    /// A log-uniform factor in `[1/q, q]`.
    fn factor(&self, rng: &mut SmallRng) -> f64 {
        // gen::<f64>() in [0,1) → exponent in [-ln q, ln q).
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        (u * self.q.ln()).exp()
    }

    /// The observed catalog: `truth` with q-error injected into every
    /// statistic. Structure (ids, names, edge endpoints, selection
    /// counts) is preserved bit-for-bit; `q = 1` returns an exact clone.
    pub fn observed(&self, truth: &Query) -> Query {
        if self.q <= 1.0 {
            return truth.clone();
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Correlated mode: one factor per relation, drawn up front in id
        // order so edge processing below never perturbs the draw order.
        let rel_factors: Vec<f64> = match self.mode {
            PerturbMode::Correlated => (0..truth.n_relations())
                .map(|_| self.factor(&mut rng))
                .collect(),
            PerturbMode::Independent => Vec::new(),
        };

        let clamp_sel = |s: f64| s.clamp(f64::MIN_POSITIVE, 1.0);

        let relations: Vec<Relation> = truth
            .relations()
            .iter()
            .enumerate()
            .map(|(i, rel)| {
                let card_factor = match self.mode {
                    PerturbMode::Correlated => rel_factors[i],
                    PerturbMode::Independent => self.factor(&mut rng),
                };
                let observed_card = ((rel.base_cardinality as f64) * card_factor)
                    .round()
                    .max(1.0) as u64;
                let mut out = Relation::new(rel.name.clone(), observed_card);
                for sel in &rel.selections {
                    let f = match self.mode {
                        PerturbMode::Correlated => rel_factors[i],
                        PerturbMode::Independent => self.factor(&mut rng),
                    };
                    out = out.with_selection(clamp_sel(sel.selectivity * f));
                }
                out
            })
            .collect();

        let edges: Vec<JoinEdge> = truth
            .graph()
            .edges()
            .iter()
            .map(|e| {
                let (fa, fb, fsel) = match self.mode {
                    PerturbMode::Correlated => {
                        let (fa, fb) = (rel_factors[e.a.index()], rel_factors[e.b.index()]);
                        // Under uniformity J = 1/max(D), inflating the
                        // distincts deflates the selectivity: divide by
                        // the geometric mean of the endpoint factors.
                        (fa, fb, 1.0 / (fa * fb).sqrt())
                    }
                    PerturbMode::Independent => (
                        self.factor(&mut rng),
                        self.factor(&mut rng),
                        self.factor(&mut rng),
                    ),
                };
                // Distincts stay inside the validity envelope of the
                // *observed* base cardinality.
                let clamp_d =
                    |d: f64, rel: usize| d.clamp(1.0, relations[rel].base_cardinality as f64);
                JoinEdge::new(
                    e.a,
                    e.b,
                    clamp_sel(e.selectivity * fsel),
                    clamp_d(e.distinct_a * fa, e.a.index()),
                    clamp_d(e.distinct_b * fb, e.b.index()),
                )
            })
            .collect();

        Query::new(relations, edges).expect("perturbed catalog must validate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_query;
    use crate::spec::QuerySpec;

    fn sample() -> Query {
        generate_query(&QuerySpec::default(), 20, 42)
    }

    #[test]
    fn q1_is_the_exact_identity() {
        let truth = sample();
        for mode in PerturbMode::ALL {
            let obs = Perturbation::new(1.0, mode, 9).observed(&truth);
            assert_eq!(obs, truth, "{mode:?}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let truth = sample();
        for mode in PerturbMode::ALL {
            let p = Perturbation::new(10.0, mode, 5);
            assert_eq!(p.observed(&truth), p.observed(&truth));
            let other = Perturbation::new(10.0, mode, 6).observed(&truth);
            assert_ne!(p.observed(&truth), other, "{mode:?}");
        }
    }

    #[test]
    fn structure_is_preserved() {
        let truth = sample();
        for mode in PerturbMode::ALL {
            let obs = Perturbation::new(100.0, mode, 7).observed(&truth);
            assert_eq!(obs.n_relations(), truth.n_relations());
            assert_eq!(obs.n_joins(), truth.n_joins());
            for (o, t) in obs.relations().iter().zip(truth.relations()) {
                assert_eq!(o.name, t.name);
                assert_eq!(o.selections.len(), t.selections.len());
            }
            for (oe, te) in obs.graph().edges().iter().zip(truth.graph().edges()) {
                assert_eq!((oe.a, oe.b), (te.a, te.b));
            }
        }
    }

    #[test]
    fn observed_catalogs_always_validate() {
        for seed in 0..10 {
            let truth = generate_query(&QuerySpec::default(), 15, seed);
            for mode in PerturbMode::ALL {
                for q in [2.0, 10.0, 100.0] {
                    let obs = Perturbation::new(q, mode, seed ^ 0xABCD).observed(&truth);
                    obs.validate().expect("observed catalog validates");
                }
            }
        }
    }

    #[test]
    fn factors_respect_the_q_bound() {
        let truth = sample();
        let q = 10.0;
        for mode in PerturbMode::ALL {
            let obs = Perturbation::new(q, mode, 3).observed(&truth);
            for (o, t) in obs.relations().iter().zip(truth.relations()) {
                let (oc, tc) = (o.base_cardinality as f64, t.base_cardinality as f64);
                let qerr = (oc / tc).max(tc / oc);
                // Rounding to integer cardinalities adds at most ~½ a
                // tuple of slack on tiny relations.
                assert!(qerr <= q * 1.1, "{mode:?}: cardinality q-error {qerr}");
            }
        }
    }

    #[test]
    fn nonsense_q_clamps_to_identity() {
        let truth = sample();
        for q in [0.5, 0.0, -3.0, f64::NAN, f64::INFINITY] {
            let p = Perturbation::new(q, PerturbMode::Independent, 1);
            assert_eq!(p.observed(&truth), truth, "q={q}");
        }
    }

    #[test]
    fn correlated_mode_moves_a_relations_stats_together() {
        // With one factor per relation, the ratio observed/true must be
        // identical for a relation's cardinality and each distinct count
        // clamped on its side (when no clamp bound was hit).
        let truth = sample();
        let obs = Perturbation::new(2.0, PerturbMode::Correlated, 11).observed(&truth);
        for (oe, te) in obs.graph().edges().iter().zip(truth.graph().edges()) {
            let rel = te.a.index();
            let card_ratio = obs.relations()[rel].base_cardinality as f64
                / truth.relations()[rel].base_cardinality as f64;
            let d_ratio = oe.distinct_a / te.distinct_a;
            let hit_clamp = oe.distinct_a <= 1.0 + 1e-12
                || oe.distinct_a >= obs.relations()[rel].base_cardinality as f64 - 1e-9;
            // Integer rounding of the cardinality blurs the ratio on
            // small relations; only large ones give a sharp comparison.
            if !hit_clamp && truth.relations()[rel].base_cardinality >= 500 {
                assert!(
                    (d_ratio / card_ratio - 1.0).abs() < 0.05,
                    "distinct ratio {d_ratio} vs cardinality ratio {card_ratio}"
                );
            }
        }
    }
}
