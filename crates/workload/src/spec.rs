//! Distribution specifications for query synthesis.

use rand::Rng;

/// The paper's list of selection selectivities; each selection predicate
/// draws uniformly from this list (0.34 and 0.5 are deliberately
/// overrepresented).
pub const SELECTIVITY_LIST: [f64; 15] = [
    0.001, 0.01, 0.1, 0.2, 0.34, 0.34, 0.34, 0.34, 0.34, 0.5, 0.5, 0.5, 0.67, 0.8, 1.0,
];

/// Distribution of relation cardinalities.
#[derive(Debug, Clone, PartialEq)]
pub enum CardinalityDist {
    /// Weighted buckets `(lo, hi, weight)`; within a bucket the cardinality
    /// is uniform over `[lo, hi)`.
    Buckets(Vec<(u64, u64, f64)>),
    /// Uniform over `[lo, hi)`.
    Uniform(u64, u64),
}

impl CardinalityDist {
    /// The paper's default: `[10,100) 20%, [100,1000) 60%, [1000,10000) 20%`.
    pub fn default_paper() -> Self {
        CardinalityDist::Buckets(vec![
            (10, 100, 0.2),
            (100, 1_000, 0.6),
            (1_000, 10_000, 0.2),
        ])
    }

    /// Sample a cardinality.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            CardinalityDist::Uniform(lo, hi) => rng.gen_range(*lo..*hi),
            CardinalityDist::Buckets(buckets) => {
                let total: f64 = buckets.iter().map(|b| b.2).sum();
                let mut x = rng.gen::<f64>() * total;
                for &(lo, hi, w) in buckets {
                    x -= w;
                    if x < 0.0 {
                        return rng.gen_range(lo..hi);
                    }
                }
                let &(lo, hi, _) = buckets.last().expect("empty bucket list");
                rng.gen_range(lo..hi)
            }
        }
    }
}

/// Distribution of the distinct-value fraction of a join column (distinct
/// values = fraction × relation cardinality).
///
/// Buckets are `(lo, hi, weight)` with the fraction drawn uniformly from
/// the half-open interval `(lo, hi]`; a bucket with `lo == hi` is a point
/// mass (used for the paper's "exactly 1.0" bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct DistinctDist(pub Vec<(f64, f64, f64)>);

impl DistinctDist {
    /// The paper's default: `(0,0.2] 90%, (0.2,1) 9%, 1.0 1%`.
    pub fn default_paper() -> Self {
        DistinctDist(vec![(0.0, 0.2, 0.90), (0.2, 1.0, 0.09), (1.0, 1.0, 0.01)])
    }

    /// Sample a fraction in `(0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let total: f64 = self.0.iter().map(|b| b.2).sum();
        let mut x = rng.gen::<f64>() * total;
        for &(lo, hi, w) in &self.0 {
            x -= w;
            if x < 0.0 {
                if lo >= hi {
                    return hi;
                }
                // Uniform over (lo, hi]: 1 - gen() lies in (0, 1].
                return lo + (hi - lo) * (1.0 - rng.gen::<f64>());
            }
        }
        self.0.last().map(|b| b.1).unwrap_or(1.0)
    }
}

/// Bias applied when generating the initial spanning tree of the join
/// graph (paper §5, join-graph variations 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// Link each new relation to a uniformly random placed relation.
    Random,
    /// Star bias: preferential attachment (weight ∝ (degree+1)²), so a few
    /// relations accumulate most of the joins. Enlarges the search space.
    Star,
    /// Chain bias: link to the most recently placed relation with high
    /// probability, producing long path-like graphs. Shrinks the space.
    Chain,
}

/// Full specification of a synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Relation cardinality distribution.
    pub cardinalities: CardinalityDist,
    /// Maximum number of selection predicates per relation (the count is
    /// uniform over `0..=max_selections`).
    pub max_selections: usize,
    /// Join-column distinct-value fraction distribution.
    pub distinct_values: DistinctDist,
    /// Probability that a qualifying relation pair gets an extra join
    /// predicate in step 2.
    pub join_cutoff: f64,
    /// Spanning-tree bias.
    pub shape: GraphShape,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            cardinalities: CardinalityDist::default_paper(),
            max_selections: 2,
            distinct_values: DistinctDist::default_paper(),
            join_cutoff: 0.01,
            shape: GraphShape::Random,
        }
    }
}

/// The paper's ten benchmarks: the default plus nine variations (numbered
/// 1–9 as in Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// The default distributions.
    Default,
    /// Variation 1: cardinality range ×10.
    CardWideRange,
    /// Variation 2: uniform cardinalities over `[10, 10⁴)`.
    CardUniform,
    /// Variation 3: uniform cardinalities over `[10, 10⁵)`.
    CardUniformWide,
    /// Variation 4: more distinct values.
    DistinctMore,
    /// Variation 5: fewer distinct values (harder queries).
    DistinctFewer,
    /// Variation 6: combination of 4 and 5.
    DistinctBoth,
    /// Variation 7: join cutoff probability 0.1.
    GraphDense,
    /// Variation 8: star-biased join graphs.
    GraphStar,
    /// Variation 9: chain-biased join graphs.
    GraphChain,
}

impl Benchmark {
    /// All ten benchmarks; index 0 is the default, 1–9 match Table 3 rows.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::Default,
        Benchmark::CardWideRange,
        Benchmark::CardUniform,
        Benchmark::CardUniformWide,
        Benchmark::DistinctMore,
        Benchmark::DistinctFewer,
        Benchmark::DistinctBoth,
        Benchmark::GraphDense,
        Benchmark::GraphStar,
        Benchmark::GraphChain,
    ];

    /// The nine Table 3 variations, in row order.
    pub const VARIATIONS: [Benchmark; 9] = [
        Benchmark::CardWideRange,
        Benchmark::CardUniform,
        Benchmark::CardUniformWide,
        Benchmark::DistinctMore,
        Benchmark::DistinctFewer,
        Benchmark::DistinctBoth,
        Benchmark::GraphDense,
        Benchmark::GraphStar,
        Benchmark::GraphChain,
    ];

    /// Table 3 row number (0 for the default benchmark).
    pub fn number(self) -> usize {
        Benchmark::ALL.iter().position(|&b| b == self).unwrap()
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Default => "default",
            Benchmark::CardWideRange => "card-wide",
            Benchmark::CardUniform => "card-uniform",
            Benchmark::CardUniformWide => "card-uniform-wide",
            Benchmark::DistinctMore => "distinct-more",
            Benchmark::DistinctFewer => "distinct-fewer",
            Benchmark::DistinctBoth => "distinct-both",
            Benchmark::GraphDense => "graph-dense",
            Benchmark::GraphStar => "graph-star",
            Benchmark::GraphChain => "graph-chain",
        }
    }

    /// The distribution specification for this benchmark.
    pub fn spec(self) -> QuerySpec {
        let mut spec = QuerySpec::default();
        match self {
            Benchmark::Default => {}
            Benchmark::CardWideRange => {
                spec.cardinalities = CardinalityDist::Buckets(vec![
                    (10, 1_000, 0.2),
                    (1_000, 10_000, 0.6),
                    (10_000, 100_000, 0.2),
                ]);
            }
            Benchmark::CardUniform => {
                spec.cardinalities = CardinalityDist::Uniform(10, 10_000);
            }
            Benchmark::CardUniformWide => {
                spec.cardinalities = CardinalityDist::Uniform(10, 100_000);
            }
            Benchmark::DistinctMore => {
                spec.distinct_values =
                    DistinctDist(vec![(0.0, 0.2, 0.80), (0.2, 1.0, 0.16), (1.0, 1.0, 0.04)]);
            }
            Benchmark::DistinctFewer => {
                spec.distinct_values =
                    DistinctDist(vec![(0.0, 0.1, 0.90), (0.1, 1.0, 0.09), (1.0, 1.0, 0.01)]);
            }
            Benchmark::DistinctBoth => {
                spec.distinct_values =
                    DistinctDist(vec![(0.0, 0.1, 0.80), (0.1, 1.0, 0.16), (1.0, 1.0, 0.04)]);
            }
            Benchmark::GraphDense => {
                spec.join_cutoff = 0.1;
            }
            Benchmark::GraphStar => {
                spec.shape = GraphShape::Star;
            }
            Benchmark::GraphChain => {
                spec.shape = GraphShape::Chain;
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn default_cardinalities_cover_buckets() {
        let d = CardinalityDist::default_paper();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut in_mid = 0;
        for _ in 0..2000 {
            let c = d.sample(&mut rng);
            assert!((10..10_000).contains(&c));
            if (100..1000).contains(&c) {
                in_mid += 1;
            }
        }
        // ~60% should land in the middle bucket.
        assert!((1000..1400).contains(&in_mid), "mid bucket count {in_mid}");
    }

    #[test]
    fn uniform_cardinalities_respect_range() {
        let d = CardinalityDist::Uniform(10, 100_000);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..500 {
            let c = d.sample(&mut rng);
            assert!((10..100_000).contains(&c));
        }
    }

    #[test]
    fn distinct_fractions_in_unit_interval() {
        let d = DistinctDist::default_paper();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ones = 0;
        for _ in 0..5000 {
            let f = d.sample(&mut rng);
            assert!(f > 0.0 && f <= 1.0, "fraction {f}");
            if f == 1.0 {
                ones += 1;
            }
        }
        // The 1% point mass should appear but rarely.
        assert!((10..150).contains(&ones), "point-mass count {ones}");
    }

    #[test]
    fn benchmark_numbering_matches_table3() {
        assert_eq!(Benchmark::Default.number(), 0);
        assert_eq!(Benchmark::CardWideRange.number(), 1);
        assert_eq!(Benchmark::GraphChain.number(), 9);
        assert_eq!(Benchmark::VARIATIONS.len(), 9);
    }

    #[test]
    fn specs_differ_from_default_where_expected() {
        let d = QuerySpec::default();
        for b in Benchmark::VARIATIONS {
            assert_ne!(b.spec(), d, "{b:?} must vary the default spec");
        }
        assert_eq!(Benchmark::Default.spec(), d);
        assert_eq!(Benchmark::GraphDense.spec().join_cutoff, 0.1);
        assert_eq!(Benchmark::GraphStar.spec().shape, GraphShape::Star);
    }
}
