//! # ljqo-workload — the paper's synthetic query benchmarks (§5)
//!
//! Queries are synthesized from distributions over relation cardinalities,
//! selection predicates, join-column distinct values, and the join graph.
//! The *default benchmark* uses the paper's default distributions; nine
//! *variations* stress the optimizer with more extreme queries:
//!
//! | # | Class | Variation |
//! |---|-------|-----------|
//! | 1 | cardinalities | range ×10 (`[10,10³) 20%, [10³,10⁴) 60%, [10⁴,10⁵) 20%`) |
//! | 2 | cardinalities | uniform over `[10,10⁴)` |
//! | 3 | cardinalities | uniform over `[10,10⁵)` |
//! | 4 | distinct values | more distincts (`(0,0.2] 80%, (0.2,1) 16%, 1.0 4%`) |
//! | 5 | distinct values | fewer distincts (`(0,0.1] 90%, (0.1,1) 9%, 1.0 1%`) |
//! | 6 | distinct values | both (`(0,0.1] 80%, (0.1,1) 16%, 1.0 4%`) |
//! | 7 | join graph | cutoff probability 0.1 (more predicates) |
//! | 8 | join graph | star-biased spanning tree |
//! | 9 | join graph | chain-biased spanning tree |
//!
//! Generation is a deterministic function of `(spec, N, seed)`.
//!
//! Two post-paper extensions back the robustness study:
//!
//! * [`job`] — JOB-shaped benchmarks (star, snowflake, cyclic join
//!   graphs with fact-table skew), closer to real analytical workloads
//!   than the paper's homogeneous relations.
//! * [`perturb`] — a seeded q-error injector that turns a *true* catalog
//!   into an *observed* one with every statistic within a chosen q-error
//!   bound, in independent or per-relation-correlated modes.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod generator;
pub mod job;
pub mod perturb;
mod spec;

pub use generator::generate_query;
pub use job::{generate_hub_chains_query, generate_job_query, JobShape, JobSpec};
pub use perturb::{PerturbMode, Perturbation};
pub use spec::{Benchmark, CardinalityDist, DistinctDist, GraphShape, QuerySpec, SELECTIVITY_LIST};
