//! Query synthesis (paper §5).
//!
//! The join graph is generated in two steps. Step 1 builds a connected
//! spanning structure: relations are added one at a time, each linked to a
//! relation already placed (uniformly, or with star/chain bias), so that
//! the identity permutation is valid. Step 2 sweeps all remaining pairs
//! and adds an extra join predicate with the *join cutoff probability*.
//!
//! Every join column draws a distinct-value fraction; the selectivity of a
//! join predicate follows the uniformity assumption
//! `J = 1 / max(D_a, D_b)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{JoinEdge, Query, Relation};

use crate::spec::{GraphShape, QuerySpec, SELECTIVITY_LIST};

/// Generate a query with `n_joins` joins (`n_joins + 1` relations) from
/// `spec`, deterministically in `seed`.
pub fn generate_query(spec: &QuerySpec, n_joins: usize, seed: u64) -> Query {
    let n_rel = n_joins + 1;
    let mut rng = SmallRng::seed_from_u64(seed);

    // Relations: cardinality, then 0..=max_selections selections.
    let mut relations = Vec::with_capacity(n_rel);
    for i in 0..n_rel {
        let mut rel = Relation::new(format!("R{i}"), spec.cardinalities.sample(&mut rng));
        let n_sel = rng.gen_range(0..=spec.max_selections);
        for _ in 0..n_sel {
            let s = SELECTIVITY_LIST[rng.gen_range(0..SELECTIVITY_LIST.len())];
            rel = rel.with_selection(s);
        }
        relations.push(rel);
    }

    // Step 1: connected spanning structure.
    let mut degree = vec![0usize; n_rel];
    let mut linked: Vec<(usize, usize)> = Vec::with_capacity(n_rel - 1);
    for i in 1..n_rel {
        let target = match spec.shape {
            GraphShape::Random => rng.gen_range(0..i),
            GraphShape::Chain => {
                // Mostly extend the most recent relation: long chains.
                if rng.gen::<f64>() < 0.95 {
                    i - 1
                } else {
                    rng.gen_range(0..i)
                }
            }
            GraphShape::Star => {
                // Preferential attachment, weight ∝ (degree + 1)²: a few
                // hubs accumulate most joins.
                let weights: Vec<f64> = (0..i)
                    .map(|j| ((degree[j] + 1) * (degree[j] + 1)) as f64)
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut x = rng.gen::<f64>() * total;
                let mut pick = i - 1;
                for (j, w) in weights.iter().enumerate() {
                    x -= w;
                    if x < 0.0 {
                        pick = j;
                        break;
                    }
                }
                pick
            }
        };
        degree[i] += 1;
        degree[target] += 1;
        linked.push((target, i));
    }

    // Step 2: extra join predicates with the cutoff probability.
    let mut has_edge = vec![false; n_rel * n_rel];
    for &(a, b) in &linked {
        has_edge[a * n_rel + b] = true;
        has_edge[b * n_rel + a] = true;
    }
    let mut pairs: Vec<(usize, usize)> = linked;
    for a in 0..n_rel {
        for b in (a + 1)..n_rel {
            if !has_edge[a * n_rel + b] && rng.gen::<f64>() < spec.join_cutoff {
                pairs.push((a, b));
            }
        }
    }

    // Attach distinct-value statistics and derive selectivities.
    let edges: Vec<JoinEdge> = pairs
        .into_iter()
        .map(|(a, b)| {
            let frac_a = spec.distinct_values.sample(&mut rng);
            let frac_b = spec.distinct_values.sample(&mut rng);
            let d_a = (frac_a * relations[a].cardinality()).max(1.0);
            let d_b = (frac_b * relations[b].cardinality()).max(1.0);
            JoinEdge::from_distincts(a, b, d_a, d_b)
        })
        .collect();

    Query::new(relations, edges).expect("generated query must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;
    use ljqo_catalog::RelId;

    #[test]
    fn generated_queries_are_connected_with_n_joins() {
        for n in [10, 25, 50] {
            let q = generate_query(&QuerySpec::default(), n, 42);
            assert_eq!(q.n_relations(), n + 1);
            assert_eq!(q.n_joins(), n);
            assert!(q.graph().is_connected(), "N={n}");
            assert!(q.graph().edges().len() >= n);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = QuerySpec::default();
        let a = generate_query(&spec, 20, 7);
        let b = generate_query(&spec, 20, 7);
        assert_eq!(a, b);
        let c = generate_query(&spec, 20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn dense_benchmark_has_more_predicates() {
        // Averaged over seeds, cutoff 0.1 must yield clearly more edges
        // than cutoff 0.01 (there are N(N+1)/2 - N candidate pairs).
        let sparse: usize = (0..20)
            .map(|s| {
                generate_query(&Benchmark::Default.spec(), 40, s)
                    .graph()
                    .edges()
                    .len()
            })
            .sum();
        let dense: usize = (0..20)
            .map(|s| {
                generate_query(&Benchmark::GraphDense.spec(), 40, s)
                    .graph()
                    .edges()
                    .len()
            })
            .sum();
        assert!(dense > sparse + 20 * 20, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn star_benchmark_concentrates_degree() {
        let max_degree_avg = |bench: Benchmark| -> f64 {
            (0..20)
                .map(|s| {
                    let q = generate_query(&bench.spec(), 40, s);
                    q.rel_ids().map(|r| q.graph().degree(r)).max().unwrap() as f64
                })
                .sum::<f64>()
                / 20.0
        };
        let star = max_degree_avg(Benchmark::GraphStar);
        let chain = max_degree_avg(Benchmark::GraphChain);
        assert!(
            star > 2.0 * chain,
            "star max-degree {star} should dwarf chain {chain}"
        );
    }

    #[test]
    fn chain_benchmark_is_path_like() {
        // Zero the extra-predicate cutoff to isolate step 1: with ~780
        // candidate pairs even a 0.01 cutoff adds ~8 extra edges, pushing
        // ~15 relations above degree 2 in expectation — a path test over
        // the full pipeline would hinge on seed luck.
        let spec = QuerySpec {
            join_cutoff: 0.0,
            ..Benchmark::GraphChain.spec()
        };
        let q = generate_query(&spec, 40, 3);
        // The chain bias extends the most recent relation 95% of the
        // time, so the bulk of relations sit on a path: degree <= 2.
        let low: usize = q.rel_ids().filter(|&r| q.graph().degree(r) <= 2).count();
        assert!(
            low * 4 >= q.n_relations() * 3,
            "only {low}/{} relations have degree <= 2",
            q.n_relations()
        );
    }

    #[test]
    fn selectivities_follow_uniformity_assumption() {
        let q = generate_query(&QuerySpec::default(), 15, 11);
        for e in q.graph().edges() {
            let expect = 1.0 / e.distinct_a.max(e.distinct_b);
            assert!((e.selectivity - expect).abs() < 1e-12);
            assert!(e.distinct_a >= 1.0 && e.distinct_b >= 1.0);
        }
    }

    #[test]
    fn distinct_counts_do_not_exceed_cardinality_scale() {
        let q = generate_query(&QuerySpec::default(), 30, 5);
        for e in q.graph().edges() {
            for (rel, d) in [(e.a, e.distinct_a), (e.b, e.distinct_b)] {
                assert!(
                    d <= q.cardinality(RelId(rel.0)) + 1e-9,
                    "distinct {d} exceeds cardinality of {rel}"
                );
            }
        }
    }

    #[test]
    fn identity_permutation_is_valid_by_construction() {
        use ljqo_plan::validity::is_valid;
        for seed in 0..10 {
            let q = generate_query(&QuerySpec::default(), 30, seed);
            let order: Vec<RelId> = q.rel_ids().collect();
            assert!(is_valid(q.graph(), &order), "seed {seed}");
        }
    }
}
