//! Synthetic data generation matching catalog statistics.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{EdgeId, Query, RelId};

use crate::table::{ColKey, Table};

/// Generate one table per relation of `query`.
///
/// * Row count = the relation's effective cardinality (selections are
///   modeled as already applied, matching the optimizer's view).
/// * For each incident join predicate, a column whose values are uniform
///   over a domain of the catalog's distinct-value count for that side —
///   so measured join selectivities match the uniformity assumption
///   `J = 1/max(D_a, D_b)` in expectation.
///
/// Deterministic in `seed`. Returns tables indexed by relation id.
pub fn generate_data(query: &Query, seed: u64) -> Vec<Table> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = query.graph();
    let mut tables = Vec::with_capacity(query.n_relations());
    for rel in query.rel_ids() {
        let n_rows = query.cardinality(rel).round().max(1.0) as usize;
        let mut schema = Vec::new();
        let mut columns = Vec::new();
        for &eid in graph.incident(rel) {
            let e = graph.edge(eid);
            let domain = e.distinct_on(rel).unwrap_or(1.0).round().max(1.0) as u64;
            schema.push(ColKey { rel, edge: eid });
            columns.push((0..n_rows).map(|_| rng.gen_range(0..domain)).collect());
        }
        if schema.is_empty() {
            // Isolated relation: a single dummy column keeps row counts
            // observable.
            schema.push(ColKey {
                rel,
                edge: EdgeId(u32::MAX),
            });
            columns.push(vec![0; n_rows]);
        }
        tables.push(Table::new(schema, columns));
    }
    tables
}

/// Convenience: the table for one relation.
pub(crate) fn table_of(tables: &[Table], rel: RelId) -> &Table {
    &tables[rel.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    #[test]
    fn row_counts_match_effective_cardinalities() {
        let q = QueryBuilder::new()
            .relation("a", 100)
            .relation_with_selection("b", 1000, 0.1)
            .join_on_distincts("a", "b", 50.0, 80.0)
            .build()
            .unwrap();
        let data = generate_data(&q, 1);
        assert_eq!(data[0].n_rows(), 100);
        assert_eq!(data[1].n_rows(), 100); // 1000 * 0.1
    }

    #[test]
    fn join_columns_respect_domains() {
        let q = QueryBuilder::new()
            .relation("a", 500)
            .relation("b", 500)
            .join_on_distincts("a", "b", 20.0, 40.0)
            .build()
            .unwrap();
        let data = generate_data(&q, 2);
        assert!(data[0].columns[0].iter().all(|&v| v < 20));
        assert!(data[1].columns[0].iter().all(|&v| v < 40));
    }

    #[test]
    fn deterministic_in_seed() {
        let q = QueryBuilder::new()
            .relation("a", 200)
            .relation("b", 300)
            .join_on_distincts("a", "b", 10.0, 10.0)
            .build()
            .unwrap();
        assert_eq!(generate_data(&q, 9), generate_data(&q, 9));
        assert_ne!(generate_data(&q, 9), generate_data(&q, 10));
    }

    #[test]
    fn isolated_relation_gets_dummy_column() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("island", 5)
            .join_on_distincts("a", "b", 5.0, 5.0)
            .build()
            .unwrap();
        let data = generate_data(&q, 0);
        assert_eq!(data[2].n_rows(), 5);
        assert_eq!(data[2].n_cols(), 1);
    }

    #[test]
    fn measured_selectivity_tracks_uniformity_assumption() {
        let q = QueryBuilder::new()
            .relation("a", 2000)
            .relation("b", 2000)
            .join_on_distincts("a", "b", 100.0, 100.0)
            .build()
            .unwrap();
        let data = generate_data(&q, 3);
        // Count matching pairs by brute force.
        let mut matches = 0u64;
        for &x in &data[0].columns[0] {
            for &y in &data[1].columns[0] {
                if x == y {
                    matches += 1;
                }
            }
        }
        let measured = matches as f64 / (2000.0 * 2000.0);
        let expected = 0.01; // 1/max(100,100)
        assert!(
            (measured - expected).abs() < expected * 0.2,
            "measured {measured} vs expected {expected}"
        );
    }
}
