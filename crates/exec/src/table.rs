//! Columnar tables for the mini engine.

use ljqo_catalog::{EdgeId, RelId};

/// Identifies a join column: the join column of relation `rel` for join
/// predicate `edge`. Base tables carry one column per incident edge;
/// intermediate tables carry the union of their constituents' columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColKey {
    /// The relation the column belongs to.
    pub rel: RelId,
    /// The join predicate the column serves.
    pub edge: EdgeId,
}

/// A columnar table of `u64` join-key values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column identities, parallel to `columns`.
    pub schema: Vec<ColKey>,
    /// Column data; all columns have equal length.
    pub columns: Vec<Vec<u64>>,
    n_rows: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Vec<ColKey>) -> Self {
        let n_cols = schema.len();
        Table {
            schema,
            columns: vec![Vec::new(); n_cols],
            n_rows: 0,
        }
    }

    /// Build a table from schema and columns. Panics if column lengths
    /// disagree with each other or with the schema length.
    pub fn new(schema: Vec<ColKey>, columns: Vec<Vec<u64>>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column arity mismatch");
        let n_rows = columns.first().map_or(0, Vec::len);
        assert!(columns.iter().all(|c| c.len() == n_rows), "ragged columns");
        Table {
            schema,
            columns,
            n_rows,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// Index of the column with the given key, if present.
    pub fn col_index(&self, key: ColKey) -> Option<usize> {
        self.schema.iter().position(|&k| k == key)
    }

    /// Append a row gathered from `(self_row)` of `self` and `(other_row)`
    /// of `other` into `dest` (whose schema must be self's followed by
    /// other's).
    pub(crate) fn append_joined_row(dest: &mut Table, a: &Table, ra: usize, b: &Table, rb: usize) {
        debug_assert_eq!(dest.n_cols(), a.n_cols() + b.n_cols());
        for (d, col) in dest.columns.iter_mut().zip(a.columns.iter()) {
            d.push(col[ra]);
        }
        for (d, col) in dest.columns[a.n_cols()..].iter_mut().zip(b.columns.iter()) {
            d.push(col[rb]);
        }
        dest.n_rows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rel: u32, edge: u32) -> ColKey {
        ColKey {
            rel: RelId(rel),
            edge: EdgeId(edge),
        }
    }

    #[test]
    fn construction_and_lookup() {
        let t = Table::new(vec![key(0, 0), key(0, 1)], vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.col_index(key(0, 1)), Some(1));
        assert_eq!(t.col_index(key(1, 0)), None);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_panic() {
        let _ = Table::new(vec![key(0, 0), key(0, 1)], vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn append_joined_row_concatenates() {
        let a = Table::new(vec![key(0, 0)], vec![vec![7, 8]]);
        let b = Table::new(vec![key(1, 0)], vec![vec![9]]);
        let mut dest = Table::empty(vec![key(0, 0), key(1, 0)]);
        Table::append_joined_row(&mut dest, &a, 1, &b, 0);
        assert_eq!(dest.n_rows(), 1);
        assert_eq!(dest.columns[0], vec![8]);
        assert_eq!(dest.columns[1], vec![9]);
    }
}
