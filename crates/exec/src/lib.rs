//! # ljqo-exec — a miniature in-memory execution engine
//!
//! The paper evaluates optimizers purely against cost models; it never
//! executes plans. This crate closes that loop: it generates synthetic
//! *data* matching a query's catalog statistics (cardinalities and
//! join-column distinct counts), then executes any valid join order with
//! real hash joins, counting tuples touched. The integration tests and the
//! `executed_plan` example use it to check that the estimator's
//! intermediate sizes track reality and that cheaper plans (per the cost
//! model) really do less work.
//!
//! The engine is deliberately small: uniform `u64` join columns, equality
//! predicates only, selections pre-applied (relations are generated at
//! their effective cardinality) — exactly the modeling assumptions of the
//! paper's synthetic benchmarks.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod datagen;
mod engine;
mod table;
mod validate;

pub use datagen::generate_data;
pub use engine::{execute_order, ExecError, ExecStats, ExecutionEngine};
pub use table::{ColKey, Table};
pub use validate::{validate_order, validate_order_fresh, PlanValidation, StepReport};
