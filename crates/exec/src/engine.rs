//! Plan execution with hash joins.

use std::collections::HashMap;

use ljqo_catalog::{Query, RelId};

use crate::datagen::table_of;
use crate::table::{ColKey, Table};

/// Execution failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An intermediate result exceeded the engine's row guard — the plan
    /// is too explosive to execute (typically a cross product of large
    /// inputs).
    Blowup {
        /// The join step (0-based) that blew up.
        step: usize,
        /// The guard that was exceeded.
        limit: usize,
    },
    /// The order referenced a relation twice or not at all.
    MalformedOrder,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Blowup { step, limit } => {
                write!(
                    f,
                    "intermediate result at join {step} exceeded {limit} rows"
                )
            }
            ExecError::MalformedOrder => write!(f, "malformed join order"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Tuple-level work counters from one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Rows of each intermediate result, one entry per join.
    pub intermediate_rows: Vec<usize>,
    /// Tuples inserted into hash tables (inner/build side).
    pub build_tuples: u64,
    /// Tuples hashed on the probe side.
    pub probe_tuples: u64,
    /// Result tuples materialized, summed over all joins.
    pub output_tuples: u64,
}

impl ExecStats {
    /// Final result size (rows of the last intermediate), 0 for empty
    /// plans.
    pub fn final_rows(&self) -> usize {
        self.intermediate_rows.last().copied().unwrap_or(0)
    }

    /// A single scalar "work" figure: build + probe + output tuples — the
    /// quantity the main-memory cost model prices.
    pub fn total_work(&self) -> u64 {
        self.build_tuples + self.probe_tuples + self.output_tuples
    }
}

/// The engine: a row guard plus the execution entry points.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionEngine {
    /// Abort when any intermediate exceeds this many rows.
    pub max_rows: usize,
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        ExecutionEngine {
            max_rows: 10_000_000,
        }
    }
}

impl ExecutionEngine {
    /// Execute `order` over `tables` (from
    /// [`generate_data`](crate::generate_data)), returning work counters.
    ///
    /// Each step hash-joins the running intermediate (outer, probe side)
    /// with the next base relation (inner, build side) on **all** join
    /// predicates linking it to relations already joined — multi-predicate
    /// steps become multi-column keys. A step with no linking predicate is
    /// executed as a cross product.
    pub fn execute(
        &self,
        query: &Query,
        tables: &[Table],
        order: &[RelId],
    ) -> Result<ExecStats, ExecError> {
        let mut seen = vec![false; query.n_relations()];
        for &r in order {
            if seen[r.index()] {
                return Err(ExecError::MalformedOrder);
            }
            seen[r.index()] = true;
        }
        let Some((&first, rest)) = order.split_first() else {
            return Ok(ExecStats::default());
        };
        let mut stats = ExecStats::default();
        let mut current = table_of(tables, first).clone();
        let mut placed = vec![false; query.n_relations()];
        placed[first.index()] = true;

        for (step, &inner_rel) in rest.iter().enumerate() {
            let inner = table_of(tables, inner_rel);
            // Key pairs: for every predicate from inner_rel into the
            // placed set, the (outer column, inner column) indices.
            let mut keys: Vec<(usize, usize)> = Vec::new();
            for &eid in query.graph().incident(inner_rel) {
                let e = query.graph().edge(eid);
                let Some(other) = e.other(inner_rel) else {
                    continue;
                };
                if !placed[other.index()] {
                    continue;
                }
                let outer_idx = current
                    .col_index(ColKey {
                        rel: other,
                        edge: eid,
                    })
                    .expect("outer join column must be present");
                let inner_idx = inner
                    .col_index(ColKey {
                        rel: inner_rel,
                        edge: eid,
                    })
                    .expect("inner join column must be present");
                keys.push((outer_idx, inner_idx));
            }

            let mut result_schema = current.schema.clone();
            result_schema.extend_from_slice(&inner.schema);
            let mut result = Table::empty(result_schema);

            if keys.is_empty() {
                // Cross product.
                let rows = current.n_rows().saturating_mul(inner.n_rows());
                if rows > self.max_rows {
                    return Err(ExecError::Blowup {
                        step,
                        limit: self.max_rows,
                    });
                }
                for ra in 0..current.n_rows() {
                    for rb in 0..inner.n_rows() {
                        Table::append_joined_row(&mut result, &current, ra, inner, rb);
                    }
                }
                stats.output_tuples += rows as u64;
            } else {
                // Build on the inner (base) relation.
                let mut ht: HashMap<Vec<u64>, Vec<usize>> = HashMap::with_capacity(inner.n_rows());
                for rb in 0..inner.n_rows() {
                    let key: Vec<u64> = keys.iter().map(|&(_, ic)| inner.columns[ic][rb]).collect();
                    ht.entry(key).or_default().push(rb);
                }
                stats.build_tuples += inner.n_rows() as u64;
                // Probe with the outer.
                for ra in 0..current.n_rows() {
                    let key: Vec<u64> = keys
                        .iter()
                        .map(|&(oc, _)| current.columns[oc][ra])
                        .collect();
                    if let Some(matches) = ht.get(&key) {
                        for &rb in matches {
                            Table::append_joined_row(&mut result, &current, ra, inner, rb);
                            stats.output_tuples += 1;
                            if result.n_rows() > self.max_rows {
                                return Err(ExecError::Blowup {
                                    step,
                                    limit: self.max_rows,
                                });
                            }
                        }
                    }
                }
                stats.probe_tuples += current.n_rows() as u64;
            }

            stats.intermediate_rows.push(result.n_rows());
            placed[inner_rel.index()] = true;
            current = result;
        }
        Ok(stats)
    }
}

/// Convenience wrapper: generate nothing, just execute with default
/// guards.
pub fn execute_order(
    query: &Query,
    tables: &[Table],
    order: &[RelId],
) -> Result<ExecStats, ExecError> {
    ExecutionEngine::default().execute(query, tables, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::generate_data;
    use ljqo_catalog::QueryBuilder;

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    fn small_query() -> Query {
        QueryBuilder::new()
            .relation("a", 300)
            .relation("b", 200)
            .relation("c", 100)
            .join_on_distincts("a", "b", 30.0, 30.0)
            .join_on_distincts("b", "c", 25.0, 25.0)
            .build()
            .unwrap()
    }

    #[test]
    fn execution_produces_plausible_sizes() {
        let q = small_query();
        let data = generate_data(&q, 7);
        let stats = execute_order(&q, &data, &ids(&[0, 1, 2])).unwrap();
        assert_eq!(stats.intermediate_rows.len(), 2);
        // |a⋈b| expectation: 300·200/30 = 2000.
        let got = stats.intermediate_rows[0] as f64;
        assert!(
            (got - 2000.0).abs() < 2000.0 * 0.35,
            "|a⋈b| = {got}, expected ≈ 2000"
        );
        assert!(stats.total_work() > 0);
    }

    #[test]
    fn final_size_is_order_invariant() {
        let q = small_query();
        let data = generate_data(&q, 11);
        let a = execute_order(&q, &data, &ids(&[0, 1, 2])).unwrap();
        let b = execute_order(&q, &data, &ids(&[2, 1, 0])).unwrap();
        let c = execute_order(&q, &data, &ids(&[1, 0, 2])).unwrap();
        assert_eq!(a.final_rows(), b.final_rows());
        assert_eq!(a.final_rows(), c.final_rows());
    }

    #[test]
    fn multi_predicate_joins_use_composite_keys() {
        // Two predicates between a and b: both must hold.
        let q = QueryBuilder::new()
            .relation("a", 400)
            .relation("b", 400)
            .join_on_distincts("a", "b", 10.0, 10.0)
            .join_on_distincts("a", "b", 8.0, 8.0)
            .build()
            .unwrap();
        let data = generate_data(&q, 5);
        let stats = execute_order(&q, &data, &ids(&[0, 1])).unwrap();
        // Expected 400·400/(10·8) = 2000 under independence.
        let got = stats.final_rows() as f64;
        assert!(
            (got - 2000.0).abs() < 2000.0 * 0.4,
            "composite-key join produced {got}, expected ≈ 2000"
        );
    }

    #[test]
    fn cross_product_counts_all_pairs() {
        let q = QueryBuilder::new()
            .relation("a", 30)
            .relation("b", 40)
            .build()
            .unwrap();
        let data = generate_data(&q, 1);
        let stats = execute_order(&q, &data, &ids(&[0, 1])).unwrap();
        assert_eq!(stats.final_rows(), 1200);
    }

    #[test]
    fn blowup_guard_trips() {
        let q = QueryBuilder::new()
            .relation("a", 5000)
            .relation("b", 5000)
            .build()
            .unwrap();
        let data = generate_data(&q, 1);
        let engine = ExecutionEngine { max_rows: 10_000 };
        let err = engine.execute(&q, &data, &ids(&[0, 1])).unwrap_err();
        assert!(matches!(err, ExecError::Blowup { step: 0, .. }));
    }

    #[test]
    fn malformed_orders_rejected() {
        let q = small_query();
        let data = generate_data(&q, 1);
        let err = execute_order(&q, &data, &[RelId(0), RelId(0)]).unwrap_err();
        assert_eq!(err, ExecError::MalformedOrder);
    }

    #[test]
    fn empty_order_is_empty_stats() {
        let q = small_query();
        let data = generate_data(&q, 1);
        let stats = execute_order(&q, &data, &[]).unwrap();
        assert_eq!(stats, ExecStats::default());
    }
}
