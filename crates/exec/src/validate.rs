//! EXPLAIN ANALYZE-style plan validation: execute an order and compare
//! the optimizer's estimates against measured reality, step by step.

use ljqo_catalog::{Query, RelId};
use ljqo_cost::estimate::intermediate_sizes;

use crate::datagen::generate_data;
use crate::engine::{ExecError, ExecStats, ExecutionEngine};
use crate::table::Table;

/// Per-join comparison of estimate vs measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The inner relation joined at this step.
    pub inner: RelId,
    /// Estimated output cardinality.
    pub estimated_rows: f64,
    /// Measured output rows.
    pub measured_rows: usize,
    /// `ln(estimate / measured)`; 0 is perfect, positive means
    /// overestimation. Infinite when the measurement is zero.
    pub log_q_error: f64,
}

/// Full validation report for one executed order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanValidation {
    /// Per-join comparisons.
    pub steps: Vec<StepReport>,
    /// Raw execution counters.
    pub stats: ExecStats,
}

impl PlanValidation {
    /// Geometric-mean multiplicative estimation error
    /// (`exp(mean |ln(est/meas)|)`), the standard q-error summary.
    /// 1.0 is perfect. Steps with zero measured rows are skipped.
    pub fn geometric_q_error(&self) -> f64 {
        let finite: Vec<f64> = self
            .steps
            .iter()
            .map(|s| s.log_q_error.abs())
            .filter(|e| e.is_finite())
            .collect();
        if finite.is_empty() {
            return f64::NAN;
        }
        (finite.iter().sum::<f64>() / finite.len() as f64).exp()
    }

    /// Worst per-step multiplicative error among finite steps.
    pub fn max_q_error(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.log_q_error.abs())
            .filter(|e| e.is_finite())
            .fold(1.0, f64::max)
            .exp()
    }

    /// Multi-line text rendering for EXPLAIN ANALYZE-style output.
    pub fn render(&self, query: &Query) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4}  {:<14} {:>14} {:>12} {:>8}",
            "join", "inner", "estimated", "measured", "q-err"
        );
        for (i, s) in self.steps.iter().enumerate() {
            let q = s.log_q_error.abs().exp();
            let _ = writeln!(
                out,
                "{:>4}  {:<14} {:>14.1} {:>12} {:>8.2}",
                i + 1,
                query.relation(s.inner).name,
                s.estimated_rows,
                s.measured_rows,
                q
            );
        }
        let _ = writeln!(
            out,
            "work: {} tuples (build {} / probe {} / output {}); geo q-error {:.2}",
            self.stats.total_work(),
            self.stats.build_tuples,
            self.stats.probe_tuples,
            self.stats.output_tuples,
            self.geometric_q_error()
        );
        out
    }
}

/// Execute `order` over `tables` and compare against the estimator.
pub fn validate_order(
    query: &Query,
    tables: &[Table],
    order: &[RelId],
) -> Result<PlanValidation, ExecError> {
    let stats = ExecutionEngine::default().execute(query, tables, order)?;
    let estimates = intermediate_sizes(query, order);
    let steps = estimates
        .iter()
        .zip(&stats.intermediate_rows)
        .zip(order.iter().skip(1))
        .map(|((&est, &meas), &inner)| StepReport {
            inner,
            estimated_rows: est,
            measured_rows: meas,
            log_q_error: if meas == 0 {
                f64::INFINITY
            } else {
                (est / meas as f64).ln()
            },
        })
        .collect();
    Ok(PlanValidation { steps, stats })
}

/// Convenience: generate data (deterministically from `data_seed`) and
/// validate in one call.
pub fn validate_order_fresh(
    query: &Query,
    order: &[RelId],
    data_seed: u64,
) -> Result<PlanValidation, ExecError> {
    let tables = generate_data(query, data_seed);
    validate_order(query, &tables, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 500)
            .relation("b", 400)
            .relation("c", 300)
            .join_on_distincts("a", "b", 300.0, 300.0)
            .join_on_distincts("b", "c", 200.0, 200.0)
            .build()
            .unwrap()
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn validation_produces_one_step_per_join() {
        let q = query();
        let v = validate_order_fresh(&q, &ids(&[0, 1, 2]), 7).unwrap();
        assert_eq!(v.steps.len(), 2);
        assert_eq!(v.steps[0].inner, RelId(1));
        assert_eq!(v.steps[1].inner, RelId(2));
        assert!(v.geometric_q_error() >= 1.0 || v.geometric_q_error().is_nan());
        assert!(v.max_q_error() >= 1.0);
    }

    #[test]
    fn estimates_are_close_on_uniform_data() {
        let q = query();
        let v = validate_order_fresh(&q, &ids(&[0, 1, 2]), 11).unwrap();
        // Uniform independent columns: geometric q-error should be small.
        let qe = v.geometric_q_error();
        assert!(qe < 1.5, "geometric q-error {qe}");
    }

    #[test]
    fn render_mentions_relations_and_work() {
        let q = query();
        let v = validate_order_fresh(&q, &ids(&[2, 1, 0]), 3).unwrap();
        let text = v.render(&q);
        assert!(text.contains("geo q-error"));
        assert!(text.contains('b'));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn zero_measured_rows_are_skipped_in_summaries() {
        // Force an empty join: selections leave ~20 rows a side, drawn
        // from a 100k-value domain, so expected matches are ≪ 1. (The
        // distinct counts stay within base cardinality — validation
        // rejects catalogs that claim more distincts than rows.)
        let q = QueryBuilder::new()
            .relation_with_selection("a", 100_000, 0.0002)
            .relation_with_selection("b", 100_000, 0.0002)
            .join_on_distincts("a", "b", 100_000.0, 100_000.0)
            .build()
            .unwrap();
        let v = validate_order_fresh(&q, &ids(&[0, 1]), 5).unwrap();
        if v.steps[0].measured_rows == 0 {
            assert!(v.steps[0].log_q_error.is_infinite());
            assert!(v.geometric_q_error().is_nan());
        }
    }
}
