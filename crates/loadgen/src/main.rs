//! `ljqo-loadgen` — offer load to a running `ljqo-server`.
//!
//! ```text
//! ljqo-loadgen [--addr HOST:PORT] [--connections N] [--duration-s F]
//!              [--warmup-s F] [--qps F] [--shape star|snowflake|cyclic]
//!              [--joins N] [--classes N] [--seed N]
//!              [--out FILE] [--stats] [--min-completed N]
//! ```
//!
//! Prints the [`ljqo_loadgen::LoadReport`] as pretty JSON to stdout
//! (or `--out FILE`). `--stats` additionally fetches and prints the
//! server's `/stats` document after the run. `--min-completed N` makes
//! the process exit non-zero if fewer than `N` requests completed —
//! the CI smoke job's assertion.

use std::process::ExitCode;
use std::time::Duration;

use ljqo_loadgen::{run_load, LoadSpec};
use ljqo_server::fetch_stats_http;
use ljqo_workload::JobShape;

fn usage() -> ! {
    eprintln!(
        "usage: ljqo-loadgen [--addr HOST:PORT] [--connections N] [--duration-s F]\n\
         \x20                   [--warmup-s F] [--qps F] [--shape star|snowflake|cyclic]\n\
         \x20                   [--joins N] [--classes N] [--seed N]\n\
         \x20                   [--out FILE] [--stats] [--min-completed N]"
    );
    std::process::exit(2);
}

struct Options {
    spec: LoadSpec,
    out: Option<String>,
    print_stats: bool,
    min_completed: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        spec: LoadSpec::default(),
        out: None,
        print_stats: false,
        min_completed: 0,
    };
    let mut args = std::env::args().skip(1);
    let value_for = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.spec.addr = value_for("--addr", &mut args),
            "--connections" => {
                opts.spec.connections =
                    parse_int("--connections", &value_for("--connections", &mut args)) as usize;
            }
            "--duration-s" => {
                opts.spec.duration = Duration::from_secs_f64(
                    parse_num("--duration-s", &value_for("--duration-s", &mut args)).max(0.0),
                );
            }
            "--warmup-s" => {
                opts.spec.warmup = Duration::from_secs_f64(
                    parse_num("--warmup-s", &value_for("--warmup-s", &mut args)).max(0.0),
                );
            }
            "--qps" => {
                opts.spec.qps = Some(parse_num("--qps", &value_for("--qps", &mut args)));
            }
            "--shape" => {
                let v = value_for("--shape", &mut args);
                opts.spec.shape = JobShape::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown shape `{v}` (star|snowflake|cyclic)");
                    usage();
                });
            }
            "--joins" => {
                opts.spec.n_joins = parse_int("--joins", &value_for("--joins", &mut args)) as usize;
            }
            "--classes" => {
                opts.spec.classes =
                    parse_int("--classes", &value_for("--classes", &mut args)) as usize;
            }
            "--seed" => opts.spec.seed = parse_int("--seed", &value_for("--seed", &mut args)),
            "--out" => opts.out = Some(value_for("--out", &mut args)),
            "--stats" => opts.print_stats = true,
            "--min-completed" => {
                opts.min_completed =
                    parse_int("--min-completed", &value_for("--min-completed", &mut args));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }
    opts
}

fn parse_num(flag: &str, v: &str) -> f64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a number, got `{v}`");
        usage();
    })
}

fn parse_int(flag: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects an integer, got `{v}`");
        usage();
    })
}

fn main() -> ExitCode {
    let opts = parse_args();
    let report = match run_load(&opts.spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json().to_string_pretty();
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{json}"),
    }
    if opts.print_stats {
        match fetch_stats_http(&opts.spec.addr) {
            Ok(stats) => println!("{}", stats.to_string_pretty()),
            Err(e) => {
                eprintln!("error: cannot fetch /stats: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.completed < opts.min_completed {
        eprintln!(
            "error: completed {} requests, below --min-completed {}",
            report.completed, opts.min_completed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
