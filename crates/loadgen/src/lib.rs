//! # ljqo-loadgen — load generator for `ljqo-server`
//!
//! Drives a running daemon with JOB-shaped workloads (reusing
//! `ljqo-workload`'s generators) and reports client-observed latency
//! percentiles and throughput. Two pacing modes:
//!
//! * **closed loop** (default): each connection keeps exactly one
//!   request in flight — send, wait, repeat — so offered load adapts to
//!   server speed and the report measures best-case latency at full
//!   utilization of `connections` streams.
//! * **paced** (`qps`): each connection sends on a fixed schedule
//!   targeting `qps / connections` requests per second. If the server
//!   falls behind the schedule the loop degrades toward closed-loop
//!   (each connection still waits for its reply before sending again),
//!   so reported throughput below the target means the server saturated.
//!
//! A warmup window is measured out: requests answered before it elapses
//! populate the server's plan cache but are excluded from the report.
//! Latencies are collected exactly (one `u64` per request) and
//! percentiles computed from the sorted sample — no histogram
//! quantization on the client side.
//!
//! The query mix is controlled by `classes`: `K > 0` draws each request
//! round-robin from `K` distinct pre-generated queries (a warm,
//! cacheable workload — expect `serving.cache_hits` to climb), while
//! `K = 0` makes every request structurally unique (a cold workload
//! that defeats the cache; every request pays a cold solve).
//!
//! ```no_run
//! use ljqo_loadgen::{run_load, LoadSpec};
//! use std::time::Duration;
//!
//! let spec = LoadSpec {
//!     addr: "127.0.0.1:7411".to_string(),
//!     duration: Duration::from_secs(5),
//!     ..LoadSpec::default()
//! };
//! let report = run_load(&spec).unwrap();
//! println!("{}", report.to_json().to_string_pretty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::BTreeMap;
use std::io;
use std::time::{Duration, Instant};

use ljqo_cli::QueryFile;
use ljqo_json::Value;
use ljqo_server::Client;
use ljqo_workload::{generate_job_query, JobShape, JobSpec};

/// What load to offer, to whom.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Concurrent connections, each with one request in flight.
    pub connections: usize,
    /// Measurement window (after warmup).
    pub duration: Duration,
    /// Cache-warming window excluded from the report.
    pub warmup: Duration,
    /// Total target request rate across all connections; `None` runs
    /// closed-loop as fast as the server answers.
    pub qps: Option<f64>,
    /// Workload shape for generated queries.
    pub shape: JobShape,
    /// Joins per generated query.
    pub n_joins: usize,
    /// Distinct query classes to rotate through; `0` makes every
    /// request unique (fully cold).
    pub classes: usize,
    /// Base seed for query generation.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            addr: "127.0.0.1:7411".to_string(),
            connections: 1,
            duration: Duration::from_secs(10),
            warmup: Duration::from_secs(2),
            qps: None,
            shape: JobShape::Star,
            n_joins: 12,
            classes: 16,
            seed: 0,
        }
    }
}

/// Client-observed latency summary, in microseconds. Percentiles are
/// exact (nearest-rank over the sorted sample).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[(((q * n as f64).ceil() as usize).clamp(1, n)) - 1];
        LatencyStats {
            mean_us: samples.iter().sum::<u64>() as f64 / n as f64,
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p95_us: rank(0.95),
            p99_us: rank(0.99),
            max_us: samples[n - 1],
        }
    }
}

/// What a load run measured (post-warmup unless noted).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadReport {
    /// Requests answered `"ok": true` inside the measurement window.
    pub completed: u64,
    /// Requests answered `"ok": false` with an optimizer error.
    pub failed: u64,
    /// Requests answered `"ok": false` with an admission code
    /// (`overload` / `draining`).
    pub rejected: u64,
    /// Connection-level I/O errors (a connection that dies stops
    /// offering load; its requests so far still count).
    pub io_errors: u64,
    /// Requests answered during warmup (excluded from everything else).
    pub warmup_requests: u64,
    /// The measurement window actually used.
    pub duration: Duration,
    /// Completed requests per second of measurement window.
    pub throughput: f64,
    /// Latency summary over completed + failed requests.
    pub latency: LatencyStats,
    /// Count of each `"outcome"` value observed in completed responses
    /// (`hit`, `hit_recosted`, `miss`, `stale`) — the client-side view
    /// of the server's cache effectiveness.
    pub outcomes: BTreeMap<String, u64>,
}

impl LoadReport {
    /// The report as JSON (the shape `BENCH_serving.json` embeds).
    pub fn to_json(&self) -> Value {
        let outcomes = Value::Object(
            self.outcomes
                .iter()
                .map(|(k, v)| (k.clone(), Value::from(*v)))
                .collect(),
        );
        Value::Object(
            [
                ("completed", Value::from(self.completed)),
                ("failed", Value::from(self.failed)),
                ("rejected", Value::from(self.rejected)),
                ("io_errors", Value::from(self.io_errors)),
                ("warmup_requests", Value::from(self.warmup_requests)),
                ("duration_s", Value::from(self.duration.as_secs_f64())),
                ("throughput_qps", Value::from(self.throughput)),
                ("latency_us_mean", Value::from(self.latency.mean_us)),
                ("latency_us_p50", Value::from(self.latency.p50_us)),
                ("latency_us_p90", Value::from(self.latency.p90_us)),
                ("latency_us_p95", Value::from(self.latency.p95_us)),
                ("latency_us_p99", Value::from(self.latency.p99_us)),
                ("latency_us_max", Value::from(self.latency.max_us)),
                ("outcomes", outcomes),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        )
    }
}

/// Per-connection tallies, merged after the run.
#[derive(Default)]
struct ConnOutcome {
    completed: u64,
    failed: u64,
    rejected: u64,
    io_errors: u64,
    warmup_requests: u64,
    latencies: Vec<u64>,
    outcomes: BTreeMap<String, u64>,
}

/// Mix `seed` into a well-spread per-request seed (splitmix64 finalizer,
/// the same mixing the optimizer uses for per-query seeds).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Offer load per `spec` and collect a [`LoadReport`].
///
/// Connections run on scoped threads; the call blocks for roughly
/// `spec.warmup + spec.duration`. Fails only if *no* connection could
/// be established — individual connection failures mid-run are counted
/// in [`LoadReport::io_errors`].
pub fn run_load(spec: &LoadSpec) -> io::Result<LoadReport> {
    let connections = spec.connections.max(1);
    let job_spec = JobSpec::new(spec.shape);
    // Pre-generate the class pool once; `classes == 0` generates
    // per-request unique queries inside the loop instead.
    let pool: Vec<QueryFile> = (0..spec.classes)
        .map(|k| {
            QueryFile::from_query(&generate_job_query(
                &job_spec,
                spec.n_joins,
                mix(spec.seed ^ k as u64),
            ))
        })
        .collect();

    // Fail fast if the server is unreachable at all.
    drop(Client::connect(&spec.addr)?);

    let start = Instant::now();
    let measure_from = start + spec.warmup;
    let end = measure_from + spec.duration;

    let results: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn_index| {
                let pool = &pool;
                let job_spec = &job_spec;
                scope.spawn(move || {
                    let mut out = ConnOutcome::default();
                    let mut client = match Client::connect(&spec.addr) {
                        Ok(c) => c,
                        Err(_) => {
                            out.io_errors += 1;
                            return out;
                        }
                    };
                    let interval = spec
                        .qps
                        .map(|q| Duration::from_secs_f64(connections as f64 / q.max(1e-9)));
                    let mut sent: u64 = 0;
                    loop {
                        if let Some(iv) = interval {
                            let due = start + iv.mul_f64(sent as f64);
                            if due >= end {
                                break;
                            }
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                        }
                        if Instant::now() >= end {
                            break;
                        }
                        let unique = mix(spec.seed ^ ((conn_index as u64) << 32 | sent) ^ 0x5eed);
                        let query = if pool.is_empty() {
                            QueryFile::from_query(&generate_job_query(
                                job_spec,
                                spec.n_joins,
                                unique,
                            ))
                        } else {
                            pool[(sent as usize + conn_index) % pool.len()].clone()
                        };
                        let id = (conn_index as u64) << 32 | sent;
                        let issued = Instant::now();
                        let reply = client.optimize(id, &query);
                        let answered = Instant::now();
                        sent += 1;
                        let reply = match reply {
                            Ok(r) => r,
                            Err(_) => {
                                out.io_errors += 1;
                                break;
                            }
                        };
                        if answered < measure_from {
                            out.warmup_requests += 1;
                            continue;
                        }
                        let latency_us = (answered - issued).as_micros() as u64;
                        match reply.get("ok").and_then(Value::as_bool) {
                            Some(true) => {
                                out.completed += 1;
                                out.latencies.push(latency_us);
                                if let Some(o) = reply.get("outcome").and_then(Value::as_str) {
                                    *out.outcomes.entry(o.to_string()).or_insert(0) += 1;
                                }
                            }
                            _ => {
                                let code = reply
                                    .get("code")
                                    .and_then(Value::as_str)
                                    .unwrap_or("unknown");
                                if code == "overload" || code == "draining" {
                                    out.rejected += 1;
                                } else {
                                    out.failed += 1;
                                    out.latencies.push(latency_us);
                                }
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection thread panicked"))
            .collect()
    });

    let mut report = LoadReport {
        duration: spec.duration,
        ..Default::default()
    };
    let mut latencies = Vec::new();
    for r in results {
        report.completed += r.completed;
        report.failed += r.failed;
        report.rejected += r.rejected;
        report.io_errors += r.io_errors;
        report.warmup_requests += r.warmup_requests;
        latencies.extend(r.latencies);
        for (k, v) in r.outcomes {
            *report.outcomes.entry(k).or_insert(0) += v;
        }
    }
    report.throughput = report.completed as f64 / spec.duration.as_secs_f64().max(1e-9);
    report.latency = LatencyStats::from_samples(latencies);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_exact_percentiles() {
        let s = LatencyStats::from_samples((1..=1000).collect());
        assert_eq!(s.p50_us, 500);
        assert_eq!(s.p90_us, 900);
        assert_eq!(s.p95_us, 950);
        assert_eq!(s.p99_us, 990);
        assert_eq!(s.max_us, 1000);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
        let one = LatencyStats::from_samples(vec![42]);
        assert_eq!(one.p50_us, 42);
        assert_eq!(one.p99_us, 42);
    }

    #[test]
    fn report_json_is_stable() {
        let mut report = LoadReport {
            completed: 10,
            duration: Duration::from_secs(2),
            throughput: 5.0,
            ..Default::default()
        };
        report.outcomes.insert("hit".to_string(), 7);
        let json = report.to_json();
        assert_eq!(json.get("completed").and_then(Value::as_u64), Some(10));
        assert_eq!(
            json.get("throughput_qps").and_then(Value::as_f64),
            Some(5.0)
        );
        assert_eq!(
            json.get("outcomes")
                .and_then(|o| o.get("hit"))
                .and_then(Value::as_u64),
            Some(7)
        );
    }
}
