//! The `ljqo-server` wire protocol: a length-prefixed binary framing.
//!
//! # Connection handshake
//!
//! A binary client opens a TCP connection and sends five bytes: the
//! magic [`MAGIC`] (`LJQO`) followed by a single protocol [`VERSION`]
//! byte. The server closes connections whose magic does not match (after
//! attempting to interpret them as HTTP — see the crate docs) and
//! answers an unsupported version with an [`FrameType::Error`] frame
//! carrying code [`codes::UNSUPPORTED_VERSION`] before closing.
//!
//! # Frames
//!
//! After the handshake the connection carries a sequence of frames in
//! each direction, every frame laid out as:
//!
//! ```text
//! [ type: u8 ][ payload length: u32, big endian ][ payload bytes ]
//! ```
//!
//! Payloads are UTF-8 JSON documents (see `docs/SERVING.md` for the
//! schemas). Frame types:
//!
//! | byte | type            | direction        | payload                       |
//! |------|-----------------|------------------|-------------------------------|
//! | 0x01 | `Optimize`      | client → server  | `{"id": N, "query": {...}}`   |
//! | 0x02 | `Response`      | server → client  | per-request result or error   |
//! | 0x03 | `Stats`         | client → server  | empty (ignored)               |
//! | 0x04 | `StatsResponse` | server → client  | the `/stats` document         |
//! | 0x05 | `Error`         | server → client  | `{"code": "...", "error": _}` |
//!
//! Responses to pipelined `Optimize` frames may arrive in any order;
//! clients correlate by the echoed `id`. `Error` frames are reserved for
//! connection-level faults (bad version, oversized frame, unknown frame
//! type) and are always followed by the server closing the connection;
//! request-level failures (overload, invalid query, …) arrive as
//! `Response` frames with `"ok": false` so the `id` correlation
//! survives.
//!
//! # Round trip
//!
//! ```
//! use ljqo_server::protocol::{read_frame, write_frame, FrameType, DEFAULT_MAX_FRAME_BYTES};
//!
//! let payload = br#"{"id":7,"query":{}}"#;
//! let mut wire = Vec::new();
//! write_frame(&mut wire, FrameType::Optimize, payload).unwrap();
//! assert_eq!(wire.len(), 5 + payload.len());
//!
//! let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES)
//!     .unwrap()
//!     .expect("not EOF");
//! assert_eq!(frame.kind, FrameType::Optimize);
//! assert_eq!(frame.payload, payload);
//! // A clean close between frames reads as `None`, not an error.
//! assert!(read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME_BYTES)
//!     .unwrap()
//!     .is_none());
//! ```

use std::io::{self, Read, Write};

/// Magic bytes a binary client sends first; anything else is treated as
/// HTTP.
pub const MAGIC: [u8; 4] = *b"LJQO";

/// Current protocol version, sent as the fifth handshake byte. The
/// server rejects other versions rather than guessing.
pub const VERSION: u8 = 1;

/// Default cap on a frame's payload size. A frame whose declared length
/// exceeds the cap is rejected *before* reading the payload, so a
/// corrupt length prefix cannot make the server allocate gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 << 20;

/// Bytes of frame header (type byte + length prefix).
pub const HEADER_LEN: usize = 5;

/// Stable error-code strings used in `Response` / `Error` payloads.
///
/// `Response` frames with `"ok": false` carry one of these in `"code"`;
/// `Error` frames always do. See `docs/SERVING.md` for the full table
/// with remediation notes.
pub mod codes {
    /// Admission queue is full; retry with backoff or add capacity.
    pub const OVERLOAD: &str = "overload";
    /// Server is draining after SIGTERM; no new work is admitted.
    pub const DRAINING: &str = "draining";
    /// Payload was not valid JSON or lacked required fields.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The query failed catalog validation (unknown relation, bad
    /// selectivity, …).
    pub const INVALID_QUERY: &str = "invalid_query";
    /// The optimizer could not produce any plan for a valid query.
    pub const OPTIMIZER_FAILED: &str = "optimizer_failed";
    /// Handshake version byte differs from [`super::VERSION`].
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// Declared payload length exceeds the server's frame cap.
    pub const FRAME_TOO_LARGE: &str = "frame_too_large";
    /// Unknown frame type or malformed framing; the connection closes.
    pub const PROTOCOL_ERROR: &str = "protocol_error";
}

/// Frame type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client request: optimize one query.
    Optimize = 0x01,
    /// Server reply to one [`FrameType::Optimize`], correlated by id.
    Response = 0x02,
    /// Client request: send the stats document.
    Stats = 0x03,
    /// Server reply to [`FrameType::Stats`].
    StatsResponse = 0x04,
    /// Connection-level fault; the server closes after sending it.
    Error = 0x05,
}

impl FrameType {
    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Option<FrameType> {
        match b {
            0x01 => Some(FrameType::Optimize),
            0x02 => Some(FrameType::Response),
            0x03 => Some(FrameType::Stats),
            0x04 => Some(FrameType::StatsResponse),
            0x05 => Some(FrameType::Error),
            _ => None,
        }
    }

    /// The wire byte.
    pub fn byte(self) -> u8 {
        self as u8
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameType,
    /// Raw payload bytes (UTF-8 JSON for every current frame type).
    pub payload: Vec<u8>,
}

/// Write the five-byte connection handshake ([`MAGIC`] + [`VERSION`]).
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION])
}

/// Read and check the handshake; returns the client's version byte.
/// Fails with `InvalidData` if the magic does not match.
pub fn read_handshake(r: &mut impl Read) -> io::Result<u8> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)?;
    if head[..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad protocol magic",
        ));
    }
    Ok(head[4])
}

/// Encode one frame onto `w`. The payload length must fit in a `u32`.
pub fn write_frame(w: &mut impl Write, kind: FrameType, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    let mut header = [0u8; HEADER_LEN];
    header[0] = kind.byte();
    header[1..].copy_from_slice(&len.to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Decode one frame from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream *before* the first header
/// byte (the peer closed between frames — the normal way a session
/// ends). A stream that ends mid-frame, declares a payload longer than
/// `max_payload`, or carries an unknown type byte is an
/// `InvalidData`/`UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> io::Result<Option<Frame>> {
    // First byte by hand so a clean close is distinguishable from a
    // truncated frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let kind = FrameType::from_byte(first[0]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame type byte 0x{:02x}", first[0]),
        )
    })?;
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {len} bytes exceeds cap of {max_payload}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame { kind, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_frame_type() {
        for kind in [
            FrameType::Optimize,
            FrameType::Response,
            FrameType::Stats,
            FrameType::StatsResponse,
            FrameType::Error,
        ] {
            let payload = format!("{{\"kind\":{}}}", kind.byte());
            let mut wire = Vec::new();
            write_frame(&mut wire, kind, payload.as_bytes()).unwrap();
            let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload.as_bytes());
            assert_eq!(FrameType::from_byte(kind.byte()), Some(kind));
        }
    }

    #[test]
    fn empty_payload_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Stats, b"").unwrap();
        assert_eq!(wire.len(), HEADER_LEN);
        let mut cursor = wire.as_slice();
        let frame = read_frame(&mut cursor, 16).unwrap().unwrap();
        assert_eq!(frame.kind, FrameType::Stats);
        assert!(frame.payload.is_empty());
        // Stream exhausted: clean EOF, not an error.
        assert!(read_frame(&mut cursor, 16).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_before_payload_read() {
        let mut wire = Vec::new();
        wire.push(FrameType::Optimize.byte());
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        // No payload bytes present at all — the cap must trip first.
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds cap"));
    }

    #[test]
    fn unknown_type_byte_is_invalid_data() {
        let wire = [0xEEu8, 0, 0, 0, 0];
        let err = read_frame(&mut wire.as_slice(), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Response, b"{\"ok\":true}").unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut wire.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn handshake_round_trip_and_bad_magic() {
        let mut wire = Vec::new();
        write_handshake(&mut wire).unwrap();
        assert_eq!(read_handshake(&mut wire.as_slice()).unwrap(), VERSION);
        let err = read_handshake(&mut b"HTTP/1.1 ".as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
