//! Server-side observability: latency histogram and connection/request
//! counters.
//!
//! Everything here is lock-free atomics so the hot request path never
//! serializes on a stats mutex, and every counter is monotonic so the
//! `/stats` endpoint can be scraped at any moment without resetting
//! anything (the same contract as [`ljqo::ServingCounters`]). The
//! optimizer-level view (cold solves, cache hits, degradation rungs,
//! per-method wins) lives in `ljqo::serving`; this module covers the
//! layers above it — sockets, admission, batching, and end-to-end
//! latency.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution bits of the log-bucketed histogram: each
/// power-of-two range is split into `2^SUB_BITS = 8` linear sub-buckets,
/// bounding the relative quantization error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket count: values below [`SUB`] get exact buckets, and each of the
/// remaining 61 power-of-two groups gets [`SUB`] sub-buckets, covering
/// the full `u64` range.
const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let group = (msb - SUB_BITS + 1) as u64;
        let sub = (v >> (msb - SUB_BITS)) & (SUB - 1);
        (group * SUB + sub) as usize
    }
}

/// Inclusive lower bound of a bucket — the value percentiles report.
fn lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        index
    } else {
        let group = index / SUB;
        let sub = index % SUB;
        let msb = (group - 1 + SUB_BITS as u64) as u32;
        (1u64 << msb) | (sub << (msb - SUB_BITS))
    }
}

/// A log-bucketed latency histogram over `u64` microsecond samples.
///
/// Recording is one `fetch_add` (plus a `fetch_max` for the max
/// tracker); reading walks the fixed 496-bucket table. Buckets are
/// log-spaced with 8 linear sub-buckets per octave, so reported
/// percentiles are the *lower bound* of the containing bucket and
/// understate the true quantile by at most 12.5%. That resolution is
/// deliberate: it keeps the histogram allocation-free, fixed-size, and
/// safe to share across every connection and worker thread.
#[derive(Debug)]
pub struct LatencyHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Point-in-time percentile summary of a [`LatencyHistogram`], in
/// microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact arithmetic mean (from a running sum, not the buckets).
    pub mean_us: f64,
    /// Exact maximum sample.
    pub max_us: u64,
    /// Median (bucket lower bound).
    pub p50_us: u64,
    /// 90th percentile (bucket lower bound).
    pub p90_us: u64,
    /// 95th percentile (bucket lower bound).
    pub p95_us: u64,
    /// 99th percentile (bucket lower bound).
    pub p99_us: u64,
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample, in microseconds.
    pub fn record(&self, micros: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Reset-free percentile snapshot. A snapshot racing concurrent
    /// `record` calls may see a partially-recorded sample; counts never
    /// go backwards between snapshots.
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Percentiles walk the bucket counts, not the racy `count`
        // field, so ranks are consistent with the walked distribution.
        let total: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let mut snap = LatencySnapshot {
            count: total,
            mean_us: if total == 0 {
                0.0
            } else {
                sum as f64 / total as f64
            },
            max_us: self.max.load(Ordering::Relaxed),
            ..Default::default()
        };
        if total == 0 {
            return snap;
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return lower_bound(i);
                }
            }
            snap.max_us
        };
        snap.p50_us = quantile(0.50);
        snap.p90_us = quantile(0.90);
        snap.p95_us = quantile(0.95);
        snap.p99_us = quantile(0.99);
        snap
    }
}

/// Monotonic counters (and two gauges) over the server's socket and
/// admission layers. One instance per server, shared by every
/// connection-reader and batch-worker thread.
///
/// All counters are `fetch_add`-only; the two gauges
/// ([`conns_active`](Self::conns_active) and
/// [`in_flight`](Self::in_flight)) go both ways. Field-by-field meaning
/// is documented in `docs/SERVING.md` alongside the `/stats` schema the
/// fields feed.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// TCP connections accepted over the process lifetime.
    pub conns_accepted: AtomicU64,
    /// Gauge: connections currently open.
    pub conns_active: AtomicU64,
    /// `Optimize` frames received (admitted or not).
    pub requests_received: AtomicU64,
    /// Requests admitted to the batch queue.
    pub admitted: AtomicU64,
    /// Requests answered with a plan (`"ok": true`).
    pub completed: AtomicU64,
    /// Admitted requests answered with an optimizer error.
    pub failed: AtomicU64,
    /// Requests rejected because the queue was at `--max-queue`.
    pub rejected_overload: AtomicU64,
    /// Requests rejected because the server was draining.
    pub rejected_draining: AtomicU64,
    /// Requests rejected for malformed payloads or invalid catalogs.
    pub rejected_invalid: AtomicU64,
    /// Connections torn down for framing violations (bad magic is
    /// counted only if the bytes were not valid HTTP either).
    pub protocol_errors: AtomicU64,
    /// Responses that could not be written back (client went away
    /// between admission and reply).
    pub send_failures: AtomicU64,
    /// Binary `Stats` frames served.
    pub stats_requests: AtomicU64,
    /// HTTP requests served (any route).
    pub http_requests: AtomicU64,
    /// Gauge: requests admitted but not yet answered.
    pub in_flight: AtomicU64,
    /// Batches dispatched to the optimizer.
    pub batches: AtomicU64,
    /// Total queries across dispatched batches.
    pub batched_queries: AtomicU64,
    /// Largest batch dispatched.
    pub max_batch: AtomicU64,
    /// End-to-end admission→response latency.
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one dispatched batch of `n` queries.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_lower_bounds_are_consistent() {
        // Every bucket's lower bound must map back to that bucket, and
        // bounds must be strictly increasing.
        let mut prev = None;
        for i in 0..N_BUCKETS {
            let lb = lower_bound(i);
            assert_eq!(bucket_of(lb), i, "lower bound {lb} of bucket {i}");
            if let Some(p) = prev {
                assert!(lb > p, "bounds not increasing at {i}");
            }
            prev = Some(lb);
        }
        // Spot-check the quantization error bound on a dense range.
        for v in 0..100_000u64 {
            let lb = lower_bound(bucket_of(v));
            assert!(lb <= v);
            assert!((v - lb) as f64 <= (v as f64 / 8.0).max(0.0));
        }
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 samples: 1..=100 microseconds (small values are exact
        // buckets only below 8; above that, quantized to 12.5%).
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        // p50 of 1..=100 is 50; its bucket (msb=5, width 4) lowers to 48.
        assert_eq!(s.p50_us, 48);
        assert!(s.p50_us <= 50 && 50 - s.p50_us <= 50 / 8);
        assert!(s.p90_us <= 90 && 90 - s.p90_us <= 90 / 8);
        assert!(s.p99_us <= 99 && 99 - s.p99_us <= 99 / 8);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p95_us && s.p95_us <= s.p99_us);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_us, 0.0);
        assert_eq!(s.p99_us, 0);
    }

    #[test]
    fn concurrent_records_are_exact() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.max_us, 7999);
    }
}
