//! The daemon: accept loop, admission control, request batching, and
//! graceful drain.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ── handshake ──> reader thread ── admit ──> queue ── linger ──> batch worker
//!   │                        │ (parse, validate,        │                    │
//!   │  "GET /stats" ──> HTTP │  draining/overload       │    optimize_batch_cached
//!   └──────────────────> reply  checks)                 │    (fingerprint dedup +
//!                                                      │     shared PlanCache)
//!                                                      └──<── responses written back
//! ```
//!
//! Every connection gets a reader thread that parses frames and either
//! answers immediately (stats, rejections) or enqueues the request.
//! Batch workers pull from the single shared queue: the first request
//! starts a batch, then the worker lingers up to `--batch-linger-ms`
//! (or until `--batch-max` requests are in hand) so concurrent
//! duplicates land in one [`optimize_batch_cached`] call and dedup to a
//! single cold solve. All workers share one [`PlanCache`], so a plan
//! solved for any connection warms every later request in the process.
//!
//! # Drain
//!
//! [`ServerHandle::shutdown`] (wired to SIGTERM by the binary) flips the
//! drain flag: the accept loop stops, readers answer further `Optimize`
//! frames with code `"draining"`, and [`Server::run`] returns once every
//! admitted request has been answered — never dropping accepted work —
//! with a final stats document.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ljqo::parallel::PORTFOLIO;
use ljqo::serving::DEGRADATION_LABELS;
use ljqo::{
    optimize_batch_cached, optimize_batch_cached_routed, win_labels, win_slot, BatchOptions,
    Method, OptError, Optimized, OptimizerConfig, Parallelism, ServedVia, ServingCounters,
};
use ljqo_cache::{
    classify, BanditRouter, FingerprintConfig, PlanCache, PlanCacheConfig, RouterConfig,
};
use ljqo_catalog::Query;
use ljqo_cli::QueryFile;
use ljqo_cost::{CostModel, DiskCostModel, MemoryCostModel, MultiMethodCostModel};
use ljqo_json::Value;

use crate::protocol::{codes, read_frame, write_frame, FrameType, MAGIC, VERSION};
use crate::stats::ServerStats;

/// Everything the daemon needs to start. `Default` gives a local,
/// single-worker server with the paper's generous `τ = 9` budget —
/// see `docs/SERVING.md` for per-flag guidance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7411`; port `0` picks a free one.
    pub addr: String,
    /// Optimization method for cold solves.
    pub method: Method,
    /// Cost model name: `memory`, `disk`, or `multi`.
    pub model: String,
    /// Time-limit multiplier `τ` (budget `τ·N²`).
    pub tau: f64,
    /// Budget calibration `κ` (units per `N²`).
    pub kappa: f64,
    /// Base RNG seed; per-query seeds derive deterministically from it.
    pub seed: u64,
    /// Optional per-query wall-clock deadline, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Batch worker threads (each runs its own `optimize_batch_cached`).
    pub workers: usize,
    /// Largest batch a worker will assemble before dispatching.
    pub batch_max: usize,
    /// How long a worker waits for more requests after the first.
    pub batch_linger: Duration,
    /// Admission bound: requests queued beyond this are rejected with
    /// code `"overload"` instead of growing the queue without bound.
    pub max_queue: usize,
    /// Per-frame payload cap, in bytes.
    pub max_frame_bytes: usize,
    /// Plan-cache entry capacity.
    pub cache_entries: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Fingerprint statistic-bucketing resolution (buckets per decade).
    pub fp_buckets: u32,
    /// Budget routing mode for cold solves: `uniform` (the sequential
    /// configured-method driver, today's behavior) or `ucb` (cold solves
    /// run the [`PORTFOLIO`] under a process-wide contextual-bandit
    /// router that learns per-class budget shares online).
    pub router: String,
    /// Path the router state is loaded from at startup and saved to on
    /// drain. Unreadable or corrupt state degrades to uniform shares
    /// with `router.resets` counted, never an error.
    pub router_state: Option<String>,
    /// Mandatory exploration floor ε for the router: every portfolio
    /// method keeps at least this budget fraction per query class.
    pub router_epsilon: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".to_string(),
            method: Method::Iai,
            model: "memory".to_string(),
            tau: 9.0,
            kappa: 5.0,
            seed: 0,
            deadline_ms: None,
            workers: 1,
            batch_max: 64,
            batch_linger: Duration::from_millis(2),
            max_queue: 1024,
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            cache_entries: 4096,
            cache_shards: 8,
            fp_buckets: FingerprintConfig::default().buckets_per_decade,
            router: "uniform".to_string(),
            router_state: None,
            router_epsilon: RouterConfig::default().epsilon,
        }
    }
}

fn model_for(name: &str) -> Option<Box<dyn CostModel + Send + Sync>> {
    match name {
        "memory" => Some(Box::new(MemoryCostModel::default())),
        "disk" => Some(Box::new(DiskCostModel::default())),
        "multi" => Some(Box::new(MultiMethodCostModel::default())),
        _ => None,
    }
}

/// The write half of a connection, shared between the reader thread
/// (rejections, stats) and batch workers (responses).
struct ConnShared {
    writer: Mutex<TcpStream>,
}

/// One admitted request waiting for (or undergoing) optimization.
struct Pending {
    conn: Arc<ConnShared>,
    /// The client's `"id"`, echoed verbatim in the response.
    id: Value,
    query: Query,
    admitted: Instant,
}

/// The shared admission queue: a mutex-guarded deque plus a condvar so
/// idle workers sleep instead of spinning.
struct Queue {
    items: Mutex<VecDeque<Pending>>,
    cond: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            items: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    fn push(&self, p: Pending) {
        self.items.lock().unwrap().push_back(p);
        self.cond.notify_one();
    }

    /// Block until a request arrives; `None` once `stop` is set and the
    /// queue is empty (so setting `stop` never abandons queued work).
    fn pop_first(&self, stop: &AtomicBool) -> Option<Pending> {
        let mut items = self.items.lock().unwrap();
        loop {
            if let Some(p) = items.pop_front() {
                return Some(p);
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(items, Duration::from_millis(50))
                .unwrap();
            items = guard;
        }
    }

    /// Pop one more request if any arrives before `deadline`.
    fn pop_until(&self, deadline: Instant) -> Option<Pending> {
        let mut items = self.items.lock().unwrap();
        loop {
            if let Some(p) = items.pop_front() {
                return Some(p);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cond.wait_timeout(items, deadline - now).unwrap();
            items = guard;
        }
    }

    fn drain_remaining(&self) -> Vec<Pending> {
        self.items.lock().unwrap().drain(..).collect()
    }
}

/// State shared by the accept loop, reader threads, and batch workers.
struct Inner {
    config: ServerConfig,
    opt_config: OptimizerConfig,
    model: Box<dyn CostModel + Send + Sync>,
    cache: PlanCache,
    fp_config: FingerprintConfig,
    serving: ServingCounters,
    /// The process-wide learned router plus the parallelism every cold
    /// solve runs under; `None` in `uniform` mode (sequential cold
    /// solves, exactly the pre-router behavior).
    router: Option<(Arc<BanditRouter>, Parallelism)>,
    /// Per-class win counts, keyed by [`ljqo_cache::QueryClass`] label
    /// with slots aligned to [`win_labels`] — the per-class view of the
    /// global `method_wins` table.
    class_wins: Mutex<BTreeMap<String, Vec<u64>>>,
    stats: ServerStats,
    queue: Queue,
    draining: AtomicBool,
    workers_stop: AtomicBool,
    started: Instant,
    /// Clones of the currently-open streams keyed by connection id, so
    /// drain can unblock reader threads parked in `read` by shutting
    /// the sockets down. Each entry is removed (dropping the clone and
    /// its fd) when the connection's reader thread finishes — otherwise
    /// a finished connection would never deliver EOF to its peer.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A bound, not-yet-running server. [`Server::run`] consumes it and
/// blocks until a [`ServerHandle::shutdown`] drain completes.
pub struct Server {
    inner: Arc<Inner>,
    listener: TcpListener,
}

/// Cloneable remote control for a running [`Server`] — the binary hands
/// one to its signal watcher; tests use it to trigger drains.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Begin a graceful drain: stop accepting connections, reject new
    /// requests with code `"draining"`, finish everything already
    /// admitted, then let [`Server::run`] return. Idempotent.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// The live stats document — identical to what `/stats` serves.
    pub fn stats_json(&self) -> Value {
        stats_json(&self.inner)
    }
}

impl Server {
    /// Bind the listen socket and build all shared state (cache,
    /// counters, queue). Fails on an unbindable address or an unknown
    /// cost-model name.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let model = model_for(&config.model).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown cost model `{}` (memory|disk|multi)", config.model),
            )
        })?;
        let listener = TcpListener::bind(&config.addr)?;
        let mut cache_config = PlanCacheConfig::with_entries(config.cache_entries);
        cache_config.shards = config.cache_shards;
        let fp_config = FingerprintConfig {
            buckets_per_decade: config.fp_buckets,
        };
        let opt_config = OptimizerConfig::new(config.method)
            .with_time_limit(config.tau)
            .with_kappa(config.kappa)
            .with_seed(config.seed);
        let router = match config.router.as_str() {
            "uniform" => None,
            "ucb" => {
                let arms: Vec<&str> = PORTFOLIO.iter().map(|m| m.name()).collect();
                let router_config = RouterConfig {
                    epsilon: config.router_epsilon,
                    ..RouterConfig::default()
                };
                let router = Arc::new(match &config.router_state {
                    Some(path) => BanditRouter::load(Path::new(path), &arms, router_config),
                    None => BanditRouter::new(&arms, router_config),
                });
                // One search thread per portfolio method; the batch solve
                // itself stays single-threaded (see `serve_batch`), so
                // `--workers N` still bounds concurrent batches.
                let parallelism =
                    Parallelism::portfolio(PORTFOLIO.len()).with_router(Arc::clone(&router));
                Some((router, parallelism))
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown router mode `{other}` (uniform|ucb)"),
                ));
            }
        };
        let inner = Arc::new(Inner {
            opt_config,
            model,
            cache: PlanCache::new(cache_config),
            fp_config,
            serving: ServingCounters::new(),
            router,
            class_wins: Mutex::new(BTreeMap::new()),
            stats: ServerStats::new(),
            queue: Queue::new(),
            draining: AtomicBool::new(false),
            workers_stop: AtomicBool::new(false),
            started: Instant::now(),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            config,
        });
        Ok(Server { inner, listener })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Serve until a drain completes. Returns the final stats document
    /// (the last `/stats` any client could have observed, plus whatever
    /// the drain itself finished).
    pub fn run(self) -> Value {
        let inner = self.inner;
        let mut workers = Vec::with_capacity(inner.config.workers.max(1));
        for _ in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || batch_worker(inner)));
        }

        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let mut readers = Vec::new();
        while !inner.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    // Accepted streams are re-blocking: only the accept
                    // loop polls.
                    stream.set_nonblocking(false).ok();
                    let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        inner.conns.lock().unwrap().insert(conn_id, clone);
                    }
                    let inner = Arc::clone(&inner);
                    readers.push(std::thread::spawn(move || {
                        handle_conn(inner, conn_id, stream)
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        drop(self.listener);

        // Drain: every admitted request must be answered before workers
        // stop. Readers reject new work once `draining` is set, so this
        // converges.
        loop {
            if inner.queue.len() == 0 && inner.stats.in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        inner.workers_stop.store(true, Ordering::SeqCst);
        inner.queue.cond.notify_all();
        for w in workers {
            w.join().expect("batch worker panicked");
        }
        // Belt and braces: a request admitted in the instant between the
        // emptiness check and worker exit still gets served.
        let leftovers = inner.queue.drain_remaining();
        if !leftovers.is_empty() {
            serve_batch(&inner, leftovers);
        }

        // Unblock reader threads parked in `read` and collect them.
        for conn in inner.conns.lock().unwrap().values() {
            conn.shutdown(Shutdown::Both).ok();
        }
        for r in readers {
            r.join().ok();
        }
        // Persist what the router learned; a failed write only costs the
        // next process its warm start.
        if let (Some((router, _)), Some(path)) = (&inner.router, &inner.config.router_state) {
            router.save(Path::new(path)).ok();
        }
        stats_json(&inner)
    }
}

fn handle_conn(inner: Arc<Inner>, conn_id: u64, stream: TcpStream) {
    inner.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
    inner.stats.conns_active.fetch_add(1, Ordering::Relaxed);
    let _ = serve_conn(&inner, stream);
    // Drop the drain registry's clone, or the peer never sees EOF (and
    // the fd would leak for the life of the process).
    inner.conns.lock().unwrap().remove(&conn_id);
    inner.stats.conns_active.fetch_sub(1, Ordering::Relaxed);
}

/// Sniff the first four bytes: the binary magic starts a framed
/// session, anything else is given to the HTTP handler.
fn serve_conn(inner: &Arc<Inner>, mut stream: TcpStream) -> io::Result<()> {
    let mut first = [0u8; 4];
    let mut got = 0;
    while got < first.len() {
        match stream.read(&mut first[got..]) {
            Ok(0) => return Ok(()), // closed before saying anything
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if first == MAGIC {
        let mut version = [0u8; 1];
        stream.read_exact(&mut version)?;
        let conn = Arc::new(ConnShared {
            writer: Mutex::new(stream.try_clone()?),
        });
        if version[0] != VERSION {
            inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            send_payload(
                inner,
                &conn,
                FrameType::Error,
                error_body(
                    codes::UNSUPPORTED_VERSION,
                    &format!(
                        "server speaks version {VERSION}, client sent {}",
                        version[0]
                    ),
                ),
            );
            return Ok(());
        }
        serve_binary(inner, &conn, stream)
    } else {
        serve_http(inner, first, stream)
    }
}

fn serve_binary(
    inner: &Arc<Inner>,
    conn: &Arc<ConnShared>,
    mut stream: TcpStream,
) -> io::Result<()> {
    loop {
        let frame = match read_frame(&mut stream, inner.config.max_frame_bytes) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean close between frames
            Err(e) => {
                inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let code = if e.to_string().contains("exceeds cap") {
                    codes::FRAME_TOO_LARGE
                } else {
                    codes::PROTOCOL_ERROR
                };
                send_payload(
                    inner,
                    conn,
                    FrameType::Error,
                    error_body(code, &e.to_string()),
                );
                return Ok(());
            }
        };
        match frame.kind {
            FrameType::Optimize => handle_optimize(inner, conn, &frame.payload),
            FrameType::Stats => {
                inner.stats.stats_requests.fetch_add(1, Ordering::Relaxed);
                send_payload(inner, conn, FrameType::StatsResponse, stats_json(inner));
            }
            _ => {
                inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_payload(
                    inner,
                    conn,
                    FrameType::Error,
                    error_body(codes::PROTOCOL_ERROR, "unexpected server-side frame type"),
                );
                return Ok(());
            }
        }
    }
}

/// Parse, validate, and admit (or reject) one `Optimize` request.
fn handle_optimize(inner: &Arc<Inner>, conn: &Arc<ConnShared>, payload: &[u8]) {
    inner
        .stats
        .requests_received
        .fetch_add(1, Ordering::Relaxed);
    let doc = std::str::from_utf8(payload)
        .ok()
        .and_then(|s| ljqo_json::parse(s).ok());
    let Some(doc) = doc else {
        inner.stats.rejected_invalid.fetch_add(1, Ordering::Relaxed);
        reject(
            inner,
            conn,
            Value::Null,
            codes::BAD_REQUEST,
            "payload is not valid JSON",
        );
        return;
    };
    let id = doc.get("id").cloned().unwrap_or(Value::Null);
    let Some(query_value) = doc.get("query") else {
        inner.stats.rejected_invalid.fetch_add(1, Ordering::Relaxed);
        reject(
            inner,
            conn,
            id,
            codes::BAD_REQUEST,
            "missing \"query\" field",
        );
        return;
    };
    let query =
        QueryFile::from_json(&query_value.to_string_compact()).and_then(QueryFile::into_query);
    let query = match query {
        Ok(q) => q,
        Err(e) => {
            inner.stats.rejected_invalid.fetch_add(1, Ordering::Relaxed);
            reject(inner, conn, id, codes::INVALID_QUERY, &e.to_string());
            return;
        }
    };
    if inner.draining.load(Ordering::SeqCst) {
        inner
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        reject(
            inner,
            conn,
            id,
            codes::DRAINING,
            "server is draining; retry elsewhere",
        );
        return;
    }
    if inner.queue.len() >= inner.config.max_queue {
        inner
            .stats
            .rejected_overload
            .fetch_add(1, Ordering::Relaxed);
        reject(
            inner,
            conn,
            id,
            codes::OVERLOAD,
            "admission queue is full; back off and retry",
        );
        return;
    }
    inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
    inner.stats.in_flight.fetch_add(1, Ordering::SeqCst);
    inner.queue.push(Pending {
        conn: Arc::clone(conn),
        id,
        query,
        admitted: Instant::now(),
    });
}

/// Pull batches off the queue until told to stop (and the queue is dry).
fn batch_worker(inner: Arc<Inner>) {
    loop {
        let Some(first) = inner.queue.pop_first(&inner.workers_stop) else {
            return;
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + inner.config.batch_linger;
        while batch.len() < inner.config.batch_max {
            match inner.queue.pop_until(deadline) {
                Some(p) => batch.push(p),
                None => break,
            }
        }
        serve_batch(&inner, batch);
    }
}

/// One `optimize_batch_cached` dispatch: solve, absorb counters, write
/// every response back.
fn serve_batch(inner: &Inner, batch: Vec<Pending>) {
    inner.stats.record_batch(batch.len());
    let queries: Vec<Query> = batch.iter().map(|p| p.query.clone()).collect();
    let options = BatchOptions {
        // Workers are already the parallelism; keep each batch solve
        // single-threaded so `--workers N` bounds total CPU use.
        threads: 1,
        per_query_deadline: inner.config.deadline_ms.map(Duration::from_millis),
    };
    let model: &(dyn CostModel + Sync) = &*inner.model;
    let report = match &inner.router {
        Some((_, parallelism)) => optimize_batch_cached_routed(
            &queries,
            model,
            &inner.opt_config,
            &options,
            &inner.cache,
            &inner.fp_config,
            parallelism,
        ),
        None => optimize_batch_cached(
            &queries,
            model,
            &inner.opt_config,
            &options,
            &inner.cache,
            &inner.fp_config,
        ),
    };
    inner.serving.absorb(&report);
    // Per-class producer credit, aligned with the global `method_wins`
    // table (only successful answers are credited there too).
    {
        let n_slots = win_labels().len();
        let mut class_wins = inner.class_wins.lock().unwrap();
        for ((pending, result), via) in batch.iter().zip(&report.results).zip(&report.outcomes) {
            if result.is_ok() {
                let label = classify(&pending.query).label();
                let slots = class_wins.entry(label).or_insert_with(|| vec![0; n_slots]);
                slots[win_slot(via.producer)] += 1;
            }
        }
    }
    for ((pending, result), via) in batch.iter().zip(&report.results).zip(&report.outcomes) {
        let latency_us = pending.admitted.elapsed().as_micros() as u64;
        let body = match result {
            Ok(r) => {
                inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                ok_body(pending, r, via, latency_us)
            }
            Err(e) => {
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                let code = match e {
                    OptError::Catalog(_) => codes::INVALID_QUERY,
                    _ => codes::OPTIMIZER_FAILED,
                };
                reject_body(pending.id.clone(), code, &e.to_string())
            }
        };
        send_payload(inner, &pending.conn, FrameType::Response, body);
        inner.stats.latency.record(latency_us);
        inner.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Build an object from borrowed keys (the `json!` macro cannot nest
/// computed sub-objects, so stats blocks are assembled with this).
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_body(code: &str, message: &str) -> Value {
    obj(vec![
        ("code", Value::from(code)),
        ("error", Value::from(message)),
    ])
}

/// Answer a request with `"ok": false` directly from the reader thread.
fn reject(inner: &Inner, conn: &ConnShared, id: Value, code: &str, message: &str) {
    send_payload(
        inner,
        conn,
        FrameType::Response,
        reject_body(id, code, message),
    );
}

fn reject_body(id: Value, code: &str, message: &str) -> Value {
    obj(vec![
        ("id", id),
        ("ok", Value::Bool(false)),
        ("code", Value::from(code)),
        ("error", Value::from(message)),
    ])
}

fn ok_body(pending: &Pending, r: &Optimized, via: &ServedVia, latency_us: u64) -> Value {
    let segments: Vec<Value> = r
        .plan
        .segments
        .iter()
        .map(|seg| {
            Value::Array(
                seg.rels()
                    .iter()
                    .map(|&rid| Value::from(pending.query.relation(rid).name.as_str()))
                    .collect(),
            )
        })
        .collect();
    obj(vec![
        ("id", pending.id.clone()),
        ("ok", Value::Bool(true)),
        ("cost", Value::from(r.cost)),
        ("segments", Value::Array(segments)),
        ("outcome", Value::from(via.outcome.name())),
        ("producer", Value::from(via.producer)),
        ("degradation", Value::from(r.degradation.label())),
        ("deadline_expired", Value::Bool(r.deadline_expired)),
        ("units_used", Value::from(r.units_used)),
        ("latency_us", Value::from(latency_us)),
    ])
}

/// Send one frame on a connection; write failures are counted, never
/// propagated (the client owning the socket may simply be gone).
fn send_payload(inner: &Inner, conn: &ConnShared, kind: FrameType, body: Value) -> bool {
    let bytes = body.to_string_compact().into_bytes();
    let mut writer = conn.writer.lock().unwrap();
    match write_frame(&mut *writer, kind, &bytes) {
        Ok(()) => true,
        Err(_) => {
            inner.stats.send_failures.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Minimal HTTP/1.1 for observability: `GET /stats` and `GET /healthz`,
/// one request per connection (`Connection: close`).
fn serve_http(inner: &Arc<Inner>, prefix: [u8; 4], mut stream: TcpStream) -> io::Result<()> {
    inner.stats.http_requests.fetch_add(1, Ordering::Relaxed);
    let mut head = prefix.to_vec();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            error_body(codes::BAD_REQUEST, "only GET is supported"),
        )
    } else {
        match path {
            "/stats" => ("200 OK", stats_json(inner)),
            "/healthz" => (
                "200 OK",
                obj(vec![
                    ("ok", Value::Bool(true)),
                    (
                        "draining",
                        Value::Bool(inner.draining.load(Ordering::SeqCst)),
                    ),
                ]),
            ),
            _ => (
                "404 Not Found",
                error_body(codes::BAD_REQUEST, "unknown path; try /stats or /healthz"),
            ),
        }
    };
    let body = body.to_string_pretty() + "\n";
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Assemble the `/stats` document. Schema documented field-by-field in
/// `docs/SERVING.md` and pinned by `tests/stats_schema_golden.rs`.
fn stats_json(inner: &Inner) -> Value {
    let load = |a: &std::sync::atomic::AtomicU64| Value::from(a.load(Ordering::Relaxed));
    let s = &inner.stats;
    let cache = inner.cache.stats();
    let serving = inner.serving.snapshot();
    let lat = s.latency.snapshot();
    let c = &inner.config;

    let server = obj(vec![
        ("name", Value::from("ljqo-server")),
        ("protocol_version", Value::from(VERSION)),
        (
            "uptime_ms",
            Value::from(inner.started.elapsed().as_millis() as u64),
        ),
        (
            "draining",
            Value::Bool(inner.draining.load(Ordering::SeqCst)),
        ),
        ("method", Value::from(c.method.name())),
        ("model", Value::from(c.model.as_str())),
        ("tau", Value::from(c.tau)),
        ("kappa", Value::from(c.kappa)),
        ("seed", Value::from(c.seed)),
        (
            "deadline_ms",
            c.deadline_ms.map(Value::from).unwrap_or(Value::Null),
        ),
        ("workers", Value::from(c.workers)),
        ("batch_max", Value::from(c.batch_max)),
        (
            "batch_linger_ms",
            Value::from(c.batch_linger.as_secs_f64() * 1e3),
        ),
        ("max_queue", Value::from(c.max_queue)),
        ("max_frame_bytes", Value::from(c.max_frame_bytes)),
    ]);
    let connections = obj(vec![
        ("accepted", load(&s.conns_accepted)),
        ("active", load(&s.conns_active)),
    ]);
    let requests = obj(vec![
        ("received", load(&s.requests_received)),
        ("admitted", load(&s.admitted)),
        ("completed", load(&s.completed)),
        ("failed", load(&s.failed)),
        ("rejected_overload", load(&s.rejected_overload)),
        ("rejected_draining", load(&s.rejected_draining)),
        ("rejected_invalid", load(&s.rejected_invalid)),
        ("protocol_errors", load(&s.protocol_errors)),
        ("send_failures", load(&s.send_failures)),
        ("stats_requests", load(&s.stats_requests)),
        ("http_requests", load(&s.http_requests)),
        ("in_flight", load(&s.in_flight)),
        ("queued", Value::from(inner.queue.len())),
    ]);
    let batches_count = s.batches.load(Ordering::Relaxed);
    let batches = obj(vec![
        ("count", Value::from(batches_count)),
        ("queries", load(&s.batched_queries)),
        ("max_size", load(&s.max_batch)),
        (
            "mean_size",
            Value::from(if batches_count == 0 {
                0.0
            } else {
                s.batched_queries.load(Ordering::Relaxed) as f64 / batches_count as f64
            }),
        ),
    ]);
    let latency = obj(vec![
        ("count", Value::from(lat.count)),
        ("mean", Value::from(lat.mean_us)),
        ("p50", Value::from(lat.p50_us)),
        ("p90", Value::from(lat.p90_us)),
        ("p95", Value::from(lat.p95_us)),
        ("p99", Value::from(lat.p99_us)),
        ("max", Value::from(lat.max_us)),
    ]);
    let cache_block = obj(vec![
        ("hits", Value::from(cache.hits)),
        ("misses", Value::from(cache.misses)),
        ("inserts", Value::from(cache.inserts)),
        ("evictions", Value::from(cache.evictions)),
        ("resident_entries", Value::from(cache.entries)),
        ("resident_bytes", Value::from(cache.bytes)),
        ("capacity_entries", Value::from(c.cache_entries)),
        ("shards", Value::from(c.cache_shards)),
        ("fp_buckets", Value::from(c.fp_buckets)),
    ]);
    let serving_block = obj(vec![
        ("queries", Value::from(serving.queries)),
        ("cold_solves", Value::from(serving.cold_solves)),
        ("cache_hits", Value::from(serving.cache_hits)),
        ("dedup_reuses", Value::from(serving.dedup_reuses)),
        ("failed", Value::from(serving.failed)),
        ("degraded", Value::from(serving.degraded)),
        ("deadline_expired", Value::from(serving.deadline_expired)),
        ("units_used", Value::from(serving.units_used)),
        ("batches", Value::from(serving.batches)),
        ("max_batch", Value::from(serving.max_batch)),
    ]);
    let degradation = obj(DEGRADATION_LABELS
        .iter()
        .zip(serving.degradation.iter())
        .map(|(&label, &count)| (label, Value::from(count)))
        .collect());
    let wins = obj(serving
        .method_wins
        .iter()
        .map(|&(name, count)| (name, Value::from(count)))
        .collect());
    // Per-class wins as an array of objects: class labels are dynamic,
    // so keeping them in array elements (not object keys) keeps the
    // golden key-path schema stable across workloads.
    let labels = win_labels();
    let wins_by_class = Value::Array(
        inner
            .class_wins
            .lock()
            .unwrap()
            .iter()
            .map(|(class, slots)| {
                obj(vec![
                    ("class", Value::from(class.as_str())),
                    (
                        "wins",
                        obj(labels
                            .iter()
                            .zip(slots)
                            .map(|(&name, &count)| (name, Value::from(count)))
                            .collect()),
                    ),
                ])
            })
            .collect(),
    );
    let router_block = match &inner.router {
        Some((router, _)) => {
            let snap = router.snapshot();
            obj(vec![
                ("enabled", Value::Bool(true)),
                ("mode", Value::from("ucb")),
                ("epsilon", Value::from(snap.epsilon)),
                ("resets", Value::from(snap.resets)),
                (
                    "state_path",
                    c.router_state
                        .as_deref()
                        .map(Value::from)
                        .unwrap_or(Value::Null),
                ),
                (
                    "arms",
                    Value::Array(snap.arms.iter().map(|a| Value::from(a.as_str())).collect()),
                ),
                (
                    "classes",
                    Value::Array(
                        snap.classes
                            .iter()
                            .map(|cls| {
                                let nums = |xs: &[u64]| {
                                    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
                                };
                                let floats = |xs: &[f64]| {
                                    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
                                };
                                obj(vec![
                                    ("class", Value::from(cls.label.as_str())),
                                    ("events", Value::from(cls.events)),
                                    ("pulls", nums(&cls.pulls)),
                                    ("mean_reward", floats(&cls.mean_reward)),
                                    ("wins", nums(&cls.wins)),
                                    ("shares", floats(&cls.shares)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        }
        None => obj(vec![
            ("enabled", Value::Bool(false)),
            ("mode", Value::from("uniform")),
            ("epsilon", Value::from(0.0)),
            ("resets", Value::from(0u64)),
            ("state_path", Value::Null),
            ("arms", Value::Array(Vec::new())),
            ("classes", Value::Array(Vec::new())),
        ]),
    };

    obj(vec![
        ("server", server),
        ("connections", connections),
        ("requests", requests),
        ("batches", batches),
        ("latency_us", latency),
        ("cache", cache_block),
        ("serving", serving_block),
        ("degradation", degradation),
        ("method_wins", wins),
        ("method_wins_by_class", wins_by_class),
        ("router", router_block),
    ])
}
