//! A small blocking client for the binary protocol, used by
//! `ljqo-loadgen`, the integration tests, and anyone scripting the
//! daemon from Rust.
//!
//! The client supports both synchronous request/response
//! ([`Client::optimize`]) and pipelining: issue several
//! [`Client::send_optimize`] calls back-to-back, then collect replies
//! with [`Client::recv`] and correlate by the echoed `"id"` (the server
//! may answer out of order across batches).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ljqo_cli::QueryFile;
use ljqo_json::Value;

use crate::protocol::{
    read_frame, write_frame, write_handshake, FrameType, DEFAULT_MAX_FRAME_BYTES,
};

/// One binary-protocol connection to an `ljqo-server`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and send the protocol handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_handshake(&mut stream)?;
        Ok(Client { stream })
    }

    /// Send one raw frame — the escape hatch for tests and tooling that
    /// need to put arbitrary (even malformed) payloads on the wire.
    pub fn send_frame(&mut self, kind: FrameType, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, kind, payload)
    }

    /// Pipeline one `Optimize` request without waiting for the reply.
    pub fn send_optimize(&mut self, id: u64, query: &QueryFile) -> io::Result<()> {
        let payload = Value::Object(vec![
            ("id".to_string(), Value::from(id)),
            ("query".to_string(), query.to_json()),
        ])
        .to_string_compact();
        write_frame(&mut self.stream, FrameType::Optimize, payload.as_bytes())
    }

    /// Read the next server frame and parse its JSON payload. An `Error`
    /// frame (a connection-level fault) is surfaced as an `io::Error`;
    /// a close before any frame is `UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<(FrameType, Value)> {
        let frame = read_frame(&mut self.stream, DEFAULT_MAX_FRAME_BYTES)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = std::str::from_utf8(&frame.payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let value = ljqo_json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        if frame.kind == FrameType::Error {
            return Err(io::Error::other(format!("server error frame: {value}")));
        }
        Ok((frame.kind, value))
    }

    /// Synchronous optimize: send one request and wait for its reply
    /// (valid only when no other requests are in flight on this
    /// connection).
    pub fn optimize(&mut self, id: u64, query: &QueryFile) -> io::Result<Value> {
        self.send_optimize(id, query)?;
        let (kind, value) = self.recv()?;
        if kind != FrameType::Response {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a Response frame, got {kind:?}"),
            ));
        }
        Ok(value)
    }

    /// Fetch the server's stats document over the binary protocol.
    pub fn stats(&mut self) -> io::Result<Value> {
        write_frame(&mut self.stream, FrameType::Stats, b"")?;
        let (kind, value) = self.recv()?;
        if kind != FrameType::StatsResponse {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a StatsResponse frame, got {kind:?}"),
            ));
        }
        Ok(value)
    }
}

/// Fetch `/stats` over HTTP — the same document [`Client::stats`]
/// returns, via the observability port every HTTP client can reach.
pub fn fetch_stats_http<A: ToSocketAddrs>(addr: A) -> io::Result<Value> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /stats HTTP/1.1\r\nHost: ljqo\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP body in response"))?;
    ljqo_json::parse(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
}
