//! `ljqo-server` — run the LJQO optimizer as a daemon.
//!
//! ```text
//! ljqo-server [--addr HOST:PORT] [--method IAI] [--model memory|disk|multi]
//!             [--tau F] [--kappa F] [--seed N] [--deadline-ms N]
//!             [--workers N] [--batch-max N] [--batch-linger-ms F]
//!             [--max-queue N] [--max-frame-bytes N]
//!             [--cache-entries N] [--cache-shards N] [--fp-buckets N]
//!             [--router uniform|ucb] [--router-state PATH] [--router-epsilon F]
//! ```
//!
//! The daemon prints one `listening on ADDR` line once the socket is
//! bound (scripts block on it), serves until SIGTERM or SIGINT, then
//! drains gracefully — stops accepting, answers everything already
//! admitted — and prints the final stats document to stdout before
//! exiting 0. See `docs/SERVING.md` for the protocol and the meaning of
//! every flag.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ljqo::Method;
use ljqo_server::{Server, ServerConfig};

/// Async-signal-safe termination flag: the handler only stores, the
/// watcher thread polls.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::TERMINATE;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    // libc is always linked on unix targets; declaring `signal` directly
    // avoids an external crate dependency. The handler address and the
    // returned previous handler are both pointer-sized.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// Non-unix builds rely on the process being killed outright.
    pub fn install() {}
}

fn usage() -> ! {
    eprintln!(
        "usage: ljqo-server [--addr HOST:PORT] [--method IAI] [--model memory|disk|multi]\n\
         \x20                  [--tau F] [--kappa F] [--seed N] [--deadline-ms N]\n\
         \x20                  [--workers N] [--batch-max N] [--batch-linger-ms F]\n\
         \x20                  [--max-queue N] [--max-frame-bytes N]\n\
         \x20                  [--cache-entries N] [--cache-shards N] [--fp-buckets N]\n\
         \x20                  [--router uniform|ucb] [--router-state PATH] [--router-epsilon F]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServerConfig {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    let value_for = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = value_for("--addr", &mut args),
            "--method" => {
                let v = value_for("--method", &mut args);
                config.method = Method::parse(&v).unwrap_or_else(|| {
                    eprintln!("error: unknown method `{v}`");
                    usage();
                });
            }
            "--model" => config.model = value_for("--model", &mut args),
            "--tau" => config.tau = parse_num("--tau", &value_for("--tau", &mut args)),
            "--kappa" => config.kappa = parse_num("--kappa", &value_for("--kappa", &mut args)),
            "--seed" => config.seed = parse_int("--seed", &value_for("--seed", &mut args)),
            "--deadline-ms" => {
                config.deadline_ms = Some(parse_int(
                    "--deadline-ms",
                    &value_for("--deadline-ms", &mut args),
                ));
            }
            "--workers" => {
                config.workers =
                    parse_int("--workers", &value_for("--workers", &mut args)) as usize;
            }
            "--batch-max" => {
                config.batch_max = (parse_int("--batch-max", &value_for("--batch-max", &mut args))
                    as usize)
                    .max(1);
            }
            "--batch-linger-ms" => {
                let ms = parse_num(
                    "--batch-linger-ms",
                    &value_for("--batch-linger-ms", &mut args),
                );
                config.batch_linger = Duration::from_secs_f64((ms / 1e3).max(0.0));
            }
            "--max-queue" => {
                config.max_queue =
                    parse_int("--max-queue", &value_for("--max-queue", &mut args)) as usize;
            }
            "--max-frame-bytes" => {
                config.max_frame_bytes = parse_int(
                    "--max-frame-bytes",
                    &value_for("--max-frame-bytes", &mut args),
                ) as usize;
            }
            "--cache-entries" => {
                config.cache_entries =
                    parse_int("--cache-entries", &value_for("--cache-entries", &mut args)) as usize;
            }
            "--cache-shards" => {
                config.cache_shards =
                    (parse_int("--cache-shards", &value_for("--cache-shards", &mut args)) as usize)
                        .max(1);
            }
            "--fp-buckets" => {
                config.fp_buckets =
                    parse_int("--fp-buckets", &value_for("--fp-buckets", &mut args)) as u32;
            }
            "--router" => {
                let v = value_for("--router", &mut args);
                if v != "uniform" && v != "ucb" {
                    eprintln!("error: --router expects uniform|ucb, got `{v}`");
                    usage();
                }
                config.router = v;
            }
            "--router-state" => {
                config.router_state = Some(value_for("--router-state", &mut args));
            }
            "--router-epsilon" => {
                config.router_epsilon = parse_num(
                    "--router-epsilon",
                    &value_for("--router-epsilon", &mut args),
                );
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }
    config
}

fn parse_num(flag: &str, v: &str) -> f64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a number, got `{v}`");
        usage();
    })
}

fn parse_int(flag: &str, v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects an integer, got `{v}`");
        usage();
    })
}

fn main() -> ExitCode {
    let config = parse_config();
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    sig::install();
    let handle = server.handle();
    std::thread::spawn(move || loop {
        if TERMINATE.load(Ordering::SeqCst) {
            handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    println!("listening on {addr}");
    let final_stats = server.run();
    println!("{}", final_stats.to_string_pretty());
    ExitCode::SUCCESS
}
