//! # ljqo-server — the LJQO optimizer as a long-running daemon
//!
//! Everything below `ljqo-core` optimizes one query per process
//! invocation. This crate turns the stack into a service: a TCP daemon
//! that accepts catalogs and queries over a length-prefixed binary
//! protocol (with minimal HTTP/1.1 on the same port for `curl /stats`),
//! admission-controls and batches concurrent requests through
//! [`ljqo::optimize_batch_cached`] — so structurally-equal queries
//! arriving together dedup to one cold solve — and shares one
//! [`PlanCache`](ljqo_cache::PlanCache) across every connection.
//!
//! * [`protocol`] — the wire format: magic + version handshake, then
//!   `[type u8][len u32 BE][JSON payload]` frames.
//! * [`server`] — [`Server`] / [`ServerConfig`] / [`ServerHandle`]: the
//!   accept loop, batch workers, `/stats`, and graceful drain.
//! * [`client`] — a blocking [`Client`] with pipelining, plus
//!   [`fetch_stats_http`].
//! * [`stats`] — the lock-free [`stats::ServerStats`] counters and
//!   log-bucketed [`stats::LatencyHistogram`] behind `/stats`.
//!
//! Operator documentation (flags, `/stats` schema, capacity planning,
//! troubleshooting) lives in `docs/SERVING.md`.
//!
//! ## In-process round trip
//!
//! ```
//! use ljqo_cli::QueryFile;
//! use ljqo_server::{Client, Server, ServerConfig};
//!
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".to_string(), // pick any free port
//!     ..ServerConfig::default()
//! };
//! let server = Server::bind(config).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run());
//!
//! let query = QueryFile::from_json(
//!     r#"{
//!         "relations": [
//!             {"name": "orders", "cardinality": 100000},
//!             {"name": "customers", "cardinality": 10000}
//!         ],
//!         "joins": [{"left": "orders", "right": "customers", "selectivity": 0.0001}]
//!     }"#,
//! )
//! .unwrap();
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client.optimize(1, &query).unwrap();
//! assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
//! assert!(reply.get("cost").and_then(|v| v.as_f64()).unwrap() > 0.0);
//!
//! handle.shutdown();
//! let final_stats = running.join().unwrap();
//! let served = final_stats.get("serving").and_then(|s| s.get("queries"));
//! assert_eq!(served.and_then(|v| v.as_u64()), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{fetch_stats_http, Client};
pub use protocol::{Frame, FrameType, DEFAULT_MAX_FRAME_BYTES, MAGIC, VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::{LatencyHistogram, LatencySnapshot, ServerStats};
