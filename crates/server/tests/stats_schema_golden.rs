//! Golden-file test for the `/stats` document schema.
//!
//! Same harness as `crates/cli/tests/json_schema_golden.rs`: the set of
//! key paths (not values) is snapshotted, so any field rename, removal,
//! or addition shows up as a reviewable diff against the committed
//! golden file. The binary-protocol `Stats` frame and the HTTP
//! `GET /stats` route must serve the *same* schema — both feed one
//! snapshot and are cross-checked against each other.
//!
//! To update after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ljqo-server --test stats_schema_golden
//! ```

use std::path::PathBuf;

use ljqo_cli::QueryFile;
use ljqo_server::{fetch_stats_http, Client, Server, ServerConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/stats_schema.txt")
}

/// Collect every key path in `value`, descending objects (`a.b`) and the
/// first element of arrays (`a[]`).
fn key_paths(prefix: &str, value: &ljqo_json::Value, out: &mut Vec<String>) {
    if let Some(fields) = value.as_object() {
        for (k, v) in fields {
            let path = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            out.push(path.clone());
            key_paths(&path, v, out);
        }
    } else if let Some(items) = value.as_array() {
        if let Some(first) = items.first() {
            key_paths(&format!("{prefix}[]"), first, out);
        }
    }
}

fn sample_query() -> QueryFile {
    QueryFile::from_json(
        r#"{
            "relations": [
                {"name": "a", "cardinality": 10000},
                {"name": "b", "cardinality": 500},
                {"name": "c", "cardinality": 20000}
            ],
            "joins": [
                {"left": "a", "right": "b", "selectivity": 0.01},
                {"left": "b", "right": "c", "selectivity": 0.001}
            ]
        }"#,
    )
    .expect("sample query parses")
}

#[test]
fn stats_schema_matches_the_golden_file_on_both_transports() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind on an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    // Serve one query so the latency / batch / serving blocks carry
    // real counts — the schema must be identical either way because
    // every key is always present, but exercising the counters makes
    // the snapshot honest.
    let mut client = Client::connect(addr).expect("client connects");
    let reply = client.optimize(1, &sample_query()).expect("optimize runs");
    assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));

    let binary_stats = client.stats().expect("binary stats frame");
    let http_stats = fetch_stats_http(addr).expect("HTTP /stats");

    let mut binary_paths = Vec::new();
    key_paths("", &binary_stats, &mut binary_paths);
    let mut http_paths = Vec::new();
    key_paths("", &http_stats, &mut http_paths);
    assert_eq!(
        binary_paths, http_paths,
        "binary Stats frame and HTTP GET /stats must serve the same schema"
    );

    let mut paths = binary_paths;
    paths.sort();
    paths.dedup();
    let got = paths.join("\n") + "\n";

    handle.shutdown();
    let final_stats = running.join().expect("server drains");
    // The final document printed at drain time is the same schema too.
    let mut final_paths = Vec::new();
    key_paths("", &final_stats, &mut final_paths);
    final_paths.sort();
    final_paths.dedup();
    assert_eq!(final_paths.join("\n") + "\n", got);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), &got).expect("golden file is writable");
        return;
    }
    let want = std::fs::read_to_string(golden_path())
        .expect("golden file exists (run with UPDATE_GOLDEN=1 to create it)");
    assert_eq!(
        got, want,
        "/stats schema drifted from the golden file; if intentional, \
         re-run with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn stats_values_are_coherent_after_one_request() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).unwrap();
    client.optimize(7, &sample_query()).unwrap();
    let stats = client.stats().unwrap();

    let u = |path: &[&str]| -> u64 {
        let mut v = &stats;
        for p in path {
            v = v.get(p).unwrap_or_else(|| panic!("missing {path:?}"));
        }
        v.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
    };
    assert_eq!(u(&["requests", "received"]), 1);
    assert_eq!(u(&["requests", "admitted"]), 1);
    assert_eq!(u(&["requests", "completed"]), 1);
    assert_eq!(u(&["requests", "in_flight"]), 0);
    assert_eq!(u(&["serving", "queries"]), 1);
    assert_eq!(u(&["serving", "cold_solves"]), 1);
    assert_eq!(u(&["cache", "inserts"]), 1);
    assert_eq!(u(&["latency_us", "count"]), 1);
    assert_eq!(u(&["batches", "count"]), 1);
    assert_eq!(u(&["degradation", "none"]), 1);
    assert_eq!(u(&["method_wins", "IAI"]), 1);
    assert_eq!(
        stats
            .get("server")
            .and_then(|s| s.get("draining"))
            .and_then(|v| v.as_bool()),
        Some(false)
    );

    handle.shutdown();
    running.join().unwrap();
}
