//! End-to-end integration tests: a real server on an ephemeral port,
//! driven over real sockets.
//!
//! The centerpiece pins the serving layer's core claim: a pipelined
//! batch of *relabeled duplicates* (the same query with its relation
//! listing rotated) dedups to **exactly one** cold solve — asserted on
//! the `/stats` counters, not inferred from timing — and every copy
//! receives a bit-identical cost.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use ljqo_cli::QueryFile;
use ljqo_json::Value;
use ljqo_server::protocol::{read_frame, DEFAULT_MAX_FRAME_BYTES};
use ljqo_server::{fetch_stats_http, Client, FrameType, Server, ServerConfig};
use ljqo_workload::{generate_job_query, JobShape, JobSpec};

fn start(
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    ljqo_server::ServerHandle,
    std::thread::JoinHandle<Value>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind on an ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// The same query with its relation *listing* rotated by `k`: different
/// relation ids, identical structure and statistics. The fingerprint is
/// relabel-invariant, so the server must treat all rotations as one
/// equivalence class.
fn rotated(base: &QueryFile, k: usize) -> QueryFile {
    let mut q = base.clone();
    let n = q.relations.len();
    q.relations.rotate_left(k % n);
    q
}

fn get<'v>(value: &'v Value, path: &[&str]) -> &'v Value {
    let mut v = value;
    for p in path {
        v = v.get(p).unwrap_or_else(|| panic!("missing key {path:?}"));
    }
    v
}

#[test]
fn relabeled_duplicates_cost_one_cold_solve_and_answer_bit_identically() {
    const COPIES: usize = 6;
    let (addr, handle, join) = start(ServerConfig {
        // A generous linger so the whole pipelined burst lands in one
        // batch (the dedup assertions below hold even if it splits —
        // later copies become cache hits — but one batch is the
        // interesting path).
        batch_linger: Duration::from_millis(300),
        batch_max: COPIES * 2,
        workers: 1,
        ..ServerConfig::default()
    });

    let base = QueryFile::from_query(&generate_job_query(&JobSpec::new(JobShape::Star), 14, 42));
    let mut client = Client::connect(addr).expect("client connects");
    for i in 0..COPIES {
        client
            .send_optimize(i as u64, &rotated(&base, i))
            .expect("pipelined send");
    }
    let mut replies: Vec<Value> = (0..COPIES)
        .map(|_| {
            let (kind, v) = client.recv().expect("response arrives");
            assert_eq!(kind, FrameType::Response);
            v
        })
        .collect();
    replies.sort_by_key(|r| get(r, &["id"]).as_u64().unwrap());

    // Every copy answered OK, bit-identical cost, identical join order
    // (segments are name lists, so relabeling must not leak through).
    let reference_cost = get(&replies[0], &["cost"]).as_f64().unwrap();
    let reference_segments = get(&replies[0], &["segments"]).clone();
    assert!(reference_cost.is_finite() && reference_cost > 0.0);
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(
            get(reply, &["ok"]).as_bool(),
            Some(true),
            "copy {i}: {reply}"
        );
        assert_eq!(get(reply, &["id"]).as_u64(), Some(i as u64));
        let cost = get(reply, &["cost"]).as_f64().unwrap();
        assert_eq!(
            cost.to_bits(),
            reference_cost.to_bits(),
            "copy {i} cost {cost} != reference {reference_cost}"
        );
        assert_eq!(
            get(reply, &["segments"]),
            &reference_segments,
            "copy {i} join order differs"
        );
        assert_eq!(get(reply, &["degradation"]).as_str(), Some("none"));
        assert_eq!(get(reply, &["producer"]).as_str(), Some("IAI"));
    }
    // Exactly one representative paid the cold search.
    let miss_count = replies
        .iter()
        .filter(|r| get(r, &["outcome"]).as_str() == Some("miss"))
        .count();
    let hit_count = replies
        .iter()
        .filter(|r| get(r, &["outcome"]).as_str() == Some("hit"))
        .count();
    assert_eq!(miss_count, 1, "exactly one cold representative");
    assert_eq!(hit_count, COPIES - 1, "all other copies reuse its plan");

    // Counter-assert against /stats: the server-side view must agree.
    let stats = client.stats().expect("stats frame");
    assert_eq!(
        get(&stats, &["serving", "cold_solves"]).as_u64(),
        Some(1),
        "one cold solve across {COPIES} relabeled copies: {stats}"
    );
    assert_eq!(
        get(&stats, &["serving", "queries"]).as_u64(),
        Some(COPIES as u64)
    );
    let dedup = get(&stats, &["serving", "dedup_reuses"]).as_u64().unwrap();
    let cache_hits = get(&stats, &["serving", "cache_hits"]).as_u64().unwrap();
    assert_eq!(dedup + cache_hits, (COPIES - 1) as u64);
    assert_eq!(
        get(&stats, &["requests", "completed"]).as_u64(),
        Some(COPIES as u64)
    );
    assert_eq!(
        get(&stats, &["method_wins", "IAI"]).as_u64(),
        Some(COPIES as u64)
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn warm_cache_serves_across_connections() {
    let (addr, handle, join) = start(ServerConfig::default());
    let query = QueryFile::from_query(&generate_job_query(
        &JobSpec::new(JobShape::Snowflake),
        10,
        7,
    ));

    let first = Client::connect(addr).unwrap().optimize(1, &query).unwrap();
    assert_eq!(get(&first, &["outcome"]).as_str(), Some("miss"));

    // A different connection must see the shared cache.
    let second = Client::connect(addr).unwrap().optimize(2, &query).unwrap();
    assert_eq!(get(&second, &["outcome"]).as_str(), Some("hit"));
    assert_eq!(
        get(&second, &["cost"]).as_f64().unwrap().to_bits(),
        get(&first, &["cost"]).as_f64().unwrap().to_bits(),
        "warm hit is bit-identical to the cold solve"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_and_invalid_requests_get_typed_errors() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    // Not JSON at all.
    client.send_raw_optimize(b"this is not json").unwrap();
    let (_, reply) = client.recv().unwrap();
    assert_eq!(get(&reply, &["ok"]).as_bool(), Some(false));
    assert_eq!(get(&reply, &["code"]).as_str(), Some("bad_request"));

    // Valid JSON, no query field.
    client.send_raw_optimize(br#"{"id": 3}"#).unwrap();
    let (_, reply) = client.recv().unwrap();
    assert_eq!(get(&reply, &["id"]).as_u64(), Some(3));
    assert_eq!(get(&reply, &["code"]).as_str(), Some("bad_request"));

    // Structurally valid, semantically broken catalog (join references
    // an unknown relation).
    client
        .send_raw_optimize(
            br#"{"id": 4, "query": {
                "relations": [{"name": "a", "cardinality": 10}],
                "joins": [{"left": "a", "right": "ghost", "selectivity": 0.1}]
            }}"#,
        )
        .unwrap();
    let (_, reply) = client.recv().unwrap();
    assert_eq!(get(&reply, &["id"]).as_u64(), Some(4));
    assert_eq!(get(&reply, &["code"]).as_str(), Some("invalid_query"));

    // The connection survived all three rejections.
    let stats = client.stats().unwrap();
    assert_eq!(
        get(&stats, &["requests", "rejected_invalid"]).as_u64(),
        Some(3)
    );
    assert_eq!(get(&stats, &["requests", "admitted"]).as_u64(), Some(0));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn unsupported_version_gets_an_error_frame() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"LJQO\x63").unwrap(); // version 99
    let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .expect("server answers before closing");
    assert_eq!(frame.kind, FrameType::Error);
    let body = ljqo_json::parse(std::str::from_utf8(&frame.payload).unwrap()).unwrap();
    assert_eq!(get(&body, &["code"]).as_str(), Some("unsupported_version"));
    // And then the server closes.
    assert!(read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .is_none());
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_frames_are_rejected_without_allocation() {
    let (addr, handle, join) = start(ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"LJQO\x01").unwrap();
    // Header declaring a 256 MiB payload; no payload follows.
    let mut header = vec![0x01u8];
    header.extend_from_slice(&(256u32 << 20).to_be_bytes());
    stream.write_all(&header).unwrap();
    let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES)
        .unwrap()
        .expect("error frame before close");
    assert_eq!(frame.kind, FrameType::Error);
    let body = ljqo_json::parse(std::str::from_utf8(&frame.payload).unwrap()).unwrap();
    assert_eq!(get(&body, &["code"]).as_str(), Some("frame_too_large"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn http_routes_serve_stats_health_and_404() {
    let (addr, handle, join) = start(ServerConfig::default());

    let stats = fetch_stats_http(addr).expect("GET /stats");
    assert!(stats.get("server").is_some());
    assert_eq!(
        get(&stats, &["server", "name"]).as_str(),
        Some("ljqo-server")
    );

    // /healthz
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    use std::io::Read;
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("\"ok\": true"));

    // Unknown path.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn drain_answers_every_admitted_request_and_rejects_new_ones() {
    const BURST: usize = 8;
    let (addr, handle, join) = start(ServerConfig {
        // Slow the batch assembly down so requests are still queued or
        // in flight when the drain starts.
        batch_linger: Duration::from_millis(150),
        batch_max: 2,
        workers: 1,
        ..ServerConfig::default()
    });

    let mut client = Client::connect(addr).unwrap();
    let queries: Vec<QueryFile> = (0..BURST)
        .map(|i| {
            QueryFile::from_query(&generate_job_query(
                &JobSpec::new(JobShape::Cyclic),
                12,
                1000 + i as u64,
            ))
        })
        .collect();
    for (i, q) in queries.iter().enumerate() {
        client.send_optimize(i as u64, q).unwrap();
    }
    // A Stats frame is processed by the same reader *after* all the
    // Optimize frames, so once its reply arrives every request above
    // has been admitted. Responses may interleave before it.
    client
        .send_frame(FrameType::Stats, b"")
        .expect("stats frame");
    let mut answered = Vec::new();
    loop {
        let (kind, value) = client.recv().unwrap();
        match kind {
            FrameType::StatsResponse => {
                assert_eq!(
                    get(&value, &["requests", "admitted"]).as_u64(),
                    Some(BURST as u64),
                    "all requests admitted before the drain begins"
                );
                break;
            }
            FrameType::Response => answered.push(value),
            other => panic!("unexpected frame {other:?}"),
        }
    }

    // Drain with work still queued.
    handle.shutdown();

    // Every admitted request is still answered, with a real plan.
    while answered.len() < BURST {
        let (kind, value) = client.recv().unwrap();
        assert_eq!(kind, FrameType::Response);
        answered.push(value);
    }
    for reply in &answered {
        assert_eq!(get(reply, &["ok"]).as_bool(), Some(true), "{reply}");
    }

    // A request sent during the drain is rejected with code "draining"
    // (if the reader answers before sockets close) or the connection is
    // simply gone — never silently dropped with the connection alive.
    let late = client.send_optimize(999, &queries[0]);
    if late.is_ok() {
        match client.recv() {
            Ok((FrameType::Response, reply)) => {
                assert_eq!(get(&reply, &["ok"]).as_bool(), Some(false));
                assert_eq!(get(&reply, &["code"]).as_str(), Some("draining"));
            }
            Ok((other, _)) => panic!("unexpected frame {other:?}"),
            Err(_) => {} // server already closed the socket
        }
    }

    let final_stats = join.join().unwrap();
    assert_eq!(
        get(&final_stats, &["requests", "completed"]).as_u64(),
        Some(BURST as u64)
    );
    assert_eq!(
        get(&final_stats, &["requests", "in_flight"]).as_u64(),
        Some(0)
    );
    assert_eq!(get(&final_stats, &["requests", "queued"]).as_u64(), Some(0));
    assert_eq!(
        get(&final_stats, &["server", "draining"]).as_bool(),
        Some(true)
    );
}

#[test]
fn router_shares_leave_uniform_under_a_skewed_workload_and_persist() {
    // A UCB-routed server fed a workload skewed to one query class must
    // (a) report learned statistics in the /stats `router` block, (b)
    // move that class's budget shares away from the uniform 1/4 split
    // while honoring the ε floor, and (c) persist the learned state on
    // drain so the next process starts warm.
    let state_path = std::env::temp_dir().join(format!(
        "ljqo_router_e2e_{}_{:x}.state",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let config = ServerConfig {
        router: "ucb".to_string(),
        router_state: Some(state_path.to_string_lossy().into_owned()),
        tau: 3.0,
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(config.clone());

    // 16 star queries with distinct statistics: every one is a cold
    // solve (distinct fingerprints), all in the same router class.
    let mut client = Client::connect(addr).unwrap();
    for i in 0..16u64 {
        let q = QueryFile::from_query(&generate_job_query(
            &JobSpec::new(JobShape::Star),
            12,
            500 + i,
        ));
        let reply = client.optimize(i, &q).unwrap();
        assert_eq!(get(&reply, &["ok"]).as_bool(), Some(true), "{reply}");
    }

    let stats = client.stats().unwrap();
    assert_eq!(get(&stats, &["router", "enabled"]).as_bool(), Some(true));
    assert_eq!(get(&stats, &["router", "mode"]).as_str(), Some("ucb"));
    let epsilon = get(&stats, &["router", "epsilon"]).as_f64().unwrap();
    assert!(epsilon > 0.0 && epsilon <= 0.25);
    let arms = get(&stats, &["router", "arms"]).as_array().unwrap();
    assert_eq!(arms.len(), 4, "one arm per portfolio method");
    let classes = get(&stats, &["router", "classes"]).as_array().unwrap();
    let learned = classes
        .iter()
        .find(|c| get(c, &["events"]).as_u64().unwrap() >= 8)
        .expect("the skewed class accumulated enough events to learn");
    assert!(get(learned, &["class"])
        .as_str()
        .unwrap()
        .starts_with("star/"));
    let shares: Vec<f64> = get(learned, &["shares"])
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.as_f64().unwrap())
        .collect();
    assert_eq!(shares.len(), 4);
    assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    let max = shares.iter().cloned().fold(f64::MIN, f64::max);
    let min = shares.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max > 0.25 + 1e-9,
        "shares stayed uniform after warm-up: {shares:?}"
    );
    assert!(
        min >= epsilon - 1e-9,
        "ε floor violated: {shares:?} vs ε = {epsilon}"
    );
    // The per-class win table covers the same class.
    let by_class = get(&stats, &["method_wins_by_class"]).as_array().unwrap();
    assert!(by_class
        .iter()
        .any(|c| get(c, &["class"]).as_str().unwrap().starts_with("star/")));

    handle.shutdown();
    join.join().unwrap();

    // Drain persisted the state; a fresh server loads it warm with no
    // reset counted.
    let text = std::fs::read_to_string(&state_path).expect("router state saved on drain");
    assert!(text.starts_with("ljqo-router v1"), "{text}");
    let (addr2, handle2, join2) = start(config);
    let stats2 = fetch_stats_http(addr2).unwrap();
    assert_eq!(get(&stats2, &["router", "resets"]).as_u64(), Some(0));
    let classes2 = get(&stats2, &["router", "classes"]).as_array().unwrap();
    assert!(
        classes2
            .iter()
            .any(|c| get(c, &["events"]).as_u64().unwrap() >= 8),
        "learned class survives the restart: {stats2}"
    );
    handle2.shutdown();
    join2.join().unwrap();
    std::fs::remove_file(&state_path).ok();
}

/// Shorthand for injecting raw (possibly malformed) `Optimize` payloads.
trait RawClient {
    fn send_raw_optimize(&mut self, payload: &[u8]) -> std::io::Result<()>;
}

impl RawClient for Client {
    fn send_raw_optimize(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.send_frame(FrameType::Optimize, payload)
    }
}
