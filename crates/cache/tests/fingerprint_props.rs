//! Property-style tests for the query fingerprint.
//!
//! The repository builds offline, so instead of a property-testing crate
//! these are seeded-RNG loops (the same idiom as the workspace's other
//! `*_props.rs` suites): each case derives its own deterministic seed, so
//! failures reproduce exactly.
//!
//! The three properties under test are the fingerprint's contract:
//!
//! 1. relabeling the relations of a query NEVER changes its fingerprint;
//! 2. perturbing one cardinality beyond one log-bucket width ALWAYS
//!    changes it;
//! 3. perturbing one cardinality within its log bucket NEVER changes it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_cache::{fingerprint, FingerprintConfig};
use ljqo_catalog::quant::log_bucket;
use ljqo_catalog::{JoinEdge, Query, RelId, Relation};
use ljqo_workload::{generate_query, Benchmark};

const CASES: u64 = 64;
const BPDS: [u32; 3] = [1, 4, 16];

/// A random connected query with explicit edge statistics, so that
/// perturbing a relation's cardinality changes *only* that cardinality
/// (the `QueryBuilder::join` shorthand derives distinct counts from
/// cardinalities, which would couple the statistics).
fn random_query(rng: &mut SmallRng) -> Query {
    let n = rng.gen_range(3usize..10);
    let relations: Vec<Relation> = (0..n)
        .map(|i| Relation::new(format!("r{i}"), rng.gen_range(10u64..1_000_000)))
        .collect();
    let mut edges = Vec::new();
    for i in 1..n {
        let j = rng.gen_range(0..i) as u32;
        edges.push(JoinEdge::new(
            j,
            i as u32,
            10f64.powf(rng.gen_range(-4.0..-0.3)),
            rng.gen_range(2.0..1000.0f64).floor(),
            rng.gen_range(2.0..1000.0f64).floor(),
        ));
    }
    // A few extra (possibly parallel) edges to exercise cyclic graphs.
    for _ in 0..rng.gen_range(0usize..3) {
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        if a != b {
            edges.push(JoinEdge::new(
                a,
                b,
                10f64.powf(rng.gen_range(-3.0..-0.5)),
                rng.gen_range(2.0..500.0f64).floor(),
                rng.gen_range(2.0..500.0f64).floor(),
            ));
        }
    }
    Query::new(relations, edges).unwrap()
}

/// Rebuild `query` with its relations re-indexed by `perm`
/// (`perm[old] = new`), edges remapped accordingly.
fn permuted(query: &Query, perm: &[usize]) -> Query {
    let n = query.n_relations();
    let mut relations: Vec<Option<Relation>> = vec![None; n];
    for (old, r) in query.relations().iter().enumerate() {
        relations[perm[old]] = Some(r.clone());
    }
    let relations: Vec<Relation> = relations.into_iter().map(Option::unwrap).collect();
    let edges: Vec<JoinEdge> = query
        .graph()
        .edges()
        .iter()
        .map(|e| JoinEdge {
            a: RelId(perm[e.a.index()] as u32),
            b: RelId(perm[e.b.index()] as u32),
            ..*e
        })
        .collect();
    Query::new(relations, edges).unwrap()
}

/// Rebuild `query` with one relation's base cardinality replaced.
fn with_cardinality(query: &Query, rel: usize, card: u64) -> Query {
    let mut relations = query.relations().to_vec();
    relations[rel].base_cardinality = card;
    Query::new(relations, query.graph().edges().to_vec()).unwrap()
}

fn shuffled_identity(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

#[test]
fn relabeling_never_changes_the_fingerprint() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xf19e_0001 ^ case);
        let q = random_query(&mut rng);
        let perm = shuffled_identity(q.n_relations(), &mut rng);
        let p = permuted(&q, &perm);
        for bpd in BPDS {
            let cfg = FingerprintConfig {
                buckets_per_decade: bpd,
            };
            let fq = fingerprint(&q, &cfg);
            let fp = fingerprint(&p, &cfg);
            assert_eq!(
                fq.fingerprint(),
                fp.fingerprint(),
                "case {case} bpd {bpd}: permutation changed the fingerprint"
            );
        }
    }
}

#[test]
fn relabeling_generated_benchmark_queries_is_invariant() {
    // Same property over the paper's own workload generator, which
    // produces correlated statistics the hand-rolled generator does not.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xf19e_0002 ^ case);
        let q = generate_query(
            &Benchmark::Default.spec(),
            rng.gen_range(4usize..14),
            case.wrapping_mul(0x9e37),
        );
        let perm = shuffled_identity(q.n_relations(), &mut rng);
        let p = permuted(&q, &perm);
        let cfg = FingerprintConfig::default();
        assert_eq!(
            fingerprint(&q, &cfg).fingerprint(),
            fingerprint(&p, &cfg).fingerprint(),
            "case {case}: permutation changed the fingerprint"
        );
    }
}

/// Uniform-statistics catalogs of `n` relations with heavy structural
/// symmetry: every relation shares one cardinality and every edge one
/// selectivity, so WL colors tie across whole orbits and the canonical
/// BFS must break every tie without consulting input labels.
fn symmetric_query(kind: usize, n: usize) -> Query {
    let relations: Vec<Relation> = (0..n)
        .map(|i| Relation::new(format!("r{i}"), 1000))
        .collect();
    let edge = |a: usize, b: usize| JoinEdge::new(a as u32, b as u32, 0.01, 10.0, 10.0);
    let mut edges = Vec::new();
    match kind {
        // A star: n-1 interchangeable leaves.
        0 => {
            for i in 1..n {
                edges.push(edge(0, i));
            }
        }
        // A circulant C_n(1, 2): 4-regular, vertex-transitive, every
        // color ties with every other.
        1 => {
            for i in 0..n {
                edges.push(edge(i, (i + 1) % n));
                edges.push(edge(i, (i + 2) % n));
            }
        }
        // A 10 x (n/10) grid: corner/border/interior orbits, plus
        // reflection symmetries within each.
        _ => {
            let w = 10usize;
            let h = n / w;
            for r in 0..h {
                for c in 0..w {
                    let v = r * w + c;
                    if c + 1 < w {
                        edges.push(edge(v, v + 1));
                    }
                    if r + 1 < h {
                        edges.push(edge(v, v + w));
                    }
                }
            }
        }
    }
    Query::new(relations, edges).unwrap()
}

#[test]
fn relabeling_is_invariant_at_n100_under_heavy_symmetry() {
    // The large-N stress of the relabeling property: at N = 100 with
    // uniform statistics, WL refinement leaves large color-tied orbits,
    // and the BFS placed-adjacency tie-break is all that stands between
    // the encoding and the input labels. Several random permutations per
    // structure.
    for kind in 0..3usize {
        let q = symmetric_query(kind, 100);
        let cfg = FingerprintConfig::default();
        let base = fingerprint(&q, &cfg);
        for round in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(0xf19e_0100 ^ (kind as u64) << 8 ^ round);
            let perm = shuffled_identity(q.n_relations(), &mut rng);
            let p = permuted(&q, &perm);
            let fp = fingerprint(&p, &cfg);
            assert_eq!(
                base.fingerprint(),
                fp.fingerprint(),
                "kind {kind} round {round}: permutation changed the N=100 fingerprint"
            );
            // The canonical mapping must remain a permutation at this
            // size (every relation reachable, none duplicated).
            let mut seen = vec![false; q.n_relations()];
            for c in 0..q.n_relations() as u32 {
                let r = fp.rehydrate_order(&[c]).unwrap()[0];
                assert!(
                    !seen[r.index()],
                    "kind {kind}: canonical index {c} duplicated"
                );
                seen[r.index()] = true;
            }
        }
    }
}

#[test]
fn perturbing_cardinality_beyond_one_bucket_always_changes() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xf19e_0003 ^ case);
        let q = random_query(&mut rng);
        let rel = rng.gen_range(0..q.n_relations());
        for bpd in BPDS {
            let cfg = FingerprintConfig {
                buckets_per_decade: bpd,
            };
            let old = q.relations()[rel].base_cardinality;
            // Two full bucket widths up: strictly beyond one width, so
            // the bucket index must move regardless of where in its
            // bucket `old` sits.
            let new = (old as f64 * 10f64.powf(2.0 / bpd as f64)).ceil() as u64;
            assert_ne!(
                log_bucket(old as f64, bpd),
                log_bucket(new as f64, bpd),
                "test premise: buckets must differ"
            );
            let p = with_cardinality(&q, rel, new);
            assert_ne!(
                fingerprint(&q, &cfg).fingerprint(),
                fingerprint(&p, &cfg).fingerprint(),
                "case {case} bpd {bpd}: {old} -> {new} did not change the fingerprint"
            );
        }
    }
}

#[test]
fn perturbing_cardinality_within_a_bucket_never_changes() {
    let mut tested = 0u32;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xf19e_0004 ^ case);
        let q = random_query(&mut rng);
        let rel = rng.gen_range(0..q.n_relations());
        for bpd in BPDS {
            let cfg = FingerprintConfig {
                buckets_per_decade: bpd,
            };
            let old = q.relations()[rel].base_cardinality;
            // Nudge up by one tuple at a time while staying in the same
            // bucket; wide buckets (cards ≥ 10) almost always admit one.
            let Some(new) = (old + 1..old + 16)
                .find(|&c| log_bucket(c as f64, bpd) == log_bucket(old as f64, bpd))
            else {
                continue; // old sat at the very top of its bucket
            };
            let p = with_cardinality(&q, rel, new);
            assert_eq!(
                fingerprint(&q, &cfg).fingerprint(),
                fingerprint(&p, &cfg).fingerprint(),
                "case {case} bpd {bpd}: within-bucket {old} -> {new} changed the fingerprint"
            );
            tested += 1;
        }
    }
    assert!(tested > CASES as u32, "too many cases skipped: {tested}");
}

#[test]
fn perturbing_selectivity_across_a_bucket_changes() {
    // Companion property on the edge statistics: a selectivity moved two
    // bucket widths must change the fingerprint too.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xf19e_0005 ^ case);
        let q = random_query(&mut rng);
        let edge = rng.gen_range(0..q.graph().edges().len());
        let cfg = FingerprintConfig::default();
        let mut edges = q.graph().edges().to_vec();
        let old = edges[edge].selectivity;
        let new = (old * 10f64.powf(2.0 / cfg.buckets_per_decade as f64)).min(1.0);
        if log_bucket(new, cfg.buckets_per_decade) == log_bucket(old, cfg.buckets_per_decade) {
            continue; // clamped into the same bucket at the top of (0, 1]
        }
        edges[edge].selectivity = new;
        let p = Query::new(q.relations().to_vec(), edges).unwrap();
        assert_ne!(
            fingerprint(&q, &cfg).fingerprint(),
            fingerprint(&p, &cfg).fingerprint(),
            "case {case}: selectivity {old} -> {new} did not change the fingerprint"
        );
    }
}
