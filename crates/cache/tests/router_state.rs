//! Router persistence contract: a save/load cycle is an exact identity,
//! and *every* corrupt-file shape degrades to a fresh uniform router
//! with a counted reset — never an error, never a crash.

use std::fs;
use std::path::PathBuf;

use ljqo_cache::{BanditRouter, QueryClass, RouterConfig, ShapeClass};

const ARMS: [&str; 4] = ["II", "SA", "AGI", "KBI"];

/// A unique scratch path per test (no tempdir crate in the image).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ljqo_router_state_tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}_{}.state", tag, std::process::id()))
}

fn class(shape: ShapeClass, n_bucket: u8) -> QueryClass {
    QueryClass {
        shape,
        n_bucket,
        components: 1,
        density_bucket: 1,
    }
}

/// A router with two warm classes and one barely-touched one, using
/// rewards that exercise non-trivial float values.
fn trained_router() -> BanditRouter {
    let router = BanditRouter::new(&ARMS, RouterConfig::default());
    let star = class(ShapeClass::Star, 3);
    let chain = class(ShapeClass::Chain, 4);
    let dense = class(ShapeClass::DenseCyclic, 2);
    for i in 0..12u64 {
        let base = 100.0 + i as f64 * 0.37;
        router.record_outcome(
            &star,
            &[
                Some(base),
                Some(base * 1.7 + 0.001),
                Some(base * 2.3),
                Some(base * 3.1),
            ],
            &[50, 50, 50, 50],
            Some(0),
        );
        router.record_outcome(
            &chain,
            &[Some(base * 2.0), Some(base), None, Some(base * 1.01)],
            &[40, 40, 0, 40],
            Some(1),
        );
    }
    router.record_outcome(
        &dense,
        &[Some(9.0), Some(3.0), Some(6.0), None],
        &[7, 7, 7, 0],
        Some(1),
    );
    router
}

#[test]
fn save_then_load_is_a_bitwise_identity() {
    let path = scratch("roundtrip");
    let router = trained_router();
    router.save(&path).unwrap();
    let reloaded = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    // `{:?}` float formatting round-trips exactly, so the snapshots —
    // including mean rewards and share vectors — must be *equal*, not
    // merely close.
    assert_eq!(router.snapshot(), reloaded.snapshot());
    assert_eq!(reloaded.resets(), 0);
    fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_fresh_start_not_a_reset() {
    let path = scratch("missing");
    fs::remove_file(&path).ok();
    let router = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(router.resets(), 0, "first boot is normal, not a reset");
    assert!(router.snapshot().classes.is_empty());
}

#[test]
fn truncated_file_degrades_to_uniform_with_a_counted_reset() {
    let path = scratch("truncated");
    trained_router().save(&path).unwrap();
    let full = fs::read_to_string(&path).unwrap();
    // Cut mid-way through the class table: header (and its resets line)
    // still readable, body incomplete.
    let cut = full.len() * 2 / 3;
    fs::write(&path, &full[..cut]).unwrap();
    let router = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(router.resets(), 1, "prior resets 0, salvaged, plus one");
    assert!(
        router.snapshot().classes.is_empty(),
        "no partial state survives a truncated load"
    );
    fs::remove_file(&path).ok();
}

#[test]
fn garbage_file_degrades_to_uniform_with_a_counted_reset() {
    let path = scratch("garbage");
    fs::write(&path, b"\x00\xffnot a router state at all\nrandom lines\n").unwrap();
    let router = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(router.resets(), 1);
    assert!(router.snapshot().classes.is_empty());
    fs::remove_file(&path).ok();
}

#[test]
fn version_bump_invalidates_the_file_but_preserves_the_reset_count() {
    let path = scratch("version");
    let router = trained_router();
    router.save(&path).unwrap();
    let text = fs::read_to_string(&path)
        .unwrap()
        .replacen("ljqo-router v1", "ljqo-router v999", 1)
        .replacen("resets 0", "resets 5", 1);
    fs::write(&path, text).unwrap();
    let reloaded = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(
        reloaded.resets(),
        6,
        "cumulative: the salvaged prior count plus this reset"
    );
    assert!(reloaded.snapshot().classes.is_empty());
    fs::remove_file(&path).ok();
}

#[test]
fn arm_set_mismatch_is_treated_as_corruption() {
    let path = scratch("arms");
    trained_router().save(&path).unwrap();
    let reloaded = BanditRouter::load(&path, &["II", "SA", "AGI"], RouterConfig::default());
    assert_eq!(reloaded.resets(), 1);
    assert_eq!(reloaded.n_arms(), 3, "the *requested* arm set wins");
    assert!(reloaded.snapshot().classes.is_empty());
    fs::remove_file(&path).ok();
}

#[test]
fn reset_count_itself_round_trips_through_save() {
    let path = scratch("resets_roundtrip");
    // Boot 1: corrupt file => resets 1.
    fs::write(&path, "junk").unwrap();
    let r1 = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(r1.resets(), 1);
    r1.save(&path).unwrap();
    // Boot 2: clean load keeps the historical count.
    let r2 = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(r2.resets(), 1);
    // Boot 3: corrupt again => cumulative 2.
    let text = fs::read_to_string(&path).unwrap();
    fs::write(&path, text + "trailing garbage that breaks the trailer\n").unwrap();
    let r3 = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(r3.resets(), 2);
    fs::remove_file(&path).ok();
}

#[test]
fn save_is_atomic_enough_to_never_leave_a_half_written_primary() {
    let path = scratch("atomic");
    let router = trained_router();
    router.save(&path).unwrap();
    // The temp sibling must not linger after a successful save.
    assert!(!path.with_extension("tmp").exists());
    // Saving over an existing file replaces it wholesale.
    router.record_outcome(
        &class(ShapeClass::Tree, 5),
        &[Some(1.0), Some(2.0), Some(3.0), Some(4.0)],
        &[9, 9, 9, 9],
        Some(0),
    );
    router.save(&path).unwrap();
    let reloaded = BanditRouter::load(&path, &ARMS, RouterConfig::default());
    assert_eq!(router.snapshot(), reloaded.snapshot());
    fs::remove_file(&path).ok();
}
