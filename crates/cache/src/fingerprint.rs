//! Canonical query fingerprints.
//!
//! A fingerprint identifies the *equivalence class* a query belongs to
//! for plan-reuse purposes. Two queries share a fingerprint when their
//! join graphs are isomorphic **and** the per-relation / per-edge
//! statistics agree after log-scale quantization (see
//! [`ljqo_catalog::quant`]). The first property makes the fingerprint
//! invariant under relabeling of relation ids; the second collapses
//! cardinality detail the join order is robust to (the Simpli-Squared
//! observation), so near-identical queries hit the same cache entry.
//!
//! # Canonicalization
//!
//! Relation ids are arbitrary, so the fingerprint is computed over a
//! *canonical* ordering of the relations:
//!
//! 1. every relation gets a color from its quantized statistics (effective
//!    cardinality bucket, degree, sorted incident-edge signatures);
//! 2. colors are refined Weisfeiler–Lehman style — each round rehashes a
//!    relation's color with the sorted multiset of `(edge signature,
//!    neighbor color)` pairs — until the partition stabilizes;
//! 3. each join-graph component is encoded by a breadth-first traversal
//!    whose frontier is expanded in (color, edge-signature,
//!    placed-adjacency) order, rooted at each minimal-color relation in
//!    turn; the lexicographically smallest encoding wins (this also
//!    resolves root ties);
//! 4. component encodings are sorted and concatenated.
//!
//! WL colors alone cannot break every tie (color-tied relations need not
//! be automorphic — the classic Weisfeiler–Lehman limitation on regular
//! substructures), and input relation ids must never decide one, or the
//! encoding would vary under relabeling. The frontier therefore re-keys
//! its remaining candidates after every placement by their *placed-
//! adjacency signature* — a hash of each candidate's edges into the
//! already-built canonical prefix, by canonical index. Relations still
//! tied on all three keys are indistinguishable by any statistic or
//! placement the fingerprint can observe, so either order yields the
//! same encoding; among such interchangeable relations the input id is
//! used as a final deterministic fallback (it cannot affect the
//! encoding at that point, only which of the equivalent canonical
//! mappings is produced).
//!
//! The full canonical encoding is retained as the cache key — a 64-bit
//! digest is kept alongside for shard routing, but equality always
//! compares the encodings, so digest collisions can never alias two
//! different equivalence classes onto one cache entry.

use std::hash::{Hash, Hasher};

use ljqo_catalog::{quant::log_bucket, EdgeId, Query, RelId};

/// Configuration for [`fingerprint`]: how aggressively statistics are
/// collapsed before canonicalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintConfig {
    /// Log-scale buckets per factor of ten, for cardinalities,
    /// selectivities, and distinct counts. Fewer buckets collapse more
    /// queries onto one fingerprint (more reuse, coarser plans); `0` is
    /// treated as 1.
    pub buckets_per_decade: u32,
}

impl Default for FingerprintConfig {
    /// Four buckets per decade: statistics agreeing within a factor of
    /// `10^(1/4) ≈ 1.78` can share a bucket.
    fn default() -> Self {
        FingerprintConfig {
            buckets_per_decade: 4,
        }
    }
}

/// A canonical query fingerprint: the cache key.
///
/// Cheap to clone relative to a cold optimization; hashes via a
/// precomputed 64-bit digest but compares by full encoding.
#[derive(Debug, Clone)]
pub struct QueryFingerprint {
    encoding: Box<[u64]>,
    digest: u64,
}

impl QueryFingerprint {
    /// The 64-bit digest (used for shard routing).
    #[inline]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Length of the canonical encoding in 64-bit words (used for cache
    /// byte accounting).
    #[inline]
    pub fn encoding_words(&self) -> usize {
        self.encoding.len()
    }
}

impl PartialEq for QueryFingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.encoding == other.encoding
    }
}

impl Eq for QueryFingerprint {}

impl Hash for QueryFingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

/// A query's fingerprint together with the canonical relabeling that
/// produced it, so cached plans (stored in canonical coordinates) can be
/// rehydrated into this query's relation ids.
#[derive(Debug, Clone)]
pub struct Fingerprinted {
    fingerprint: QueryFingerprint,
    /// `rel_of_canon[c]` is the relation holding canonical index `c`.
    rel_of_canon: Vec<RelId>,
    /// `canon_of_rel[r.index()]` is the canonical index of relation `r`.
    canon_of_rel: Vec<u32>,
}

impl Fingerprinted {
    /// The fingerprint (cache key).
    #[inline]
    pub fn fingerprint(&self) -> &QueryFingerprint {
        &self.fingerprint
    }

    /// Number of relations in the fingerprinted query.
    #[inline]
    pub fn n_relations(&self) -> usize {
        self.rel_of_canon.len()
    }

    /// Translate a join order over this query's relation ids into
    /// canonical coordinates (for storing a plan in the cache).
    pub fn canonize_order(&self, rels: &[RelId]) -> Vec<u32> {
        rels.iter().map(|r| self.canon_of_rel[r.index()]).collect()
    }

    /// Translate a canonical-coordinate order back into this query's
    /// relation ids. Returns `None` if any index is out of range (a
    /// corrupt or foreign cache entry).
    pub fn rehydrate_order(&self, canon: &[u32]) -> Option<Vec<RelId>> {
        canon
            .iter()
            .map(|&c| self.rel_of_canon.get(c as usize).copied())
            .collect()
    }
}

/// 64-bit mixer (splitmix64 finalizer). Deterministic across processes,
/// which keeps fingerprints stable for snapshots and logs.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fold `v` into running digest `h`.
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    mix(h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// ZigZag-map a signed bucket index into an unsigned token.
#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Quantized, orientation-aware signature of edge `e` as seen from `v`.
fn edge_sig(query: &Query, v: RelId, e: EdgeId, bpd: u32) -> u64 {
    let edge = query.graph().edge(e);
    let sel = zigzag(edge.selectivity_bucket(bpd));
    let near = zigzag(log_bucket(edge.distinct_on(v).unwrap_or(1.0), bpd));
    let other = edge.other(v).unwrap_or(v);
    let far = zigzag(log_bucket(edge.distinct_on(other).unwrap_or(1.0), bpd));
    fold(fold(fold(0x5eed, sel), near), far)
}

/// Compute the canonical fingerprint of `query` under `cfg`.
///
/// The query is assumed validated (`Query::new` / `Query::validate`):
/// every statistic finite and positive. Unvalidated statistics degrade to
/// the quantizer's sentinel bucket — the fingerprint stays well-defined,
/// it just lumps all degenerate values together.
pub fn fingerprint(query: &Query, cfg: &FingerprintConfig) -> Fingerprinted {
    let n = query.n_relations();
    let g = query.graph();
    let bpd = cfg.buckets_per_decade.max(1);

    // Per-relation quantized statistics.
    let card_bucket: Vec<i64> = query
        .relations()
        .iter()
        .map(|r| r.cardinality_bucket(bpd))
        .collect();

    // Initial colors: cardinality bucket + degree + sorted incident edge
    // signatures.
    let mut colors: Vec<u64> = (0..n)
        .map(|i| {
            let v = RelId(i as u32);
            let mut sigs: Vec<u64> = g
                .incident(v)
                .iter()
                .map(|&e| edge_sig(query, v, e, bpd))
                .collect();
            sigs.sort_unstable();
            let mut h = fold(fold(0xc0_1035, zigzag(card_bucket[i])), sigs.len() as u64);
            for s in sigs {
                h = fold(h, s);
            }
            h
        })
        .collect();

    // Weisfeiler–Lehman refinement until the partition stabilizes (at
    // most n rounds: each productive round splits at least one class).
    let class_count = |cs: &[u64]| {
        let mut sorted = cs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    };
    let mut classes = class_count(&colors);
    for _ in 0..n {
        if classes == n {
            break;
        }
        let next: Vec<u64> = (0..n)
            .map(|i| {
                let v = RelId(i as u32);
                let mut neigh: Vec<u64> = g
                    .incident(v)
                    .iter()
                    .map(|&e| {
                        let o = g.edge(e).other(v).unwrap_or(v);
                        fold(edge_sig(query, v, e, bpd), colors[o.index()])
                    })
                    .collect();
                neigh.sort_unstable();
                let mut h = fold(0x9e1f, colors[i]);
                for x in neigh {
                    h = fold(h, x);
                }
                h
            })
            .collect();
        let next_classes = class_count(&next);
        if next_classes == classes {
            break;
        }
        colors = next;
        classes = next_classes;
    }

    // Canonicalize each component independently.
    struct CompCanon {
        encoding: Vec<u64>,
        order: Vec<RelId>,
    }
    let mut comps: Vec<CompCanon> = g
        .components()
        .iter()
        .map(|comp| {
            let min_color = comp
                .iter()
                .map(|r| colors[r.index()])
                .min()
                .expect("components are non-empty");
            let mut best: Option<CompCanon> = None;
            for &root in comp.iter().filter(|r| colors[r.index()] == min_color) {
                let cand = canonical_bfs(query, root, comp, &colors, &card_bucket, bpd);
                let better = match &best {
                    None => true,
                    Some(b) => cand.0 < b.encoding,
                };
                if better {
                    best = Some(CompCanon {
                        encoding: cand.0,
                        order: cand.1,
                    });
                }
            }
            best.expect("every component has at least one minimal-color root")
        })
        .collect();

    // Component order: lexicographic by encoding, so enumeration order of
    // equal-sized components cannot leak input labels into the key.
    comps.sort_by(|a, b| a.encoding.cmp(&b.encoding));

    let mut encoding: Vec<u64> = Vec::new();
    let mut rel_of_canon: Vec<RelId> = Vec::with_capacity(n);
    encoding.push(comps.len() as u64);
    for comp in &comps {
        encoding.push(comp.encoding.len() as u64);
        encoding.extend_from_slice(&comp.encoding);
        rel_of_canon.extend_from_slice(&comp.order);
    }
    let mut canon_of_rel = vec![0u32; n];
    for (c, &r) in rel_of_canon.iter().enumerate() {
        canon_of_rel[r.index()] = c as u32;
    }
    let digest = encoding
        .iter()
        .fold(0x1705_cace_f00d_5eed_u64, |h, &v| fold(h, v));

    Fingerprinted {
        fingerprint: QueryFingerprint {
            encoding: encoding.into_boxed_slice(),
            digest,
        },
        rel_of_canon,
        canon_of_rel,
    }
}

/// Signature of `o`'s attachment to the already-placed canonical prefix:
/// the sorted multiset of `(canonical index, edge signature)` over edges
/// from `o` to placed relations, folded into one hash. Canonical indices
/// are label-independent by construction, so this key may break WL-color
/// ties without leaking input labels into the encoding.
fn placed_sig(query: &Query, o: RelId, canon: &[u32], bpd: u32) -> u64 {
    let g = query.graph();
    let mut toks: Vec<(u32, u64)> = Vec::new();
    for &e in g.incident(o) {
        if let Some(p) = g.edge(e).other(o) {
            if canon[p.index()] != u32::MAX {
                toks.push((canon[p.index()], edge_sig(query, o, e, bpd)));
            }
        }
    }
    toks.sort_unstable();
    let mut h = 0x0091_aced_u64;
    for (c, s) in toks {
        h = fold(fold(h, c as u64), s);
    }
    h
}

/// BFS over `comp` from `root`, expanding the frontier in (color,
/// edge-signature, placed-adjacency) order, producing the component's
/// token encoding and the visit order.
fn canonical_bfs(
    query: &Query,
    root: RelId,
    comp: &[RelId],
    colors: &[u64],
    card_bucket: &[i64],
    bpd: u32,
) -> (Vec<u64>, Vec<RelId>) {
    let g = query.graph();
    let n = query.n_relations();
    let mut canon = vec![u32::MAX; n];
    let mut order: Vec<RelId> = Vec::with_capacity(comp.len());
    canon[root.index()] = 0;
    order.push(root);
    let mut head = 0usize;
    while head < order.len() {
        let v = order[head];
        head += 1;
        // Unvisited neighbors of v; parallel edges fold into one
        // order-independent signature per neighbor.
        let mut raw: Vec<(RelId, u64)> = Vec::new();
        for &e in g.incident(v) {
            if let Some(o) = g.edge(e).other(v) {
                if canon[o.index()] == u32::MAX {
                    raw.push((o, edge_sig(query, o, e, bpd)));
                }
            }
        }
        raw.sort_unstable();
        let mut cands: Vec<(RelId, u64)> = Vec::new();
        for (o, sig) in raw {
            match cands.iter_mut().find(|(r, _)| *r == o) {
                Some((_, combined)) => *combined = fold(*combined, sig),
                None => cands.push((o, sig)),
            }
        }
        // Sequential selection: each pick re-keys the remaining
        // candidates by (color, folded edge signature, placed-adjacency
        // signature). The third key hashes a candidate's edges into the
        // already-built canonical prefix — *positions*, not input labels
        // — so WL-color ties are broken by how a relation attaches to
        // what has been placed so far, and each placement sharpens the
        // keys of the rest. Input labels only decide as the last resort,
        // when candidates are indistinguishable by every statistic and
        // placement the fingerprint can observe — there either pick
        // yields the same encoding, and the `RelId` fallback keeps the
        // canonical *mapping* deterministic for such interchangeable
        // relations.
        while !cands.is_empty() {
            let mut best = 0usize;
            let mut best_key = (
                colors[cands[0].0.index()],
                cands[0].1,
                placed_sig(query, cands[0].0, &canon, bpd),
                cands[0].0,
            );
            for (i, &(o, combined)) in cands.iter().enumerate().skip(1) {
                let key = (
                    colors[o.index()],
                    combined,
                    placed_sig(query, o, &canon, bpd),
                    o,
                );
                if key < best_key {
                    best = i;
                    best_key = key;
                }
            }
            let (o, _) = cands.swap_remove(best);
            canon[o.index()] = order.len() as u32;
            order.push(o);
        }
    }

    // Tokens: per-node cardinality buckets in canonical order, then the
    // sorted quantized edge list in canonical coordinates.
    let mut tokens: Vec<u64> = Vec::with_capacity(order.len() + 1);
    tokens.push(order.len() as u64);
    for &r in &order {
        tokens.push(zigzag(card_bucket[r.index()]));
    }
    let mut edge_tokens: Vec<[u64; 5]> = Vec::new();
    let mut seen_edges = std::collections::HashSet::new();
    for &r in &order {
        for &e in g.incident(r) {
            if !seen_edges.insert(e) {
                continue;
            }
            let edge = g.edge(e);
            let (ca, cb) = (canon[edge.a.index()], canon[edge.b.index()]);
            let (lo, lo_rel, hi_rel) = if ca <= cb {
                (ca, edge.a, edge.b)
            } else {
                (cb, edge.b, edge.a)
            };
            let hi = ca.max(cb);
            edge_tokens.push([
                lo as u64,
                hi as u64,
                zigzag(edge.selectivity_bucket(bpd)),
                zigzag(log_bucket(edge.distinct_on(lo_rel).unwrap_or(1.0), bpd)),
                zigzag(log_bucket(edge.distinct_on(hi_rel).unwrap_or(1.0), bpd)),
            ]);
        }
    }
    edge_tokens.sort_unstable();
    tokens.push(edge_tokens.len() as u64);
    for t in edge_tokens {
        tokens.extend_from_slice(&t);
    }
    (tokens, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn chain() -> Query {
        QueryBuilder::new()
            .relation("a", 1000)
            .relation("b", 50)
            .relation("c", 7000)
            .join("a", "b", 0.01)
            .join("b", "c", 0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let q = chain();
        let cfg = FingerprintConfig::default();
        let a = fingerprint(&q, &cfg);
        let b = fingerprint(&q, &cfg);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().digest(), b.fingerprint().digest());
    }

    #[test]
    fn canonical_mapping_is_a_permutation() {
        let q = chain();
        let f = fingerprint(&q, &FingerprintConfig::default());
        assert_eq!(f.n_relations(), 3);
        let mut seen = [false; 3];
        for c in 0..3u32 {
            let r = f.rehydrate_order(&[c]).unwrap()[0];
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
            assert_eq!(f.canonize_order(&[r]), vec![c]);
        }
    }

    #[test]
    fn rehydrate_rejects_out_of_range_indices() {
        let q = chain();
        let f = fingerprint(&q, &FingerprintConfig::default());
        assert!(f.rehydrate_order(&[0, 1, 7]).is_none());
    }

    #[test]
    fn different_structures_have_different_fingerprints() {
        let chain_q = chain();
        let star_q = QueryBuilder::new()
            .relation("a", 1000)
            .relation("b", 50)
            .relation("c", 7000)
            .join("a", "b", 0.01)
            .join("a", "c", 0.001)
            .build()
            .unwrap();
        let cfg = FingerprintConfig::default();
        // A 3-chain and a 3-star rooted at a 1000-tuple hub differ:
        // degrees (1,2,1) vs (2,1,1) attach to different card buckets.
        assert_ne!(
            fingerprint(&chain_q, &cfg).fingerprint(),
            fingerprint(&star_q, &cfg).fingerprint()
        );
    }

    #[test]
    fn coarser_buckets_collapse_more_queries() {
        // Statistics chosen so that every derived stat (cards, selectivity,
        // and the 1/sel-derived distinct counts) agrees at one bucket per
        // decade but the cardinalities split at 16 buckets per decade.
        let a = QueryBuilder::new()
            .relation("x", 1000)
            .relation("y", 50)
            .join("x", "y", 0.02)
            .build()
            .unwrap();
        let b = QueryBuilder::new()
            .relation("x", 1400)
            .relation("y", 55)
            .join("x", "y", 0.03)
            .build()
            .unwrap();
        let coarse = FingerprintConfig {
            buckets_per_decade: 1,
        };
        let fine = FingerprintConfig {
            buckets_per_decade: 16,
        };
        assert_eq!(
            fingerprint(&a, &coarse).fingerprint(),
            fingerprint(&b, &coarse).fingerprint()
        );
        assert_ne!(
            fingerprint(&a, &fine).fingerprint(),
            fingerprint(&b, &fine).fingerprint()
        );
    }
}
