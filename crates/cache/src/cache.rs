//! Sharded LRU plan cache.
//!
//! The serving-path store that lets the cold combinatorial search run
//! once per query equivalence class instead of once per request. Entries
//! are keyed by [`QueryFingerprint`] and hold the
//! winning join order in canonical coordinates plus its cost and the
//! producing method — everything a driver needs to rehydrate, re-validate,
//! and serve a plan without searching.
//!
//! # Concurrency
//!
//! The key space is split across `shards` independent LRU maps, each
//! behind its own `Mutex` — concurrent lookups with different fingerprint
//! digests almost never contend. Hit/miss/insert/eviction counters are
//! process-wide atomics, maintained outside the shard locks.
//!
//! # Capacity
//!
//! Both an entry count and an approximate byte budget are enforced,
//! per-shard (total capacity divided evenly). Inserting past either limit
//! evicts least-recently-used entries; an entry larger than a whole
//! shard's byte budget is refused outright (counted as an eviction).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fingerprint::QueryFingerprint;

/// One segment of a cached plan: a join order in canonical coordinates
/// plus its estimated cost at solve time.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSegment {
    /// The component's join order, as canonical relation indices.
    pub canon_order: Vec<u32>,
    /// Estimated cost of this segment when the entry was produced.
    pub cost: f64,
}

/// A cached optimization result, in canonical coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// Plan segments (one per join-graph component), in the assembly
    /// order the cold path chose.
    pub segments: Vec<CachedSegment>,
    /// Total plan cost at solve time (cross products included).
    pub total_cost: f64,
    /// Short name of the method that produced the plan (e.g. `"IAI"`).
    pub producer: &'static str,
}

impl CachedPlan {
    /// Approximate heap + inline footprint in bytes, for the byte budget.
    fn approx_bytes(&self, key: &QueryFingerprint) -> usize {
        let segs: usize = self
            .segments
            .iter()
            .map(|s| std::mem::size_of::<CachedSegment>() + s.canon_order.len() * 4)
            .sum();
        std::mem::size_of::<Node>() + segs + key.encoding_words() * 8
    }
}

/// Configuration for [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheConfig {
    /// Maximum resident entries across all shards (at least 1).
    pub max_entries: usize,
    /// Approximate maximum resident bytes across all shards.
    pub max_bytes: usize,
    /// Number of independent LRU shards (at least 1).
    pub shards: usize,
}

impl Default for PlanCacheConfig {
    /// 1024 entries, 8 MiB, 8 shards.
    fn default() -> Self {
        PlanCacheConfig {
            max_entries: 1024,
            max_bytes: 8 << 20,
            shards: 8,
        }
    }
}

impl PlanCacheConfig {
    /// A config with the given entry capacity and defaults otherwise.
    pub fn with_entries(max_entries: usize) -> Self {
        PlanCacheConfig {
            max_entries,
            ..Self::default()
        }
    }
}

/// Point-in-time counter snapshot, for stats endpoints and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (including replacements).
    pub inserts: u64,
    /// Entries evicted by capacity pressure (including refused inserts).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident.
    pub bytes: usize,
}

/// Index of the null slot (empty list / no link).
const NIL: usize = usize::MAX;

/// Slab node of one shard's intrusive LRU list.
struct Node {
    key: QueryFingerprint,
    plan: CachedPlan,
    bytes: usize,
    /// Toward most-recently-used.
    prev: usize,
    /// Toward least-recently-used.
    next: usize,
}

/// One shard: hash map + slab-backed LRU list.
struct Shard {
    map: HashMap<QueryFingerprint, usize>,
    slots: Vec<Option<Node>>,
    free: Vec<usize>,
    /// Most-recently-used slot, or [`NIL`].
    head: usize,
    /// Least-recently-used slot, or [`NIL`].
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn node(&self, i: usize) -> &Node {
        self.slots[i].as_ref().expect("linked slot is occupied")
    }

    fn node_mut(&mut self, i: usize) -> &mut Node {
        self.slots[i].as_mut().expect("linked slot is occupied")
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            nx => self.node_mut(nx).prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(i);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn remove_slot(&mut self, i: usize) -> Node {
        self.unlink(i);
        let node = self.slots[i].take().expect("removed slot was occupied");
        self.free.push(i);
        self.bytes -= node.bytes;
        node
    }

    /// Evict the least-recently-used entry; returns false on empty.
    fn evict_lru(&mut self) -> bool {
        if self.tail == NIL {
            return false;
        }
        let node = self.remove_slot(self.tail);
        self.map.remove(&node.key);
        true
    }
}

/// Sharded LRU cache from [`QueryFingerprint`] to [`CachedPlan`].
///
/// All methods take `&self`; the cache is meant to be shared across
/// serving threads (e.g. behind an `Arc` or borrowed by scoped threads).
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    entries_per_shard: usize,
    bytes_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("stats", &s)
            .finish()
    }
}

impl PlanCache {
    /// Create a cache with the given capacity split evenly across shards.
    pub fn new(config: PlanCacheConfig) -> Self {
        let shards = config.shards.max(1);
        let entries = config.max_entries.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            entries_per_shard: entries.div_ceil(shards),
            bytes_per_shard: config.max_bytes.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &QueryFingerprint) -> &Mutex<Shard> {
        // High bits of the digest: the low bits also steer the HashMap
        // within the shard, so reusing them would correlate bucket and
        // shard choice.
        let i = (key.digest() >> 32) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Look up `key`, promoting the entry to most-recently-used.
    pub fn get(&self, key: &QueryFingerprint) -> Option<CachedPlan> {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        match shard.map.get(key).copied() {
            Some(slot) => {
                shard.unlink(slot);
                shard.push_front(slot);
                let plan = shard.node(slot).plan.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) the entry for `key`, evicting LRU entries as
    /// needed to respect the shard's entry and byte budgets. An entry too
    /// large for the whole byte budget is refused (counted as one insert
    /// and one eviction).
    pub fn insert(&self, key: QueryFingerprint, plan: CachedPlan) {
        let bytes = plan.approx_bytes(&key);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if bytes > self.bytes_per_shard {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut evicted = 0u64;
        {
            let mut shard = self.shard_for(&key).lock().expect("cache shard poisoned");
            if let Some(slot) = shard.map.get(&key).copied() {
                let node = shard.remove_slot(slot);
                shard.map.remove(&node.key);
            }
            while shard.map.len() + 1 > self.entries_per_shard
                || shard.bytes + bytes > self.bytes_per_shard
            {
                if !shard.evict_lru() {
                    break;
                }
                evicted += 1;
            }
            let slot = match shard.free.pop() {
                Some(i) => i,
                None => {
                    shard.slots.push(None);
                    shard.slots.len() - 1
                }
            };
            shard.slots[slot] = Some(Node {
                key: key.clone(),
                plan,
                bytes,
                prev: NIL,
                next: NIL,
            });
            shard.bytes += bytes;
            shard.push_front(slot);
            shard.map.insert(key, slot);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Remove the entry for `key`, if present. Returns whether an entry
    /// was removed. Used by drivers to drop entries that failed validity
    /// re-check against the live catalog.
    pub fn invalidate(&self, key: &QueryFingerprint) -> bool {
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        match shard.map.remove(key) {
            Some(slot) => {
                shard.remove_slot(slot);
                drop(shard);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            *shard = Shard::new();
        }
    }

    /// Number of resident entries (sums shard sizes; a racy snapshot
    /// under concurrent mutation).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0usize, 0usize);
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::{fingerprint, FingerprintConfig};
    use ljqo_catalog::{Query, QueryBuilder};

    fn query(card: u64) -> Query {
        QueryBuilder::new()
            .relation("a", card)
            .relation("b", card + 17)
            .join("a", "b", 0.01)
            .build()
            .unwrap()
    }

    /// Distinct fingerprints at a fine bucketing (factor ~1.15 apart is
    /// always beyond one bucket width at 64 buckets per decade).
    fn keys(n: usize) -> Vec<QueryFingerprint> {
        let cfg = FingerprintConfig {
            buckets_per_decade: 64,
        };
        (0..n)
            .map(|i| {
                let card = (1000.0 * 1.2f64.powi(i as i32)) as u64;
                fingerprint(&query(card), &cfg).fingerprint().clone()
            })
            .collect()
    }

    fn plan(cost: f64) -> CachedPlan {
        CachedPlan {
            segments: vec![CachedSegment {
                canon_order: vec![0, 1],
                cost,
            }],
            total_cost: cost,
            producer: "II",
        }
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let k = keys(1).pop().unwrap();
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), plan(42.0));
        let got = cache.get(&k).expect("inserted entry is resident");
        assert_eq!(got.total_cost, 42.0);
        assert_eq!(got.producer, "II");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0);
    }

    #[test]
    fn replacement_keeps_one_entry() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let k = keys(1).pop().unwrap();
        cache.insert(k.clone(), plan(1.0));
        cache.insert(k.clone(), plan(2.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&k).unwrap().total_cost, 2.0);
    }

    #[test]
    fn entry_capacity_evicts_least_recently_used() {
        let cache = PlanCache::new(PlanCacheConfig {
            max_entries: 3,
            max_bytes: 1 << 20,
            shards: 1,
        });
        let ks = keys(4);
        for (i, k) in ks.iter().take(3).enumerate() {
            cache.insert(k.clone(), plan(i as f64));
        }
        // Touch k0 so k1 becomes the LRU victim.
        assert!(cache.get(&ks[0]).is_some());
        cache.insert(ks[3].clone(), plan(3.0));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&ks[0]).is_some());
        assert!(cache.get(&ks[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&ks[2]).is_some());
        assert!(cache.get(&ks[3]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_capacity_is_enforced() {
        let ks = keys(6);
        let one = plan(1.0).approx_bytes(&ks[0]);
        let cache = PlanCache::new(PlanCacheConfig {
            max_entries: 100,
            max_bytes: one * 2,
            shards: 1,
        });
        for k in &ks {
            cache.insert(k.clone(), plan(1.0));
        }
        let s = cache.stats();
        assert!(s.entries <= 2, "{} entries resident", s.entries);
        assert!(s.bytes <= one * 2 + one, "{} bytes resident", s.bytes);
        assert!(s.evictions >= 4);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let cache = PlanCache::new(PlanCacheConfig {
            max_entries: 10,
            max_bytes: 8,
            shards: 1,
        });
        let k = keys(1).pop().unwrap();
        cache.insert(k.clone(), plan(1.0));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_the_entry() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        let k = keys(1).pop().unwrap();
        cache.insert(k.clone(), plan(1.0));
        assert!(cache.invalidate(&k));
        assert!(!cache.invalidate(&k));
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = PlanCache::new(PlanCacheConfig::default());
        for k in keys(16) {
            cache.insert(k, plan(1.0));
        }
        assert_eq!(cache.len(), 16);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
    }

    /// Mixed-operation hammer across scoped threads. Enrolled in the CI
    /// ThreadSanitizer job (test filter: `hammer`); also asserts counter
    /// and occupancy invariants after the dust settles.
    #[test]
    fn concurrent_hammer_preserves_invariants() {
        let config = PlanCacheConfig {
            max_entries: 16,
            max_bytes: 1 << 14,
            shards: 4,
        };
        let cache = PlanCache::new(config);
        let ks = keys(24);
        let threads = 8usize;
        let ops_per_thread = 400u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                let ks = &ks;
                scope.spawn(move || {
                    // Thread-local splitmix stream; no shared RNG state.
                    let mut state = 0x9e37_79b9u64.wrapping_mul(t as u64 + 1);
                    let mut next = || {
                        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        let mut z = state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        z ^ (z >> 31)
                    };
                    for _ in 0..ops_per_thread {
                        let k = &ks[(next() % ks.len() as u64) as usize];
                        match next() % 4 {
                            0 | 1 => {
                                if let Some(p) = cache.get(k) {
                                    assert!(p.total_cost.is_finite());
                                }
                            }
                            2 => cache.insert(k.clone(), plan((next() % 1000) as f64)),
                            _ => {
                                cache.invalidate(k);
                            }
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        let total_ops = threads as u64 * ops_per_thread;
        assert!(s.hits + s.misses <= total_ops);
        assert!(s.entries <= 16);
        assert!(s.bytes <= 1 << 14);
        // Every resident entry is still retrievable and well-formed.
        for k in &ks {
            if let Some(p) = cache.get(k) {
                assert_eq!(p.segments.len(), 1);
            }
        }
    }
}
