//! Learned portfolio routing: a contextual UCB bandit over fingerprint
//! feature classes.
//!
//! The paper's central observation is that no single randomized method
//! (II / SA / AGI / KBZ-seeded II) dominates across query shapes — which
//! is why the parallel driver runs a heterogeneous *portfolio*. But a
//! uniform budget split wastes most of the budget on methods that
//! reliably lose for a given query class. This module closes the loop:
//!
//! * [`classify`] maps a query to a coarse, **relabel-invariant**
//!   [`QueryClass`] — graph-shape class, log₂-bucketed relation count,
//!   component count, and an edge-density bucket. These are the same
//!   structural quantities the fingerprint's WL color refinement
//!   consumes (degree multisets, component structure), coarsened so a
//!   class aggregates many fingerprints.
//! * [`BanditRouter`] keeps per-class, per-method reward statistics
//!   (normalized cost improvement at the granted budget, winner
//!   identity, unit spend) and emits a **budget-share vector** for the
//!   portfolio: every method keeps a mandatory ε-floor share and the
//!   UCB-best method receives the rest.
//!
//! # The never-worse contract
//!
//! Shares are uniform until a class has seen
//! [`RouterConfig::min_events`] outcomes, so a cold router is
//! *bit-identical* to the uniform portfolio. Once warm, every method
//! still receives at least `ε` of the budget (ε ≤ 1/K, so the boosted
//! method always holds at least its uniform share `1/K`). The portfolio
//! methods are anytime searches whose best-so-far is monotone
//! non-increasing in their budget share at a fixed seed, so whenever
//! the router's boosted method is the one that would win the uniform
//! split — which is exactly what the per-class winner statistics
//! converge to — the routed result is never worse than the uniform
//! result at equal total budget. The property suite
//! (`ljqo/tests/router_props.rs`) and the `routing` bench assert this
//! on seeded grids rather than trusting the argument.
//!
//! # Persistence
//!
//! Router state survives restarts via a small versioned text format
//! ([`BanditRouter::save`] / [`BanditRouter::load`]). Loading is
//! corruption-tolerant by contract: a truncated, garbled, or
//! version-bumped file (or one recorded for a different arm set) yields
//! a fresh uniform router with [`BanditRouter::resets`] incremented —
//! never an error, because routing is an optimization, not a
//! correctness dependency.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ljqo_catalog::{Query, RelId};

/// Version tag of the persisted state format. Bumping it invalidates
/// every existing state file (they reload as a counted reset).
pub const ROUTER_STATE_VERSION: u32 = 1;

/// Coarse structural shape of a join graph, from relabel-invariant
/// degree/edge counts alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeClass {
    /// Acyclic with maximum degree ≤ 2 (a path), or trivially small.
    Chain,
    /// Acyclic with one hub adjacent to every other relation.
    Star,
    /// Any other forest (snowflakes, general trees).
    Tree,
    /// Cyclic but sparse (average degree ≤ 3).
    SparseCyclic,
    /// Cyclic and dense (average degree > 3).
    DenseCyclic,
}

impl ShapeClass {
    /// Stable lower-case name, used in labels and the state file.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Chain => "chain",
            ShapeClass::Star => "star",
            ShapeClass::Tree => "tree",
            ShapeClass::SparseCyclic => "sparse",
            ShapeClass::DenseCyclic => "dense",
        }
    }

    fn parse(s: &str) -> Option<ShapeClass> {
        [
            ShapeClass::Chain,
            ShapeClass::Star,
            ShapeClass::Tree,
            ShapeClass::SparseCyclic,
            ShapeClass::DenseCyclic,
        ]
        .into_iter()
        .find(|c| c.name() == s)
    }
}

/// The router's context key: a coarse, relabel-invariant bucket of
/// queries expected to favor the same portfolio split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryClass {
    /// Structural shape of the join graph.
    pub shape: ShapeClass,
    /// `⌊log₂ N⌋` of the relation count.
    pub n_bucket: u8,
    /// Join-graph component count, saturated at 3.
    pub components: u8,
    /// `⌊2m/N⌋` (integer average degree), saturated at 3.
    pub density_bucket: u8,
}

impl QueryClass {
    /// Human-readable label, e.g. `star/n3/c1/d1` — used in `/stats`
    /// and logs. The state file stores the fields, not the label.
    pub fn label(&self) -> String {
        format!(
            "{}/n{}/c{}/d{}",
            self.shape.name(),
            self.n_bucket,
            self.components,
            self.density_bucket
        )
    }
}

/// Compute the [`QueryClass`] of a query. Every feature is a function
/// of the degree multiset, edge count, and component structure of the
/// join graph, so the class is invariant under relation relabeling by
/// construction (the property suite re-checks this with the same
/// permutation harness the fingerprint uses).
pub fn classify(query: &Query) -> QueryClass {
    let g = query.graph();
    let n = g.n_relations().max(1);
    let m = g.edges().len();
    let comps = g.components().len().max(1);
    let max_deg = (0..n).map(|i| g.degree(RelId(i as u32))).max().unwrap_or(0);
    // A forest has exactly n - comps edges; parallel edges push m above.
    let forest = m + comps <= n;
    let shape = if n <= 2 {
        ShapeClass::Chain
    } else if forest {
        if max_deg <= 2 {
            ShapeClass::Chain
        } else if max_deg == n - 1 {
            ShapeClass::Star
        } else {
            ShapeClass::Tree
        }
    } else if 2 * m <= 3 * n {
        ShapeClass::SparseCyclic
    } else {
        ShapeClass::DenseCyclic
    };
    QueryClass {
        shape,
        n_bucket: (usize::BITS - 1 - n.leading_zeros()) as u8,
        components: comps.min(3) as u8,
        density_bucket: ((2 * m) / n).min(3) as u8,
    }
}

/// Tuning knobs of the [`BanditRouter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Mandatory exploration floor: every method's budget share is at
    /// least `epsilon` once the router leaves uniform. Clamped to
    /// `[0, 1/K]` at share time, so the boosted method always keeps at
    /// least its uniform share `1/K` — the never-worse precondition.
    pub epsilon: f64,
    /// UCB exploration coefficient (`mean + c·√(ln T / nᵢ)`).
    pub ucb_c: f64,
    /// Outcomes a class must accumulate before its shares leave the
    /// uniform split. Below this the router is bit-identical to
    /// uniform sharding.
    pub min_events: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            epsilon: 0.125,
            ucb_c: 0.5,
            min_events: 8,
        }
    }
}

/// Per-class, per-method reward statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ArmStats {
    /// Outcomes observed for this arm.
    pulls: u64,
    /// Sum of normalized rewards in `[0, 1]`.
    reward_sum: f64,
    /// Outcomes where this arm produced the winning plan.
    wins: u64,
    /// Budget units this arm has consumed across its pulls.
    units: u64,
}

/// A contextual UCB bandit allocating portfolio budget shares per
/// [`QueryClass`]. Interior-mutable and `Sync`: one router is shared
/// process-wide by a serving daemon, updated online from every
/// portfolio outcome.
pub struct BanditRouter {
    config: RouterConfig,
    arms: Vec<String>,
    buckets: Mutex<BTreeMap<QueryClass, Vec<ArmStats>>>,
    resets: AtomicU64,
}

impl std::fmt::Debug for BanditRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BanditRouter")
            .field("arms", &self.arms)
            .field("classes", &self.buckets.lock().unwrap().len())
            .field("resets", &self.resets.load(Ordering::Relaxed))
            .finish()
    }
}

/// Point-in-time view of one class's statistics (for `/stats` and
/// tests). Vectors are indexed like the router's arm list.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSnapshot {
    /// The class key.
    pub class: QueryClass,
    /// `class.label()`, precomputed for display.
    pub label: String,
    /// Outcomes recorded for the class (max over arms).
    pub events: u64,
    /// Per-arm pull counts.
    pub pulls: Vec<u64>,
    /// Per-arm mean normalized reward (`0` before any pull).
    pub mean_reward: Vec<f64>,
    /// Per-arm win counts.
    pub wins: Vec<u64>,
    /// Per-arm budget units consumed.
    pub units: Vec<u64>,
    /// The share vector the router would emit for this class right now.
    pub shares: Vec<f64>,
}

/// Point-in-time view of the whole router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSnapshot {
    /// Arm labels, in share-vector order.
    pub arms: Vec<String>,
    /// Effective exploration floor.
    pub epsilon: f64,
    /// Times a state load degraded to uniform (corrupt/stale file).
    pub resets: u64,
    /// One entry per class seen, in deterministic class order.
    pub classes: Vec<ClassSnapshot>,
}

impl BanditRouter {
    /// A fresh router over the given arm labels (one per portfolio
    /// method, in rotation order).
    pub fn new(arms: &[&str], config: RouterConfig) -> Self {
        assert!(!arms.is_empty(), "router needs at least one arm");
        BanditRouter {
            config,
            arms: arms.iter().map(|s| s.to_string()).collect(),
            buckets: Mutex::new(BTreeMap::new()),
            resets: AtomicU64::new(0),
        }
    }

    /// Number of arms (portfolio methods).
    pub fn n_arms(&self) -> usize {
        self.arms.len()
    }

    /// Arm labels, in share-vector order.
    pub fn arms(&self) -> &[String] {
        &self.arms
    }

    /// The configuration this router runs with.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Times a [`BanditRouter::load`] degraded to uniform because the
    /// state file was unreadable, truncated, garbled, version-bumped,
    /// or recorded for a different arm set.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// The exploration floor actually applied: `epsilon` clamped to
    /// `[0, 1/K]` (so the boosted arm never drops below uniform).
    pub fn effective_epsilon(&self) -> f64 {
        let k = self.arms.len() as f64;
        self.config.epsilon.clamp(0.0, 1.0 / k)
    }

    /// The budget-share vector for `class`: uniform until the class
    /// has [`RouterConfig::min_events`] outcomes, then `ε` for every
    /// arm and `1 − (K−1)·ε` for the arm with the highest UCB score
    /// (ties broken toward the lowest arm index, mirroring the
    /// portfolio's lowest-worker-index tie-break). Deterministic in
    /// the recorded event sequence; always sums to 1 with every entry
    /// ≥ the effective ε.
    pub fn shares(&self, class: &QueryClass) -> Vec<f64> {
        let k = self.arms.len();
        let uniform = vec![1.0 / k as f64; k];
        let buckets = self.buckets.lock().unwrap();
        let Some(arms) = buckets.get(class) else {
            return uniform;
        };
        let events = arms.iter().map(|a| a.pulls).max().unwrap_or(0);
        if events < self.config.min_events {
            return uniform;
        }
        let top = self.top_arm(arms);
        let eps = self.effective_epsilon();
        let mut shares = vec![eps; k];
        shares[top] = 1.0 - eps * (k as f64 - 1.0);
        shares
    }

    /// UCB argmax over one class's arms; strict `>` breaks ties toward
    /// the lowest arm index.
    fn top_arm(&self, arms: &[ArmStats]) -> usize {
        let total: f64 = arms.iter().map(|a| a.pulls as f64).sum::<f64>().max(1.0);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, a) in arms.iter().enumerate() {
            let p = a.pulls.max(1) as f64;
            let mean = a.reward_sum / p;
            let bonus = self.config.ucb_c * (total.ln().max(0.0) / p).sqrt();
            let score = mean + bonus;
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Record one portfolio outcome for `class`.
    ///
    /// `arm_costs[i]` is arm `i`'s own best cost in the run (`None` if
    /// it produced no state); `arm_units[i]` its budget spend; `winner`
    /// the arm that produced the winning plan (`None` when an outside
    /// challenger such as CARDFREE won). Rewards are normalized per
    /// outcome: the best arm of the run scores 1, the worst 0, the
    /// rest linearly in between (all 1 when every arm tied), so
    /// classes with wildly different absolute costs are comparable.
    pub fn record_outcome(
        &self,
        class: &QueryClass,
        arm_costs: &[Option<f64>],
        arm_units: &[u64],
        winner: Option<usize>,
    ) {
        let k = self.arms.len();
        assert_eq!(arm_costs.len(), k, "one cost slot per arm");
        assert_eq!(arm_units.len(), k, "one unit slot per arm");
        let finite: Vec<f64> = arm_costs
            .iter()
            .flatten()
            .copied()
            .filter(|c| c.is_finite())
            .collect();
        if finite.is_empty() {
            return; // nothing observed; an all-panic run teaches nothing
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut buckets = self.buckets.lock().unwrap();
        let arms = buckets
            .entry(*class)
            .or_insert_with(|| vec![ArmStats::default(); k]);
        for i in 0..k {
            let Some(cost) = arm_costs[i].filter(|c| c.is_finite()) else {
                continue;
            };
            let reward = if hi > lo {
                (hi - cost) / (hi - lo)
            } else {
                1.0
            };
            arms[i].pulls += 1;
            arms[i].reward_sum += reward;
            arms[i].units += arm_units[i];
        }
        if let Some(w) = winner {
            if w < k {
                arms[w].wins += 1;
            }
        }
    }

    /// A deterministic point-in-time snapshot of every class.
    pub fn snapshot(&self) -> RouterSnapshot {
        let buckets = self.buckets.lock().unwrap();
        let classes = buckets
            .iter()
            .map(|(class, arms)| {
                let events = arms.iter().map(|a| a.pulls).max().unwrap_or(0);
                let shares = if events < self.config.min_events {
                    vec![1.0 / self.arms.len() as f64; self.arms.len()]
                } else {
                    let top = self.top_arm(arms);
                    let eps = self.effective_epsilon();
                    let mut s = vec![eps; self.arms.len()];
                    s[top] = 1.0 - eps * (self.arms.len() as f64 - 1.0);
                    s
                };
                ClassSnapshot {
                    class: *class,
                    label: class.label(),
                    events,
                    pulls: arms.iter().map(|a| a.pulls).collect(),
                    mean_reward: arms
                        .iter()
                        .map(|a| {
                            if a.pulls == 0 {
                                0.0
                            } else {
                                a.reward_sum / a.pulls as f64
                            }
                        })
                        .collect(),
                    wins: arms.iter().map(|a| a.wins).collect(),
                    units: arms.iter().map(|a| a.units).collect(),
                    shares,
                }
            })
            .collect();
        RouterSnapshot {
            arms: self.arms.clone(),
            epsilon: self.effective_epsilon(),
            resets: self.resets(),
            classes,
        }
    }

    // --- Persistence -----------------------------------------------------

    /// Serialize the router state to `path` (versioned text format).
    /// The write goes through a sibling temp file + rename so a crash
    /// mid-save leaves the previous state intact.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        out.push_str(&format!("ljqo-router v{ROUTER_STATE_VERSION}\n"));
        out.push_str(&format!("arms {}\n", self.arms.join(" ")));
        out.push_str(&format!("resets {}\n", self.resets()));
        let buckets = self.buckets.lock().unwrap();
        out.push_str(&format!("classes {}\n", buckets.len()));
        for (class, arms) in buckets.iter() {
            out.push_str(&format!(
                "class {} {} {} {}",
                class.shape.name(),
                class.n_bucket,
                class.components,
                class.density_bucket
            ));
            for a in arms {
                // `{:?}` prints the shortest f64 that round-trips, so a
                // save/load cycle is a bitwise identity.
                out.push_str(&format!(
                    " {} {:?} {} {}",
                    a.pulls, a.reward_sum, a.wins, a.units
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("end {}\n", buckets.len()));
        drop(buckets);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }

    /// Load router state from `path` for the given arm set.
    ///
    /// *Missing file*: a fresh uniform router (not a reset — first boot
    /// is normal). *Unreadable, truncated, garbled, version-bumped, or
    /// arm-mismatched file*: a fresh uniform router with
    /// [`BanditRouter::resets`] set to the persisted count plus one
    /// when recoverable, else one — never an error.
    pub fn load(path: &Path, arms: &[&str], config: RouterConfig) -> BanditRouter {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return BanditRouter::new(arms, config);
            }
            Err(_) => {
                let r = BanditRouter::new(arms, config);
                r.resets.store(1, Ordering::Relaxed);
                return r;
            }
        };
        match Self::parse_state(&text, arms, config) {
            Some(router) => router,
            None => {
                // Corrupt in some way; preserve the old reset count when
                // the header was still readable so operators see the
                // cumulative figure.
                let prior = Self::salvage_resets(&text).unwrap_or(0);
                let r = BanditRouter::new(arms, config);
                r.resets.store(prior + 1, Ordering::Relaxed);
                r
            }
        }
    }

    /// Best-effort read of the `resets` header from a corrupt file.
    fn salvage_resets(text: &str) -> Option<u64> {
        for line in text.lines().take(4) {
            if let Some(rest) = line.strip_prefix("resets ") {
                return rest.trim().parse().ok();
            }
        }
        None
    }

    /// Strict parse of the state format; any anomaly returns `None`.
    fn parse_state(text: &str, arms: &[&str], config: RouterConfig) -> Option<BanditRouter> {
        let mut lines = text.lines();
        let header = lines.next()?;
        if header != format!("ljqo-router v{ROUTER_STATE_VERSION}") {
            return None;
        }
        let arms_line = lines.next()?.strip_prefix("arms ")?;
        let file_arms: Vec<&str> = arms_line.split_whitespace().collect();
        if file_arms != arms {
            return None;
        }
        let resets: u64 = lines.next()?.strip_prefix("resets ")?.trim().parse().ok()?;
        let n_classes: usize = lines
            .next()?
            .strip_prefix("classes ")?
            .trim()
            .parse()
            .ok()?;
        let k = arms.len();
        let mut buckets = BTreeMap::new();
        for _ in 0..n_classes {
            let line = lines.next()?;
            let mut tok = line.strip_prefix("class ")?.split_whitespace();
            let class = QueryClass {
                shape: ShapeClass::parse(tok.next()?)?,
                n_bucket: tok.next()?.parse().ok()?,
                components: tok.next()?.parse().ok()?,
                density_bucket: tok.next()?.parse().ok()?,
            };
            let mut stats = Vec::with_capacity(k);
            for _ in 0..k {
                stats.push(ArmStats {
                    pulls: tok.next()?.parse().ok()?,
                    reward_sum: tok.next()?.parse().ok()?,
                    wins: tok.next()?.parse().ok()?,
                    units: tok.next()?.parse().ok()?,
                });
            }
            if tok.next().is_some() {
                return None; // trailing junk on the class line
            }
            if buckets.insert(class, stats).is_some() {
                return None; // duplicate class
            }
        }
        // The trailer re-states the class count: a file truncated at a
        // line boundary (which parses cleanly line-by-line) still fails
        // here.
        if lines.next()? != format!("end {n_classes}") {
            return None;
        }
        if lines.next().is_some() {
            return None;
        }
        let router = BanditRouter::new(arms, config);
        router.resets.store(resets, Ordering::Relaxed);
        *router.buckets.lock().unwrap() = buckets;
        Some(router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{JoinEdge, Query, Relation};

    fn query_of(n: usize, edges: &[(u32, u32)]) -> Query {
        let relations: Vec<Relation> = (0..n)
            .map(|i| Relation::new(format!("r{i}"), 1000 + i as u64))
            .collect();
        let edges: Vec<JoinEdge> = edges
            .iter()
            .map(|&(a, b)| JoinEdge::new(a, b, 0.01, 10.0, 10.0))
            .collect();
        Query::new(relations, edges).unwrap()
    }

    #[test]
    fn classify_separates_the_basic_shapes() {
        let chain = query_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let star = query_of(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let tree = query_of(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (4, 5)]);
        let cycle = query_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(classify(&chain).shape, ShapeClass::Chain);
        assert_eq!(classify(&star).shape, ShapeClass::Star);
        assert_eq!(classify(&tree).shape, ShapeClass::Tree);
        assert_eq!(classify(&cycle).shape, ShapeClass::SparseCyclic);
        assert_eq!(classify(&chain).n_bucket, 2); // ⌊log₂ 5⌋
        assert_eq!(classify(&chain).components, 1);
    }

    #[test]
    fn shares_stay_uniform_until_min_events_then_boost_the_best_arm() {
        let r = BanditRouter::new(&["II", "SA", "AGI", "KBI"], RouterConfig::default());
        let class = QueryClass {
            shape: ShapeClass::Star,
            n_bucket: 3,
            components: 1,
            density_bucket: 1,
        };
        assert_eq!(r.shares(&class), vec![0.25; 4]);
        // Arm 2 (AGI) consistently wins.
        for _ in 0..8 {
            r.record_outcome(
                &class,
                &[Some(100.0), Some(90.0), Some(10.0), Some(80.0)],
                &[25, 25, 25, 25],
                Some(2),
            );
        }
        let shares = r.shares(&class);
        assert_eq!(shares[2], 1.0 - 3.0 * 0.125);
        assert_eq!(shares[0], 0.125);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // A different class stays uniform.
        let other = QueryClass {
            shape: ShapeClass::Chain,
            ..class
        };
        assert_eq!(r.shares(&other), vec![0.25; 4]);
    }

    #[test]
    fn epsilon_is_clamped_so_the_boosted_arm_keeps_its_uniform_share() {
        let config = RouterConfig {
            epsilon: 0.9, // nonsense; must clamp to 1/K
            ..RouterConfig::default()
        };
        let r = BanditRouter::new(&["II", "SA"], config);
        assert_eq!(r.effective_epsilon(), 0.5);
        let class = classify(&query_of(4, &[(0, 1), (1, 2), (2, 3)]));
        for _ in 0..8 {
            r.record_outcome(&class, &[Some(1.0), Some(2.0)], &[10, 10], Some(0));
        }
        // Clamped ε = 1/K means the "boost" degenerates to uniform —
        // the router can never starve the best-known method.
        assert_eq!(r.shares(&class), vec![0.5, 0.5]);
    }

    #[test]
    fn ties_break_toward_the_lowest_arm_index() {
        let r = BanditRouter::new(&["II", "SA", "AGI"], RouterConfig::default());
        let class = classify(&query_of(4, &[(0, 1), (1, 2), (2, 3)]));
        for _ in 0..8 {
            r.record_outcome(
                &class,
                &[Some(5.0), Some(5.0), Some(5.0)],
                &[10, 10, 10],
                Some(0),
            );
        }
        let shares = r.shares(&class);
        assert!(shares[0] > shares[1]);
        assert_eq!(shares[1], shares[2]);
    }

    #[test]
    fn all_panic_outcomes_teach_nothing() {
        let r = BanditRouter::new(&["II", "SA"], RouterConfig::default());
        let class = classify(&query_of(3, &[(0, 1), (1, 2)]));
        r.record_outcome(&class, &[None, None], &[0, 0], None);
        assert!(r.snapshot().classes.is_empty());
    }
}
