//! # ljqo-cache — plan-cache serving layer
//!
//! Production serving support for the LJQO optimizer: once the
//! combinatorial search (II / SA / IAI, see `ljqo-opt`) has paid the cold
//! cost of ordering a large join query, this crate lets every subsequent
//! structurally-equivalent query reuse that order instead of searching
//! again.
//!
//! Two pieces:
//!
//! * [`fingerprint()`](fn@fingerprint) — a canonical [`QueryFingerprint`] for a
//!   [`Query`](ljqo_catalog::Query), invariant under relation relabeling
//!   (canonical traversal seeded by Weisfeiler–Lehman color refinement)
//!   and deliberately coarse on statistics (log-scale bucketing via
//!   [`ljqo_catalog::quant`]), so "the same query shape with near-equal
//!   statistics" maps to one key.
//! * [`cache`] — a sharded LRU [`PlanCache`] from fingerprint to the
//!   winning join order (in canonical coordinates), its cost, and the
//!   producing method, with entry + byte capacity and atomic hit/miss
//!   counters.
//!
//! * [`router`] — a contextual UCB bandit over coarse fingerprint
//!   feature classes that learns per-class portfolio budget shares
//!   online, with a mandatory ε exploration floor and corruption-
//!   tolerant persistence.
//!
//! Driver integration (validity re-check against the live catalog, batch
//! dedup, fall-through to the cold path) lives in `ljqo-core`; this crate
//! stays dependency-light so anything that can see a catalog can share a
//! cache.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod fingerprint;
pub mod router;

pub use cache::{CacheStats, CachedPlan, CachedSegment, PlanCache, PlanCacheConfig};
pub use fingerprint::{fingerprint, FingerprintConfig, Fingerprinted, QueryFingerprint};
pub use router::{classify, BanditRouter, QueryClass, RouterConfig, ShapeClass};
