//! Property tests for the plan layer over arbitrary random connected
//! graphs (built directly, independent of the workload generator).
//! Implemented as seeded-RNG loops: the build is offline, so no
//! proptest — every case is reproducible from its printed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{JoinEdge, JoinGraph, RelId};
use ljqo_plan::validity::{first_invalid_position, is_valid};
use ljqo_plan::{random_valid_order, JoinOrder, JoinTree, Move, MoveGenerator, MoveSet};

const CASES: u64 = 64;

/// A connected graph (random spanning tree + extra edges).
fn arb_connected(rng: &mut SmallRng) -> JoinGraph {
    let n = rng.gen_range(3usize..14);
    let extra = rng.gen_range(0usize..6);
    let mut edges = Vec::new();
    for i in 1..n {
        let t = rng.gen_range(0..i);
        edges.push(JoinEdge::from_distincts(
            t as u32,
            i as u32,
            rng.gen_range(1.0..50.0),
            rng.gen_range(1.0..50.0),
        ));
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push(JoinEdge::from_distincts(
                a as u32,
                b as u32,
                rng.gen_range(1.0..50.0),
                rng.gen_range(1.0..50.0),
            ));
        }
    }
    JoinGraph::new(n, edges)
}

fn component_of(g: &JoinGraph) -> Vec<RelId> {
    (0..g.n_relations() as u32).map(RelId).collect()
}

/// `first_invalid_position` and `is_valid` agree, and truncating at
/// the first invalid position yields a valid prefix.
#[test]
fn invalid_position_consistency() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0001 ^ case);
        let g = arb_connected(&mut rng);
        let comp = component_of(&g);
        let mut order = random_valid_order(&g, &comp, &mut rng);
        // Scramble with a random (possibly invalidating) swap.
        let a = rng.gen_range(0..order.len());
        let b = rng.gen_range(0..order.len());
        order.rels_mut().swap(a, b);
        match first_invalid_position(&g, order.rels()) {
            None => assert!(is_valid(&g, order.rels()), "case {case}"),
            Some(p) => {
                assert!(!is_valid(&g, order.rels()), "case {case}");
                assert!(p >= 1, "case {case}");
                assert!(
                    is_valid(&g, &order.rels()[..p]),
                    "case {case}: prefix before p must be valid"
                );
                assert!(!is_valid(&g, &order.rels()[..=p]), "case {case}");
            }
        }
    }
}

/// Valid moves compose: applying a sequence of proposed moves and then
/// undoing them in reverse restores the original order.
#[test]
fn move_sequences_undo_in_reverse() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0002 ^ case);
        let g = arb_connected(&mut rng);
        let comp = component_of(&g);
        let mut order = random_valid_order(&g, &comp, &mut rng);
        let original = order.clone();
        let mut gen = MoveGenerator::new(g.n_relations(), MoveSet::default());
        let mut applied: Vec<Move> = Vec::new();
        for _ in 0..12 {
            if let Some(mv) = gen.propose(&g, &mut order, &mut rng) {
                applied.push(mv);
            }
        }
        for mv in applied.iter().rev() {
            mv.undo(&mut order);
        }
        assert_eq!(order, original, "case {case}");
    }
}

/// A join order and its tree round-trip.
#[test]
fn tree_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0003 ^ case);
        let g = arb_connected(&mut rng);
        let comp = component_of(&g);
        let order = random_valid_order(&g, &comp, &mut rng);
        let tree: JoinTree = order.to_tree();
        assert_eq!(tree.n_leaves(), order.len(), "case {case}");
        assert_eq!(JoinOrder::new(tree.order()), order, "case {case}");
    }
}

/// The inverse of the inverse is the original move, and apply∘undo is
/// the identity for arbitrary (not just proposed) moves.
#[test]
fn move_inverse_involution() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0004 ^ case);
        let len = rng.gen_range(2usize..12);
        let pick: u64 = rng.gen_range(0u64..u64::MAX);
        let i = rng.gen_range(0..len);
        let mut j = rng.gen_range(0..len - 1);
        if j >= i {
            j += 1;
        }
        let mv = match pick % 3 {
            0 => Move::Swap {
                i: i.min(j),
                j: i.max(j),
            },
            1 => Move::Reinsert { from: i, to: j },
            _ => {
                if len >= 3 {
                    let mut k = rng.gen_range(0..len - 2);
                    for bound in [i.min(j), i.max(j)] {
                        if k >= bound {
                            k += 1;
                        }
                    }
                    Move::ThreeCycle { i, j, k }
                } else {
                    Move::Swap {
                        i: i.min(j),
                        j: i.max(j),
                    }
                }
            }
        };
        assert_eq!(mv.inverse().inverse(), mv, "case {case}");
        let mut order = JoinOrder::new((0..len as u32).map(RelId).collect());
        let original = order.clone();
        mv.apply(&mut order);
        mv.undo(&mut order);
        assert_eq!(order, original, "case {case}");
    }
}
