//! Property tests for the plan layer over arbitrary random connected
//! graphs (built directly, independent of the workload generator).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_catalog::{JoinEdge, JoinGraph, RelId};
use ljqo_plan::validity::{first_invalid_position, is_valid};
use ljqo_plan::{random_valid_order, JoinOrder, JoinTree, Move, MoveGenerator, MoveSet};

/// Strategy: a connected graph (random spanning tree + extra edges).
fn arb_connected() -> impl Strategy<Value = JoinGraph> {
    (3usize..14, any::<u64>(), 0usize..6).prop_map(|(n, seed, extra)| {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 1..n {
            let t = rng.gen_range(0..i);
            edges.push(JoinEdge::from_distincts(
                t as u32,
                i as u32,
                rng.gen_range(1.0..50.0),
                rng.gen_range(1.0..50.0),
            ));
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push(JoinEdge::from_distincts(
                    a as u32,
                    b as u32,
                    rng.gen_range(1.0..50.0),
                    rng.gen_range(1.0..50.0),
                ));
            }
        }
        JoinGraph::new(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `first_invalid_position` and `is_valid` agree, and truncating at
    /// the first invalid position yields a valid prefix.
    #[test]
    fn invalid_position_consistency(g in arb_connected(), seed in any::<u64>(),
                                    i in any::<prop::sample::Index>(),
                                    j in any::<prop::sample::Index>()) {
        let comp: Vec<RelId> = (0..g.n_relations() as u32).map(RelId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order = random_valid_order(&g, &comp, &mut rng);
        // Scramble with a random (possibly invalidating) swap.
        let (a, b) = (i.index(order.len()), j.index(order.len()));
        order.rels_mut().swap(a, b);
        match first_invalid_position(&g, order.rels()) {
            None => prop_assert!(is_valid(&g, order.rels())),
            Some(p) => {
                prop_assert!(!is_valid(&g, order.rels()));
                prop_assert!(p >= 1);
                prop_assert!(is_valid(&g, &order.rels()[..p]), "prefix before p must be valid");
                prop_assert!(!is_valid(&g, &order.rels()[..=p]));
            }
        }
    }

    /// Valid moves compose: applying a sequence of proposed moves and then
    /// undoing them in reverse restores the original order.
    #[test]
    fn move_sequences_undo_in_reverse(g in arb_connected(), seed in any::<u64>()) {
        let comp: Vec<RelId> = (0..g.n_relations() as u32).map(RelId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order = random_valid_order(&g, &comp, &mut rng);
        let original = order.clone();
        let mut gen = MoveGenerator::new(g.n_relations(), MoveSet::default());
        let mut applied: Vec<Move> = Vec::new();
        for _ in 0..12 {
            if let Some(mv) = gen.propose(&g, &mut order, &mut rng) {
                applied.push(mv);
            }
        }
        for mv in applied.iter().rev() {
            mv.undo(&mut order);
        }
        prop_assert_eq!(order, original);
    }

    /// A join order and its tree round-trip.
    #[test]
    fn tree_roundtrip(g in arb_connected(), seed in any::<u64>()) {
        let comp: Vec<RelId> = (0..g.n_relations() as u32).map(RelId).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let order = random_valid_order(&g, &comp, &mut rng);
        let tree: JoinTree = order.to_tree();
        prop_assert_eq!(tree.n_leaves(), order.len());
        prop_assert_eq!(JoinOrder::new(tree.order()), order);
    }

    /// The inverse of the inverse is the original move, and apply∘undo is
    /// the identity for arbitrary (not just proposed) moves.
    #[test]
    fn move_inverse_involution(len in 2usize..12, pick in any::<u64>()) {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(pick);
        let i = rng.gen_range(0..len);
        let mut j = rng.gen_range(0..len - 1);
        if j >= i { j += 1; }
        let mv = match pick % 3 {
            0 => Move::Swap { i: i.min(j), j: i.max(j) },
            1 => Move::Reinsert { from: i, to: j },
            _ => {
                if len >= 3 {
                    let mut k = rng.gen_range(0..len - 2);
                    for bound in [i.min(j), i.max(j)] {
                        if k >= bound { k += 1; }
                    }
                    Move::ThreeCycle { i, j, k }
                } else {
                    Move::Swap { i: i.min(j), j: i.max(j) }
                }
            }
        };
        prop_assert_eq!(mv.inverse().inverse(), mv);
        let mut order = JoinOrder::new((0..len as u32).map(RelId).collect());
        let original = order.clone();
        mv.apply(&mut order);
        mv.undo(&mut order);
        prop_assert_eq!(order, original);
    }
}
