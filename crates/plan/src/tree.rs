//! Explicit join trees for display and explanation.

use std::fmt;

use ljqo_catalog::{Query, RelId};

/// An outer linear (left-deep) join tree.
///
/// Each join has the running result as the *outer* operand and a base
/// relation as the *inner* operand — the shape the paper restricts its
/// search to. The tree form is only used for presentation; all search and
/// costing works on the permutation form ([`crate::JoinOrder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A base relation scan.
    Leaf(RelId),
    /// A join of an outer subtree with an inner base relation.
    Join {
        /// The outer operand (intermediate result).
        outer: Box<JoinTree>,
        /// The inner operand (always a base relation).
        inner: RelId,
    },
}

impl JoinTree {
    /// Build the left-deep tree for a relation sequence.
    ///
    /// Panics on an empty sequence.
    pub fn left_deep(rels: &[RelId]) -> Self {
        let (&first, rest) = rels.split_first().expect("empty join order");
        let mut tree = JoinTree::Leaf(first);
        for &r in rest {
            tree = JoinTree::Join {
                outer: Box::new(tree),
                inner: r,
            };
        }
        tree
    }

    /// Number of base relations in the tree.
    pub fn n_leaves(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Join { outer, .. } => outer.n_leaves() + 1,
        }
    }

    /// The relations in join order (leftmost first).
    pub fn order(&self) -> Vec<RelId> {
        match self {
            JoinTree::Leaf(r) => vec![*r],
            JoinTree::Join { outer, inner } => {
                let mut v = outer.order();
                v.push(*inner);
                v
            }
        }
    }

    /// Multi-line rendering with relation names from `query`, in the
    /// conventional operator-tree layout (root first, children indented).
    ///
    /// Runs in `O(N + E)`: the set of relations placed below each join is
    /// threaded down the recursion as a mutable membership slice instead of
    /// being re-derived per level via [`JoinTree::order`] (which made
    /// `explain` quadratic in the number of relations).
    pub fn explain(&self, query: &Query) -> String {
        let mut out = String::new();
        let mut placed = vec![false; query.n_relations()];
        self.mark_leaves(&mut placed);
        self.explain_into(query, 0, &mut placed, &mut out);
        out
    }

    /// Mark every base relation of this subtree in `placed`.
    fn mark_leaves(&self, placed: &mut [bool]) {
        match self {
            JoinTree::Leaf(r) => placed[r.index()] = true,
            JoinTree::Join { outer, inner } => {
                outer.mark_leaves(placed);
                placed[inner.index()] = true;
            }
        }
    }

    /// On entry, `placed` holds exactly the relations of this subtree; each
    /// join removes its inner relation before testing whether the remaining
    /// (outer) set joins with it, so the joined/cross-product decision
    /// costs `O(degree(inner))` instead of a fresh `order()` walk.
    fn explain_into(&self, query: &Query, depth: usize, placed: &mut [bool], out: &mut String) {
        use fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            JoinTree::Leaf(r) => {
                let rel = query.relation(*r);
                let _ = writeln!(
                    out,
                    "{pad}Scan {} (card={})",
                    rel.name,
                    rel.cardinality() as u64
                );
            }
            JoinTree::Join { outer, inner } => {
                placed[inner.index()] = false;
                let graph = query.graph();
                let joined = graph.incident(*inner).iter().any(|&eid| {
                    graph
                        .edge(eid)
                        .other(*inner)
                        .is_some_and(|o| placed[o.index()])
                });
                let op = if joined { "HashJoin" } else { "CrossProduct" };
                let _ = writeln!(out, "{pad}{op} (inner={})", query.relation(*inner).name);
                outer.explain_into(query, depth + 1, placed, out);
                let _ = writeln!(
                    out,
                    "{pad}  Scan {} (card={})",
                    query.relation(*inner).name,
                    query.cardinality(*inner) as u64
                );
            }
        }
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Leaf(r) => write!(f, "{r}"),
            JoinTree::Join { outer, inner } => write!(f, "({outer} ⋈ {inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn left_deep_shape() {
        let t = JoinTree::left_deep(&ids(&[0, 1, 2]));
        assert_eq!(t.to_string(), "((R0 ⋈ R1) ⋈ R2)");
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.order(), ids(&[0, 1, 2]));
    }

    #[test]
    fn single_leaf() {
        let t = JoinTree::left_deep(&ids(&[4]));
        assert_eq!(t, JoinTree::Leaf(RelId(4)));
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn explain_output_is_pinned_with_cross_product() {
        // Regression for the placed-set threading rewrite of
        // `explain_into`: the output must be byte-identical to what the
        // old per-level `order()` re-derivation produced, including the
        // cross-product classification for the unjoined relation.
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        let t = JoinTree::left_deep(&ids(&[0, 1, 2]));
        let expected = "CrossProduct (inner=c)\n\
                        \x20 HashJoin (inner=b)\n\
                        \x20   Scan a (card=10)\n\
                        \x20   Scan b (card=20)\n\
                        \x20 Scan c (card=30)\n";
        assert_eq!(t.explain(&q), expected);
    }

    #[test]
    fn explain_marks_cross_products() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        let t = JoinTree::left_deep(&ids(&[0, 1, 2]));
        let plan = t.explain(&q);
        assert!(plan.contains("HashJoin (inner=b)"));
        assert!(plan.contains("CrossProduct (inner=c)"));
        assert!(plan.contains("Scan a (card=10)"));
    }
}
