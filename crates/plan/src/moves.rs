//! The move set: perturbations between adjacent states.
//!
//! Swami & Gupta (SIGMOD 1988) search the valid join-tree space with random
//! perturbations of the permutation. We implement a configurable move set:
//! adjacent swaps, arbitrary swaps, 3-cycles, and single-relation
//! reinsertions, each chosen with a configurable probability, and each
//! filtered so that only *valid* neighbors (no cross products) are
//! produced. The default is SG88-style swaps only. Two states are adjacent
//! when one move transforms one into the other.

use std::sync::Arc;

use rand::Rng;

use ljqo_catalog::{CompiledQuery, JoinGraph, RelId};

use crate::order::JoinOrder;
use crate::validity::{BitsetChecker, ValidityChecker};

/// The kinds of perturbation in the move set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveKind {
    /// Swap two neighboring positions.
    AdjacentSwap,
    /// Swap two arbitrary positions.
    Swap,
    /// Rotate the relations at three positions.
    ThreeCycle,
    /// Remove one relation and reinsert it elsewhere.
    Reinsert,
}

/// A concrete, reversible perturbation of a [`JoinOrder`].
///
/// # Example
///
/// ```
/// use ljqo_catalog::RelId;
/// use ljqo_plan::{JoinOrder, Move};
///
/// let mut order = JoinOrder::new(vec![RelId(0), RelId(1), RelId(2), RelId(3)]);
/// let mv = Move::Reinsert { from: 3, to: 1 };
/// mv.apply(&mut order);
/// assert_eq!(order.rels(), &[RelId(0), RelId(3), RelId(1), RelId(2)]);
///
/// // Moves are reversible, and `dest` tracks where each position went.
/// assert_eq!(mv.dest(3), 1);
/// mv.undo(&mut order);
/// assert_eq!(order.rels(), &[RelId(0), RelId(1), RelId(2), RelId(3)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Exchange positions `i` and `j`.
    Swap {
        /// First position.
        i: usize,
        /// Second position.
        j: usize,
    },
    /// Rotate: the relation at `i` moves to `j`, `j`'s to `k`, `k`'s to `i`.
    ThreeCycle {
        /// First position.
        i: usize,
        /// Second position.
        j: usize,
        /// Third position.
        k: usize,
    },
    /// Remove the relation at `from` and reinsert it at `to`.
    Reinsert {
        /// Source position.
        from: usize,
        /// Destination position (in the resulting order).
        to: usize,
    },
}

impl Move {
    /// Apply the move in place.
    pub fn apply(&self, order: &mut JoinOrder) {
        match *self {
            Move::Swap { i, j } => order.rels_mut().swap(i, j),
            Move::ThreeCycle { i, j, k } => {
                // i -> j -> k -> i
                let rels = order.rels_mut();
                let tmp = rels[k];
                rels[k] = rels[j];
                rels[j] = rels[i];
                rels[i] = tmp;
            }
            Move::Reinsert { from, to } => order.reinsert(from, to),
        }
    }

    /// Undo the move (apply the inverse).
    pub fn undo(&self, order: &mut JoinOrder) {
        self.inverse().apply(order);
    }

    /// The inverse move.
    pub fn inverse(&self) -> Move {
        match *self {
            Move::Swap { i, j } => Move::Swap { i, j },
            Move::ThreeCycle { i, j, k } => Move::ThreeCycle { i: k, j, k: i },
            Move::Reinsert { from, to } => Move::Reinsert { from: to, to: from },
        }
    }

    /// The first (lowest) position whose relation can change.
    ///
    /// Positions before `first_touched()` hold exactly the same relations
    /// before and after the move, which is what makes incremental
    /// (prefix-memoized) cost evaluation possible: the cost of the prefix
    /// `[0, first_touched())` is unaffected by the move.
    pub fn first_touched(&self) -> usize {
        match *self {
            Move::Swap { i, j } => i.min(j),
            Move::ThreeCycle { i, j, k } => i.min(j).min(k),
            Move::Reinsert { from, to } => from.min(to),
        }
    }

    /// The last (highest) position whose relation can change.
    ///
    /// Every move permutes relations only within the *window*
    /// `[first_touched(), last_touched()]`; positions after the window
    /// keep both their relation and — because the set of earlier
    /// relations is unchanged — their join statistics.
    pub fn last_touched(&self) -> usize {
        match *self {
            Move::Swap { i, j } => i.max(j),
            Move::ThreeCycle { i, j, k } => i.max(j).max(k),
            Move::Reinsert { from, to } => from.max(to),
        }
    }

    /// Where the relation at pre-move position `pos` ends up after the
    /// move: `applied[dest(pos)] == original[pos]`.
    ///
    /// Positions outside the move's window map to themselves, so this
    /// doubles as an O(1) "position in the perturbed order" oracle for
    /// incremental evaluators that keep a position index of the
    /// *unperturbed* order.
    pub fn dest(&self, pos: usize) -> usize {
        match *self {
            Move::Swap { i, j } => {
                if pos == i {
                    j
                } else if pos == j {
                    i
                } else {
                    pos
                }
            }
            // apply() rotates i -> j -> k -> i.
            Move::ThreeCycle { i, j, k } => {
                if pos == i {
                    j
                } else if pos == j {
                    k
                } else if pos == k {
                    i
                } else {
                    pos
                }
            }
            Move::Reinsert { from, to } => {
                if pos == from {
                    to
                } else {
                    // Removal at `from` shifts later positions down one;
                    // insertion at `to` shifts positions at or after it up.
                    let mut p = pos;
                    if pos > from {
                        p -= 1;
                    }
                    if p >= to {
                        p += 1;
                    }
                    p
                }
            }
        }
    }

    /// All swap moves over an order of length `len`, for exhaustive
    /// neighborhood enumeration in tests and the DP validation harness.
    pub fn all_swaps(len: usize) -> impl Iterator<Item = Move> {
        (0..len).flat_map(move |i| (i + 1..len).map(move |j| Move::Swap { i, j }))
    }
}

/// Probability weights over [`MoveKind`]s.
///
/// The default follows SG88's simple perturbation scheme: swaps only
/// (mostly arbitrary, some adjacent). The richer 3-cycle and reinsertion
/// moves are available as an *extension* — they make iterative improvement
/// markedly stronger, which also flattens the differences the paper
/// observes between methods; the `ablation_moves` bench quantifies this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveSet {
    /// Weight of adjacent swaps.
    pub adjacent_swap: f64,
    /// Weight of arbitrary swaps.
    pub swap: f64,
    /// Weight of 3-cycles.
    pub three_cycle: f64,
    /// Weight of reinsertions.
    pub reinsert: f64,
}

impl Default for MoveSet {
    fn default() -> Self {
        MoveSet {
            adjacent_swap: 0.3,
            swap: 0.7,
            three_cycle: 0.0,
            reinsert: 0.0,
        }
    }
}

impl MoveSet {
    /// A move set consisting only of swaps (used by the ablation bench).
    pub fn swaps_only() -> Self {
        MoveSet {
            adjacent_swap: 0.3,
            swap: 0.7,
            three_cycle: 0.0,
            reinsert: 0.0,
        }
    }

    /// Sample a move kind according to the weights.
    pub fn sample_kind<R: Rng + ?Sized>(&self, rng: &mut R) -> MoveKind {
        let total = self.adjacent_swap + self.swap + self.three_cycle + self.reinsert;
        debug_assert!(total > 0.0, "move set has no positive weight");
        let mut x = rng.gen::<f64>() * total;
        x -= self.adjacent_swap;
        if x < 0.0 {
            return MoveKind::AdjacentSwap;
        }
        x -= self.swap;
        if x < 0.0 {
            return MoveKind::Swap;
        }
        x -= self.three_cycle;
        if x < 0.0 {
            return MoveKind::ThreeCycle;
        }
        MoveKind::Reinsert
    }
}

/// Generates random *valid* moves: proposes perturbations and filters out
/// those that would introduce a cross product.
///
/// Two filtering backends exist. The default ([`MoveGenerator::new`]) runs
/// the full [`ValidityChecker`] scan over the perturbed order. The compiled
/// backend ([`MoveGenerator::with_compiled`]) uses a [`BitsetChecker`] and
/// revalidates only the move's touched window `[first_touched(),
/// last_touched()]` — exact because the generator only ever perturbs orders
/// it has itself kept valid (see [`BitsetChecker::window_valid`]) — and is
/// allocation-free per proposal.
#[derive(Debug)]
pub struct MoveGenerator {
    move_set: MoveSet,
    checker: ValidityChecker,
    /// Compiled snapshot + bitset checker for windowed validity filtering;
    /// when set, `propose_counted` ignores its graph argument.
    compiled: Option<(Arc<CompiledQuery>, BitsetChecker)>,
    /// Acceptance probe for the prefix-mask cache: position and pre-move
    /// relation at `first_touched()` of the last returned proposal. At the
    /// next call, `order[pos] != rel` means the caller kept the move (the
    /// cache is truncated at `pos`); equality means it was undone (every
    /// move changes the relation at its first touched position, so the
    /// probe distinguishes the two exactly).
    probe: Option<(usize, RelId)>,
    /// Give up after this many invalid proposals (the state is then treated
    /// as having no available move — practically unreachable for connected
    /// graphs with more than two relations).
    max_retries: usize,
}

impl MoveGenerator {
    /// Create a generator for orders over up to `n_relations` relations.
    pub fn new(n_relations: usize, move_set: MoveSet) -> Self {
        MoveGenerator {
            move_set,
            checker: ValidityChecker::new(n_relations),
            compiled: None,
            probe: None,
            max_retries: 64.max(4 * n_relations),
        }
    }

    /// Create a generator that filters proposals with windowed bitset
    /// checks against `compiled` instead of full validity scans.
    ///
    /// The caller must only hand `propose`/`propose_counted` orders that
    /// are already valid (both start from a valid order and preserve
    /// validity on every accepted move, so this holds inductively for the
    /// II/SA loops).
    pub fn with_compiled(compiled: Arc<CompiledQuery>, move_set: MoveSet) -> Self {
        let n_relations = compiled.n_relations();
        MoveGenerator {
            move_set,
            checker: ValidityChecker::new(n_relations),
            compiled: Some((compiled, BitsetChecker::new(n_relations))),
            probe: None,
            max_retries: 64.max(4 * n_relations),
        }
    }

    /// Notify the generator that the base order changed in a way it could
    /// not observe — a restart from a different order, a rollback to an
    /// earlier state, or switching to another component. Invalidates the
    /// windowed checker's prefix-mask cache.
    ///
    /// Not needed for the regular propose → accept/undo loop: the
    /// generator detects both outcomes of its own proposals.
    pub fn reset(&mut self) {
        self.probe = None;
        if let Some((_, bitset)) = &mut self.compiled {
            bitset.reset_prefix();
        }
    }

    /// Sample a random move of the configured distribution, ignoring
    /// validity.
    fn sample_move<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Move {
        debug_assert!(len >= 2);
        match self.move_set.sample_kind(rng) {
            MoveKind::AdjacentSwap => {
                let i = rng.gen_range(0..len - 1);
                Move::Swap { i, j: i + 1 }
            }
            MoveKind::Swap => {
                let i = rng.gen_range(0..len);
                let mut j = rng.gen_range(0..len - 1);
                if j >= i {
                    j += 1;
                }
                Move::Swap {
                    i: i.min(j),
                    j: i.max(j),
                }
            }
            MoveKind::ThreeCycle if len >= 3 => {
                let i = rng.gen_range(0..len);
                let mut j = rng.gen_range(0..len - 1);
                if j >= i {
                    j += 1;
                }
                let mut k = rng.gen_range(0..len - 2);
                for bound in [i.min(j), i.max(j)] {
                    if k >= bound {
                        k += 1;
                    }
                }
                Move::ThreeCycle { i, j, k }
            }
            MoveKind::ThreeCycle => {
                // Degenerates to a swap when only two positions exist.
                Move::Swap { i: 0, j: 1 }
            }
            MoveKind::Reinsert => {
                let from = rng.gen_range(0..len);
                let mut to = rng.gen_range(0..len - 1);
                if to >= from {
                    to += 1;
                }
                Move::Reinsert { from, to }
            }
        }
    }

    /// Propose a random valid neighbor of `order`.
    ///
    /// On success the move has been **applied** to `order` (so the caller
    /// can cost the new state immediately) and is returned so the caller
    /// can [`Move::undo`] it if the new state is rejected. Returns `None`
    /// when the order is too short to perturb or no valid move was found
    /// within the retry budget.
    pub fn propose<R: Rng + ?Sized>(
        &mut self,
        graph: &JoinGraph,
        order: &mut JoinOrder,
        rng: &mut R,
    ) -> Option<Move> {
        self.propose_counted(graph, order, rng).map(|(mv, _)| mv)
    }

    /// As [`MoveGenerator::propose`], additionally reporting how many
    /// proposals were *tried* (1 = first proposal was valid).
    ///
    /// Each rejected proposal performed an `O(N)` validity check — real
    /// work that the paper's wall-clock time limits paid for. Budgeted
    /// optimizers charge `attempts − 1` extra units so that searching
    /// heavily constrained spaces (e.g. star join graphs, where most swaps
    /// are invalid) is costlier, as it was on the paper's hardware.
    pub fn propose_counted<R: Rng + ?Sized>(
        &mut self,
        graph: &JoinGraph,
        order: &mut JoinOrder,
        rng: &mut R,
    ) -> Option<(Move, u32)> {
        let len = order.len();
        if len < 2 {
            return None;
        }
        // Resolve the previous proposal's fate: if the caller kept it, the
        // relation at its first touched position changed, and the prefix
        // cache past that position is stale.
        if let Some((pos, rel)) = self.probe.take() {
            if pos < len && order.at(pos) != rel {
                if let Some((_, bitset)) = &mut self.compiled {
                    bitset.truncate_prefix(pos);
                }
            }
        }
        for attempt in 1..=self.max_retries {
            let mv = self.sample_move(len, rng);
            let lo = mv.first_touched();
            let pre = order.at(lo);
            mv.apply(order);
            let valid = match &mut self.compiled {
                Some((cq, bitset)) => {
                    let ok = bitset.window_valid_primed(cq, order.rels(), lo, mv.last_touched());
                    debug_assert_eq!(
                        ok,
                        bitset.window_valid(cq, order.rels(), lo, mv.last_touched()),
                        "primed windowed validity must agree with the uncached check \
                         (was the generator told about a base-order change?)"
                    );
                    debug_assert_eq!(
                        ok,
                        bitset.is_valid(cq, order.rels()),
                        "windowed validity must agree with the full check \
                         (was the input order valid?)"
                    );
                    ok
                }
                None => self.checker.is_valid(graph, order.rels()),
            };
            if valid {
                self.probe = Some((lo, pre));
                return Some((mv, attempt as u32));
            }
            mv.undo(order);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::is_valid;
    use ljqo_catalog::{JoinEdge, RelId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(
            n,
            (1..n)
                .map(|i| JoinEdge::from_distincts(i - 1, i, 10.0, 10.0))
                .collect(),
        )
    }

    #[test]
    fn moves_are_reversible() {
        let moves = [
            Move::Swap { i: 1, j: 4 },
            Move::ThreeCycle { i: 0, j: 2, k: 4 },
            Move::Reinsert { from: 4, to: 1 },
            Move::Reinsert { from: 0, to: 3 },
        ];
        for mv in moves {
            let mut o = JoinOrder::new(ids(&[0, 1, 2, 3, 4]));
            let orig = o.clone();
            mv.apply(&mut o);
            assert_ne!(o, orig, "{mv:?} must change the order");
            mv.undo(&mut o);
            assert_eq!(o, orig, "{mv:?} undo must restore the order");
        }
    }

    #[test]
    fn three_cycle_rotates() {
        let mut o = JoinOrder::new(ids(&[10, 11, 12]));
        Move::ThreeCycle { i: 0, j: 1, k: 2 }.apply(&mut o);
        // i->j->k->i: value at 0 goes to 1, 1 to 2, 2 to 0.
        assert_eq!(o.rels(), &ids(&[12, 10, 11])[..]);
    }

    #[test]
    fn all_swaps_enumerates_n_choose_2() {
        let swaps: Vec<_> = Move::all_swaps(5).collect();
        assert_eq!(swaps.len(), 10);
    }

    #[test]
    fn proposals_stay_valid() {
        let g = chain_graph(8);
        let mut gen = MoveGenerator::new(8, MoveSet::default());
        let mut order = JoinOrder::new(ids(&[0, 1, 2, 3, 4, 5, 6, 7]));
        let mut rng = SmallRng::seed_from_u64(42);
        let mut changed = 0;
        for _ in 0..500 {
            let before = order.clone();
            if let Some(mv) = gen.propose(&g, &mut order, &mut rng) {
                assert!(is_valid(&g, order.rels()));
                assert_ne!(order, before, "move {mv:?} should perturb the state");
                changed += 1;
            }
        }
        assert!(changed > 400, "most proposals should succeed on a chain");
    }

    #[test]
    fn propose_on_tiny_order_is_none() {
        let g = chain_graph(2);
        let mut gen = MoveGenerator::new(2, MoveSet::default());
        let mut order = JoinOrder::new(ids(&[0]));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(gen.propose(&g, &mut order, &mut rng).is_none());
    }

    #[test]
    fn two_relation_order_swaps() {
        let g = chain_graph(2);
        let mut gen = MoveGenerator::new(2, MoveSet::default());
        let mut order = JoinOrder::new(ids(&[0, 1]));
        let mut rng = SmallRng::seed_from_u64(1);
        let mv = gen.propose(&g, &mut order, &mut rng).unwrap();
        assert_eq!(mv, Move::Swap { i: 0, j: 1 });
        assert_eq!(order.rels(), &ids(&[1, 0])[..]);
    }

    #[test]
    fn dest_maps_every_position_onto_the_applied_order() {
        let moves = [
            Move::Swap { i: 1, j: 1 },
            Move::Swap { i: 0, j: 5 },
            Move::Swap { i: 2, j: 3 },
            Move::ThreeCycle { i: 0, j: 2, k: 4 },
            Move::ThreeCycle { i: 5, j: 1, k: 3 },
            Move::Reinsert { from: 0, to: 3 },
            Move::Reinsert { from: 4, to: 1 },
            Move::Reinsert { from: 5, to: 0 },
            Move::Reinsert { from: 2, to: 5 },
        ];
        for mv in moves {
            let before = JoinOrder::new(ids(&[0, 1, 2, 3, 4, 5]));
            let mut after = before.clone();
            mv.apply(&mut after);
            let mut seen = [false; 6];
            for p in 0..6 {
                let d = mv.dest(p);
                assert_eq!(
                    after.at(d),
                    before.at(p),
                    "{mv:?}: dest({p}) = {d} must carry the same relation"
                );
                assert!(!seen[d], "{mv:?}: dest must be a bijection");
                seen[d] = true;
            }
        }
    }

    #[test]
    fn touched_window_bounds_all_changes() {
        let mut rng = SmallRng::seed_from_u64(99);
        let moves = MoveSet {
            adjacent_swap: 1.0,
            swap: 1.0,
            three_cycle: 1.0,
            reinsert: 1.0,
        };
        let gen = MoveGenerator::new(9, moves);
        let before = JoinOrder::new(ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8]));
        for _ in 0..500 {
            let mv = gen.sample_move(9, &mut rng);
            let mut after = before.clone();
            mv.apply(&mut after);
            let (lo, hi) = (mv.first_touched(), mv.last_touched());
            for p in 0..9 {
                if p < lo || p > hi {
                    assert_eq!(
                        after.at(p),
                        before.at(p),
                        "{mv:?}: position {p} outside [{lo}, {hi}] must not change"
                    );
                }
                assert!(
                    (lo..=hi).contains(&mv.dest(p)) || mv.dest(p) == p,
                    "{mv:?}: dest({p}) may only differ from {p} inside the window"
                );
            }
        }
    }

    #[test]
    fn sample_kind_respects_zero_weights() {
        let ms = MoveSet::swaps_only();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let k = ms.sample_kind(&mut rng);
            assert!(matches!(k, MoveKind::AdjacentSwap | MoveKind::Swap));
        }
    }

    #[test]
    fn compiled_proposals_stay_valid_and_match_distribution() {
        // Same seed through the legacy and compiled generators must yield
        // the same accepted move sequence: the windowed filter is exact, so
        // it consumes randomness identically.
        let g = chain_graph(8);
        let cq = Arc::new(CompiledQuery::from_graph(&g, vec![10.0; 8]));
        let moves = MoveSet {
            adjacent_swap: 0.25,
            swap: 0.35,
            three_cycle: 0.2,
            reinsert: 0.2,
        };
        let mut legacy = MoveGenerator::new(8, moves);
        let mut compiled = MoveGenerator::with_compiled(cq, moves);
        let mut order_a = JoinOrder::new(ids(&[0, 1, 2, 3, 4, 5, 6, 7]));
        let mut order_b = order_a.clone();
        let mut rng_a = SmallRng::seed_from_u64(0xbeef);
        let mut rng_b = SmallRng::seed_from_u64(0xbeef);
        for _ in 0..500 {
            let a = legacy.propose_counted(&g, &mut order_a, &mut rng_a);
            let b = compiled.propose_counted(&g, &mut order_b, &mut rng_b);
            assert_eq!(a, b);
            assert_eq!(order_a, order_b);
            assert!(is_valid(&g, order_b.rels()));
        }
    }

    #[test]
    fn star_proposals_never_lead_with_two_spokes() {
        // Star with hub 0: valid orders keep the hub in the first two
        // positions.
        let g = JoinGraph::new(
            6,
            (1..6)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect(),
        );
        let mut gen = MoveGenerator::new(6, MoveSet::default());
        let mut order = JoinOrder::new(ids(&[0, 1, 2, 3, 4, 5]));
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..300 {
            gen.propose(&g, &mut order, &mut rng);
            let hub_pos = order.position(RelId(0)).unwrap();
            assert!(hub_pos <= 1, "hub must stay within the first two slots");
        }
    }
}
