//! Join orders (permutations) and whole-query plans.

use std::fmt;

use ljqo_catalog::{Query, RelId};

use crate::tree::JoinTree;

/// A permutation of relations, representing an outer linear join tree.
///
/// `order[0]` is the leftmost (first) relation; each subsequent relation is
/// the inner operand of the next join, with the running intermediate result
/// as the outer operand. For a query whose join graph is connected this
/// covers every relation; for disconnected queries each [`Plan`] segment is
/// one `JoinOrder` over a single component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinOrder(Vec<RelId>);

impl JoinOrder {
    /// Wrap a relation sequence. Panics in debug builds on duplicates.
    pub fn new(rels: Vec<RelId>) -> Self {
        debug_assert!(
            {
                let mut sorted = rels.clone();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "join order contains duplicate relations"
        );
        JoinOrder(rels)
    }

    /// The identity order `R0, R1, ..` over all relations of a query.
    pub fn identity(query: &Query) -> Self {
        JoinOrder(query.rel_ids().collect())
    }

    /// Number of relations in the order.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the order is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The relations in join order.
    #[inline]
    pub fn rels(&self) -> &[RelId] {
        &self.0
    }

    /// Mutable access to the relation sequence, for in-place move
    /// application and cluster rewriting. Callers must preserve the
    /// permutation property (no duplicates); debug builds verify it in
    /// [`JoinOrder::new`] but not here.
    #[inline]
    pub fn rels_mut(&mut self) -> &mut [RelId] {
        &mut self.0
    }

    /// The relation at position `i`.
    #[inline]
    pub fn at(&self, i: usize) -> RelId {
        self.0[i]
    }

    /// Position of `rel` in the order, if present.
    pub fn position(&self, rel: RelId) -> Option<usize> {
        self.0.iter().position(|&r| r == rel)
    }

    /// Remove the relation at `from` and reinsert it so that it ends up at
    /// position `to` (positions refer to the resulting vector).
    pub fn reinsert(&mut self, from: usize, to: usize) {
        let r = self.0.remove(from);
        self.0.insert(to, r);
    }

    /// Overwrite this order with `other`, reusing the existing allocation
    /// when it is large enough (the allocation-free counterpart of
    /// `*self = other.clone()` for best-so-far tracking in hot loops).
    pub fn copy_from(&mut self, other: &JoinOrder) {
        self.0.clone_from(&other.0);
    }

    /// Overwrite this order with a raw relation slice, reusing the
    /// existing allocation. The slice must be duplicate-free (verified in
    /// debug builds, like [`JoinOrder::new`]).
    pub fn copy_from_rels(&mut self, rels: &[RelId]) {
        debug_assert!(
            {
                let mut sorted = rels.to_vec();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "join order contains duplicate relations"
        );
        self.0.clear();
        self.0.extend_from_slice(rels);
    }

    /// Convert to the equivalent left-deep join tree.
    pub fn to_tree(&self) -> JoinTree {
        JoinTree::left_deep(&self.0)
    }

    /// Consume and return the underlying vector.
    pub fn into_vec(self) -> Vec<RelId> {
        self.0
    }
}

impl fmt::Display for JoinOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, r) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<RelId>> for JoinOrder {
    fn from(v: Vec<RelId>) -> Self {
        JoinOrder::new(v)
    }
}

/// A complete query evaluation plan for (possibly disconnected) queries.
///
/// Each *segment* is a valid join order over one connected component of the
/// join graph. Segments are combined left to right with cross products —
/// the paper's heuristic of postponing cross products as late as possible
/// means each component is fully reduced before any cross product happens.
/// Segment order is chosen by the driver (ascending estimated result size).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Per-component join orders, in cross-product application order.
    pub segments: Vec<JoinOrder>,
}

impl Plan {
    /// A plan with a single segment (the common, connected case).
    pub fn single(order: JoinOrder) -> Self {
        Plan {
            segments: vec![order],
        }
    }

    /// Total number of relations across all segments.
    pub fn n_relations(&self) -> usize {
        self.segments.iter().map(JoinOrder::len).sum()
    }

    /// The flattened global relation sequence (segments concatenated).
    pub fn flatten(&self) -> JoinOrder {
        JoinOrder::new(
            self.segments
                .iter()
                .flat_map(|s| s.rels().iter().copied())
                .collect(),
        )
    }

    /// Render the plan as an explicit join tree (cross products shown as
    /// joins with no predicate).
    pub fn to_tree(&self) -> JoinTree {
        JoinTree::left_deep(self.flatten().rels())
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn display_permutation_notation() {
        let o = JoinOrder::new(ids(&[2, 0, 1]));
        assert_eq!(o.to_string(), "(R2 R0 R1)");
    }

    #[test]
    fn reinsert_moves_relation() {
        let mut o = JoinOrder::new(ids(&[0, 1, 2, 3]));
        o.reinsert(3, 0);
        assert_eq!(o.rels(), &ids(&[3, 0, 1, 2])[..]);
        o.reinsert(0, 2);
        assert_eq!(o.rels(), &ids(&[0, 1, 3, 2])[..]);
    }

    #[test]
    fn position_lookup() {
        let o = JoinOrder::new(ids(&[5, 3, 1]));
        assert_eq!(o.position(RelId(3)), Some(1));
        assert_eq!(o.position(RelId(9)), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate")]
    fn duplicates_panic_in_debug() {
        let _ = JoinOrder::new(ids(&[1, 2, 1]));
    }

    #[test]
    fn plan_flatten_concatenates_segments() {
        let p = Plan {
            segments: vec![JoinOrder::new(ids(&[1, 0])), JoinOrder::new(ids(&[3, 2]))],
        };
        assert_eq!(p.flatten().rels(), &ids(&[1, 0, 3, 2])[..]);
        assert_eq!(p.n_relations(), 4);
        assert_eq!(p.to_string(), "(R1 R0) × (R3 R2)");
    }
}
