//! Validity of join orders: no cross products within a component.
//!
//! A join order is *valid* when every relation after the first joins (via
//! at least one join predicate) with some relation placed earlier. The
//! paper restricts all search to the space of valid join trees; the move
//! set and the random state generator both rely on these checks.

use ljqo_catalog::{JoinGraph, RelId};

/// Whether `order` is a valid join order under `graph`.
///
/// An empty order and a singleton order are trivially valid.
pub fn is_valid(graph: &JoinGraph, order: &[RelId]) -> bool {
    first_invalid_position(graph, order).is_none()
}

/// The first position `i >= 1` whose relation joins with no earlier
/// relation, or `None` if the order is valid.
///
/// Runs in O(Σ deg) using a placement bitmap, with no allocation beyond the
/// bitmap itself.
pub fn first_invalid_position(graph: &JoinGraph, order: &[RelId]) -> Option<usize> {
    let mut placed = vec![false; graph.n_relations()];
    let mut iter = order.iter();
    if let Some(&first) = iter.next() {
        placed[first.index()] = true;
    }
    for (off, &r) in iter.enumerate() {
        let connects = graph
            .incident(r)
            .iter()
            .any(|&eid| graph.edge(eid).other(r).is_some_and(|o| placed[o.index()]));
        if !connects {
            return Some(off + 1);
        }
        placed[r.index()] = true;
    }
    None
}

/// Reusable validity checker that amortizes the placement bitmap across
/// many checks (the optimizers call this in their innermost loop).
#[derive(Debug)]
pub struct ValidityChecker {
    placed: Vec<bool>,
    touched: Vec<usize>,
}

impl ValidityChecker {
    /// Create a checker for graphs with up to `n_relations` relations.
    pub fn new(n_relations: usize) -> Self {
        ValidityChecker {
            placed: vec![false; n_relations],
            touched: Vec::with_capacity(n_relations),
        }
    }

    /// Equivalent to [`is_valid`] but reuses the internal bitmap.
    pub fn is_valid(&mut self, graph: &JoinGraph, order: &[RelId]) -> bool {
        debug_assert!(self.placed.len() >= graph.n_relations());
        let mut ok = true;
        let mut iter = order.iter();
        if let Some(&first) = iter.next() {
            self.placed[first.index()] = true;
            self.touched.push(first.index());
        }
        for &r in iter {
            let connects = graph.incident(r).iter().any(|&eid| {
                graph
                    .edge(eid)
                    .other(r)
                    .is_some_and(|o| self.placed[o.index()])
            });
            if !connects {
                ok = false;
                break;
            }
            self.placed[r.index()] = true;
            self.touched.push(r.index());
        }
        for &t in &self.touched {
            self.placed[t] = false;
        }
        self.touched.clear();
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::JoinEdge;

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(
            n,
            (1..n)
                .map(|i| JoinEdge::from_distincts(i - 1, i, 10.0, 10.0))
                .collect(),
        )
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn chain_orders() {
        let g = chain_graph(4);
        assert!(is_valid(&g, &ids(&[0, 1, 2, 3])));
        assert!(is_valid(&g, &ids(&[2, 1, 3, 0])));
        assert!(is_valid(&g, &ids(&[1, 2, 0, 3])));
        // 0 and 2 are not joined, so (0 2 ...) is invalid.
        assert!(!is_valid(&g, &ids(&[0, 2, 1, 3])));
        assert_eq!(first_invalid_position(&g, &ids(&[0, 2, 1, 3])), Some(1));
    }

    #[test]
    fn empty_and_singleton_valid() {
        let g = chain_graph(3);
        assert!(is_valid(&g, &[]));
        assert!(is_valid(&g, &ids(&[2])));
    }

    #[test]
    fn star_orders() {
        // 0 is the hub joined to 1..4.
        let g = JoinGraph::new(
            5,
            (1..5)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect(),
        );
        assert!(is_valid(&g, &ids(&[0, 3, 1, 4, 2])));
        assert!(is_valid(&g, &ids(&[3, 0, 1, 4, 2])));
        // Two spokes first is a cross product.
        assert!(!is_valid(&g, &ids(&[3, 1, 0, 4, 2])));
    }

    #[test]
    fn checker_matches_free_function_and_resets() {
        let g = chain_graph(5);
        let mut c = ValidityChecker::new(5);
        let good = ids(&[2, 3, 1, 0, 4]);
        let bad = ids(&[2, 4, 3, 1, 0]);
        for _ in 0..3 {
            assert!(c.is_valid(&g, &good));
            assert!(!c.is_valid(&g, &bad));
        }
    }

    #[test]
    fn suborder_over_component_checked_in_isolation() {
        // Disconnected graph: component {0,1}, component {2,3}.
        let g = JoinGraph::new(
            4,
            vec![
                JoinEdge::from_distincts(0u32, 1u32, 5.0, 5.0),
                JoinEdge::from_distincts(2u32, 3u32, 5.0, 5.0),
            ],
        );
        assert!(is_valid(&g, &ids(&[1, 0])));
        assert!(is_valid(&g, &ids(&[3, 2])));
        // Mixing components forces a cross product -> invalid as one order.
        assert!(!is_valid(&g, &ids(&[0, 1, 2, 3])));
    }
}
