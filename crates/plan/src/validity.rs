//! Validity of join orders: no cross products within a component.
//!
//! A join order is *valid* when every relation after the first joins (via
//! at least one join predicate) with some relation placed earlier. The
//! paper restricts all search to the space of valid join trees; the move
//! set and the random state generator both rely on these checks.

use ljqo_catalog::{CompiledQuery, JoinGraph, RelId};

/// Whether `order` is a valid join order under `graph`.
///
/// An empty order and a singleton order are trivially valid.
pub fn is_valid(graph: &JoinGraph, order: &[RelId]) -> bool {
    first_invalid_position(graph, order).is_none()
}

/// The first position `i >= 1` whose relation joins with no earlier
/// relation, or `None` if the order is valid.
///
/// Runs in O(Σ deg) using a placement bitmap, with no allocation beyond the
/// bitmap itself.
pub fn first_invalid_position(graph: &JoinGraph, order: &[RelId]) -> Option<usize> {
    let mut placed = vec![false; graph.n_relations()];
    let mut iter = order.iter();
    if let Some(&first) = iter.next() {
        placed[first.index()] = true;
    }
    for (off, &r) in iter.enumerate() {
        let connects = graph
            .incident(r)
            .iter()
            .any(|&eid| graph.edge(eid).other(r).is_some_and(|o| placed[o.index()]));
        if !connects {
            return Some(off + 1);
        }
        placed[r.index()] = true;
    }
    None
}

/// Reusable validity checker that amortizes the placement bitmap across
/// many checks (the optimizers call this in their innermost loop).
#[derive(Debug)]
pub struct ValidityChecker {
    placed: Vec<bool>,
    touched: Vec<usize>,
}

impl ValidityChecker {
    /// Create a checker for graphs with up to `n_relations` relations.
    pub fn new(n_relations: usize) -> Self {
        ValidityChecker {
            placed: vec![false; n_relations],
            touched: Vec::with_capacity(n_relations),
        }
    }

    /// Equivalent to [`is_valid`] but reuses the internal bitmap.
    pub fn is_valid(&mut self, graph: &JoinGraph, order: &[RelId]) -> bool {
        debug_assert!(self.placed.len() >= graph.n_relations());
        let mut ok = true;
        let mut iter = order.iter();
        if let Some(&first) = iter.next() {
            self.placed[first.index()] = true;
            self.touched.push(first.index());
        }
        for &r in iter {
            let connects = graph.incident(r).iter().any(|&eid| {
                graph
                    .edge(eid)
                    .other(r)
                    .is_some_and(|o| self.placed[o.index()])
            });
            if !connects {
                ok = false;
                break;
            }
            self.placed[r.index()] = true;
            self.touched.push(r.index());
        }
        for &t in &self.touched {
            self.placed[t] = false;
        }
        self.touched.clear();
        ok
    }
}

/// Bitset-backed validity checker over a [`CompiledQuery`].
///
/// Equivalent to [`ValidityChecker`] but represents the placed set as
/// `⌈n/64⌉` machine words, so each position's connectivity test is a
/// branch-light word-AND against the relation's precompiled neighbor mask
/// ([`CompiledQuery::connects`]) instead of an `O(deg)` edge chase. The
/// checker allocates its words once and never again.
///
/// On top of the full check it offers [`BitsetChecker::window_valid`], a
/// *windowed* re-check for move filtering: a move permutes relations only
/// within `[first_touched(), last_touched()]`, and a position's validity
/// depends only on the **set** of relations placed before it — so when the
/// pre-move order was valid, revalidating the window alone is exact, making
/// move filtering `O(window · n/64)` instead of `O(Σ deg)`.
#[derive(Debug)]
pub struct BitsetChecker {
    placed: Vec<u64>,
}

impl BitsetChecker {
    /// Create a checker for graphs with up to `n_relations` relations.
    pub fn new(n_relations: usize) -> Self {
        BitsetChecker {
            placed: vec![0u64; n_relations.div_ceil(64).max(1)],
        }
    }

    /// Equivalent to [`is_valid`]: whether `order` is a valid join order.
    pub fn is_valid(&mut self, compiled: &CompiledQuery, order: &[RelId]) -> bool {
        debug_assert_eq!(self.placed.len(), compiled.words_per_rel());
        if compiled.words_per_rel() == 1 {
            // ≤ 64 relations: the whole placed set lives in one register.
            let mut placed = 0u64;
            let mut iter = order.iter();
            if let Some(&first) = iter.next() {
                placed |= 1u64 << first.index();
            }
            for &r in iter {
                if compiled.neighbor_word(r) & placed == 0 {
                    return false;
                }
                placed |= 1u64 << r.index();
            }
            return true;
        }
        self.placed.fill(0);
        let mut iter = order.iter();
        if let Some(&first) = iter.next() {
            compiled.set_placed(&mut self.placed, first);
        }
        for &r in iter {
            if !compiled.connects(r, &self.placed) {
                return false;
            }
            compiled.set_placed(&mut self.placed, r);
        }
        true
    }

    /// Whether `order` — known to be valid *before* a move that only
    /// permuted positions `lo..=hi` — is still valid, by revalidating the
    /// window alone.
    ///
    /// Exact under that precondition: positions before `lo` see an
    /// unchanged prefix, and positions after `hi` see the same *set* of
    /// earlier relations (the move is a permutation of the window), which
    /// is all their connectivity test depends on. Callers perturbing an
    /// order of unknown validity must use [`BitsetChecker::is_valid`].
    pub fn window_valid(
        &mut self,
        compiled: &CompiledQuery,
        order: &[RelId],
        lo: usize,
        hi: usize,
    ) -> bool {
        debug_assert_eq!(self.placed.len(), compiled.words_per_rel());
        debug_assert!(hi < order.len());
        let start = lo.max(1);
        if compiled.words_per_rel() == 1 {
            // ≤ 64 relations: one register, no memory traffic at all.
            let mut placed = 0u64;
            for &r in &order[..start] {
                placed |= 1u64 << r.index();
            }
            for &r in &order[start..=hi] {
                if compiled.neighbor_word(r) & placed == 0 {
                    return false;
                }
                placed |= 1u64 << r.index();
            }
            return true;
        }
        self.placed.fill(0);
        for &r in &order[..start] {
            compiled.set_placed(&mut self.placed, r);
        }
        for &r in &order[start..=hi] {
            if !compiled.connects(r, &self.placed) {
                return false;
            }
            compiled.set_placed(&mut self.placed, r);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::JoinEdge;

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(
            n,
            (1..n)
                .map(|i| JoinEdge::from_distincts(i - 1, i, 10.0, 10.0))
                .collect(),
        )
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn chain_orders() {
        let g = chain_graph(4);
        assert!(is_valid(&g, &ids(&[0, 1, 2, 3])));
        assert!(is_valid(&g, &ids(&[2, 1, 3, 0])));
        assert!(is_valid(&g, &ids(&[1, 2, 0, 3])));
        // 0 and 2 are not joined, so (0 2 ...) is invalid.
        assert!(!is_valid(&g, &ids(&[0, 2, 1, 3])));
        assert_eq!(first_invalid_position(&g, &ids(&[0, 2, 1, 3])), Some(1));
    }

    #[test]
    fn empty_and_singleton_valid() {
        let g = chain_graph(3);
        assert!(is_valid(&g, &[]));
        assert!(is_valid(&g, &ids(&[2])));
    }

    #[test]
    fn star_orders() {
        // 0 is the hub joined to 1..4.
        let g = JoinGraph::new(
            5,
            (1..5)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect(),
        );
        assert!(is_valid(&g, &ids(&[0, 3, 1, 4, 2])));
        assert!(is_valid(&g, &ids(&[3, 0, 1, 4, 2])));
        // Two spokes first is a cross product.
        assert!(!is_valid(&g, &ids(&[3, 1, 0, 4, 2])));
    }

    #[test]
    fn checker_matches_free_function_and_resets() {
        let g = chain_graph(5);
        let mut c = ValidityChecker::new(5);
        let good = ids(&[2, 3, 1, 0, 4]);
        let bad = ids(&[2, 4, 3, 1, 0]);
        for _ in 0..3 {
            assert!(c.is_valid(&g, &good));
            assert!(!c.is_valid(&g, &bad));
        }
    }

    #[test]
    fn bitset_checker_matches_free_function() {
        let g = chain_graph(5);
        let cards = vec![10.0; 5];
        let cq = CompiledQuery::from_graph(&g, cards);
        let mut c = BitsetChecker::new(5);
        for order in [
            ids(&[0, 1, 2, 3, 4]),
            ids(&[2, 3, 1, 0, 4]),
            ids(&[2, 4, 3, 1, 0]),
            ids(&[0, 2, 1, 3, 4]),
            ids(&[4]),
            ids(&[]),
        ] {
            assert_eq!(c.is_valid(&cq, &order), is_valid(&g, &order), "{order:?}");
        }
    }

    #[test]
    fn window_valid_matches_full_check_after_window_moves() {
        // Star with hub 0 — most permutations of a window are invalid.
        let g = JoinGraph::new(
            6,
            (1..6)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect(),
        );
        let cq = CompiledQuery::from_graph(&g, vec![10.0; 6]);
        let mut c = BitsetChecker::new(6);
        let valid = ids(&[2, 0, 1, 4, 3, 5]);
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let mut perturbed = valid.clone();
                perturbed.swap(i, j);
                let (lo, hi) = (i.min(j), i.max(j));
                assert_eq!(
                    c.window_valid(&cq, &perturbed, lo, hi),
                    is_valid(&g, &perturbed),
                    "swap {i} <-> {j}"
                );
            }
        }
    }

    #[test]
    fn suborder_over_component_checked_in_isolation() {
        // Disconnected graph: component {0,1}, component {2,3}.
        let g = JoinGraph::new(
            4,
            vec![
                JoinEdge::from_distincts(0u32, 1u32, 5.0, 5.0),
                JoinEdge::from_distincts(2u32, 3u32, 5.0, 5.0),
            ],
        );
        assert!(is_valid(&g, &ids(&[1, 0])));
        assert!(is_valid(&g, &ids(&[3, 2])));
        // Mixing components forces a cross product -> invalid as one order.
        assert!(!is_valid(&g, &ids(&[0, 1, 2, 3])));
    }
}
