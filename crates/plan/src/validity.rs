//! Validity of join orders: no cross products within a component.
//!
//! A join order is *valid* when every relation after the first joins (via
//! at least one join predicate) with some relation placed earlier. The
//! paper restricts all search to the space of valid join trees; the move
//! set and the random state generator both rely on these checks.

use ljqo_catalog::bitset::{self, BLOCK_WORDS};
use ljqo_catalog::{CompiledQuery, JoinGraph, RelId};

/// Whether `order` is a valid join order under `graph`.
///
/// An empty order and a singleton order are trivially valid.
pub fn is_valid(graph: &JoinGraph, order: &[RelId]) -> bool {
    first_invalid_position(graph, order).is_none()
}

/// The first position `i >= 1` whose relation joins with no earlier
/// relation, or `None` if the order is valid.
///
/// Runs in O(Σ deg) using a placement bitmap, with no allocation beyond the
/// bitmap itself.
pub fn first_invalid_position(graph: &JoinGraph, order: &[RelId]) -> Option<usize> {
    let mut placed = vec![false; graph.n_relations()];
    let mut iter = order.iter();
    if let Some(&first) = iter.next() {
        placed[first.index()] = true;
    }
    for (off, &r) in iter.enumerate() {
        let connects = graph
            .incident(r)
            .iter()
            .any(|&eid| graph.edge(eid).other(r).is_some_and(|o| placed[o.index()]));
        if !connects {
            return Some(off + 1);
        }
        placed[r.index()] = true;
    }
    None
}

/// Reusable validity checker that amortizes the placement bitmap across
/// many checks (the optimizers call this in their innermost loop).
#[derive(Debug)]
pub struct ValidityChecker {
    placed: Vec<bool>,
    touched: Vec<usize>,
}

impl ValidityChecker {
    /// Create a checker for graphs with up to `n_relations` relations.
    pub fn new(n_relations: usize) -> Self {
        ValidityChecker {
            placed: vec![false; n_relations],
            touched: Vec::with_capacity(n_relations),
        }
    }

    /// Equivalent to [`is_valid`] but reuses the internal bitmap.
    pub fn is_valid(&mut self, graph: &JoinGraph, order: &[RelId]) -> bool {
        debug_assert!(self.placed.len() >= graph.n_relations());
        let mut ok = true;
        let mut iter = order.iter();
        if let Some(&first) = iter.next() {
            self.placed[first.index()] = true;
            self.touched.push(first.index());
        }
        for &r in iter {
            let connects = graph.incident(r).iter().any(|&eid| {
                graph
                    .edge(eid)
                    .other(r)
                    .is_some_and(|o| self.placed[o.index()])
            });
            if !connects {
                ok = false;
                break;
            }
            self.placed[r.index()] = true;
            self.touched.push(r.index());
        }
        for &t in &self.touched {
            self.placed[t] = false;
        }
        self.touched.clear();
        ok
    }
}

/// Bitset-backed validity checker over a [`CompiledQuery`].
///
/// Equivalent to [`ValidityChecker`] but represents the placed set as a
/// blocked multi-word bitset (stride per [`bitset::mask_stride`]), so each
/// position's connectivity test is a branch-light word-AND against the
/// relation's precompiled neighbor row instead of an `O(deg)` edge chase.
/// Every check dispatches once on the stride tier — one word (N ≤ 64, a
/// single register), one block (N ≤ 256, a stack `[u64; 4]`), or the
/// general chunked kernel — and stays on that tier for the whole scan.
/// The checker allocates its words once and never again.
///
/// On top of the full check it offers [`BitsetChecker::window_valid`], a
/// *windowed* re-check for move filtering: a move permutes relations only
/// within `[first_touched(), last_touched()]`, and a position's validity
/// depends only on the **set** of relations placed before it — so when the
/// pre-move order was valid, revalidating the window alone is exact, making
/// move filtering `O(window · n/64)` instead of `O(Σ deg)`.
///
/// For proposal loops that revalidate many windows of the *same* slowly
/// evolving base order there is a third, faster form:
/// [`BitsetChecker::window_valid_primed`] serves the pre-window placed set
/// from a cached prefix-mask table, removing the `O(lo)` prefix fill that
/// otherwise dominates at large `N`.
#[derive(Debug)]
pub struct BitsetChecker {
    /// Scratch placed-set words, `stride` long.
    placed: Vec<u64>,
    /// Mask stride (1, or a multiple of [`BLOCK_WORDS`]).
    stride: usize,
    /// Prefix-mask table for the primed path: entry `i` (words
    /// `i·stride ..< (i+1)·stride`) is the placed mask of `order[..i]`.
    /// Only the first `prefix_valid` entries are meaningful.
    prefix: Vec<u64>,
    /// Number of valid prefix entries (entry 0, the empty mask, is always
    /// valid).
    prefix_valid: usize,
}

impl BitsetChecker {
    /// Create a checker for graphs with up to `n_relations` relations.
    pub fn new(n_relations: usize) -> Self {
        let stride = bitset::stride_for_relations(n_relations);
        BitsetChecker {
            placed: vec![0u64; stride],
            stride,
            prefix: vec![0u64; (n_relations + 1) * stride],
            prefix_valid: 1,
        }
    }

    /// Equivalent to [`is_valid`]: whether `order` is a valid join order.
    pub fn is_valid(&mut self, compiled: &CompiledQuery, order: &[RelId]) -> bool {
        debug_assert_eq!(self.stride, compiled.mask_stride());
        match self.stride {
            1 => {
                // ≤ 64 relations: the whole placed set lives in one register.
                let mut placed = 0u64;
                let mut iter = order.iter();
                if let Some(&first) = iter.next() {
                    placed |= 1u64 << first.index();
                }
                for &r in iter {
                    if compiled.neighbor_word(r) & placed == 0 {
                        return false;
                    }
                    placed |= 1u64 << r.index();
                }
                true
            }
            BLOCK_WORDS => {
                // ≤ 256 relations: one stack block, no heap traffic.
                let mut placed = [0u64; BLOCK_WORDS];
                let mut iter = order.iter();
                if let Some(&first) = iter.next() {
                    bitset::set_bit(&mut placed, first.index());
                }
                for &r in iter {
                    if !block_connects(compiled, r, &placed) {
                        return false;
                    }
                    bitset::set_bit(&mut placed, r.index());
                }
                true
            }
            _ => {
                self.placed.fill(0);
                let mut iter = order.iter();
                if let Some(&first) = iter.next() {
                    compiled.set_placed(&mut self.placed, first);
                }
                for &r in iter {
                    if !compiled.connects_blocks(r, &self.placed) {
                        return false;
                    }
                    compiled.set_placed(&mut self.placed, r);
                }
                true
            }
        }
    }

    /// Whether `order` — known to be valid *before* a move that only
    /// permuted positions `lo..=hi` — is still valid, by revalidating the
    /// window alone.
    ///
    /// Exact under that precondition: positions before `lo` see an
    /// unchanged prefix, and positions after `hi` see the same *set* of
    /// earlier relations (the move is a permutation of the window), which
    /// is all their connectivity test depends on. Callers perturbing an
    /// order of unknown validity must use [`BitsetChecker::is_valid`].
    pub fn window_valid(
        &mut self,
        compiled: &CompiledQuery,
        order: &[RelId],
        lo: usize,
        hi: usize,
    ) -> bool {
        debug_assert_eq!(self.stride, compiled.mask_stride());
        debug_assert!(hi < order.len());
        let start = lo.max(1);
        match self.stride {
            1 => {
                // ≤ 64 relations: one register, no memory traffic at all.
                let mut placed = 0u64;
                for &r in &order[..start] {
                    placed |= 1u64 << r.index();
                }
                for &r in &order[start..=hi] {
                    if compiled.neighbor_word(r) & placed == 0 {
                        return false;
                    }
                    placed |= 1u64 << r.index();
                }
                true
            }
            BLOCK_WORDS => {
                let mut placed = [0u64; BLOCK_WORDS];
                for &r in &order[..start] {
                    bitset::set_bit(&mut placed, r.index());
                }
                for &r in &order[start..=hi] {
                    if !block_connects(compiled, r, &placed) {
                        return false;
                    }
                    bitset::set_bit(&mut placed, r.index());
                }
                true
            }
            _ => {
                self.placed.fill(0);
                for &r in &order[..start] {
                    compiled.set_placed(&mut self.placed, r);
                }
                for &r in &order[start..=hi] {
                    if !compiled.connects_blocks(r, &self.placed) {
                        return false;
                    }
                    compiled.set_placed(&mut self.placed, r);
                }
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Primed (prefix-cached) windowed checks
    // ------------------------------------------------------------------

    /// Invalidate the entire prefix cache (the base order changed
    /// arbitrarily — a restart, a different component, a new order).
    pub fn reset_prefix(&mut self) {
        self.prefix_valid = 1;
    }

    /// Invalidate prefix entries past position `pos`: after an accepted
    /// move whose [`first_touched`](crate::Move::first_touched) is `pos`,
    /// entries `0..=pos` (which depend only on positions `< pos`) remain
    /// valid.
    pub fn truncate_prefix(&mut self, pos: usize) {
        self.prefix_valid = self.prefix_valid.min(pos + 1);
    }

    /// As [`BitsetChecker::window_valid`], but the placed set at `lo`
    /// comes from a cached prefix-mask table instead of an `O(lo)` refill,
    /// making each check `O(window)` — the kernel the large-N proposal
    /// loop runs on.
    ///
    /// Additional precondition on top of `window_valid`'s: between calls,
    /// the positions *before* each call's `lo` must be unchanged since the
    /// cache was last valid — callers must report base-order changes via
    /// [`BitsetChecker::truncate_prefix`] (accepted move) or
    /// [`BitsetChecker::reset_prefix`] (arbitrary change). The move
    /// generator enforces this protocol; debug builds cross-check every
    /// result against the uncached check.
    pub fn window_valid_primed(
        &mut self,
        compiled: &CompiledQuery,
        order: &[RelId],
        lo: usize,
        hi: usize,
    ) -> bool {
        debug_assert_eq!(self.stride, compiled.mask_stride());
        debug_assert!(hi < order.len());
        debug_assert!((order.len() + 1) * self.stride <= self.prefix.len());
        // Extend the cache up to entry `lo`. Entries ≤ lo depend only on
        // positions < lo, which the currently applied move (touching
        // `lo..=hi`) did not change, so caching them is safe even if the
        // move is later undone.
        while self.prefix_valid <= lo {
            let i = self.prefix_valid;
            let (head, tail) = self.prefix.split_at_mut(i * self.stride);
            let prev = &head[(i - 1) * self.stride..];
            tail[..self.stride].copy_from_slice(&prev[..self.stride]);
            bitset::set_bit(&mut tail[..self.stride], order[i - 1].index());
            self.prefix_valid = i + 1;
        }
        let start = lo.max(1);
        let row = &self.prefix[lo * self.stride..(lo + 1) * self.stride];
        match self.stride {
            1 => {
                let mut placed = row[0];
                for &r in &order[lo..start] {
                    placed |= 1u64 << r.index();
                }
                for &r in &order[start..=hi] {
                    if compiled.neighbor_word(r) & placed == 0 {
                        return false;
                    }
                    placed |= 1u64 << r.index();
                }
                true
            }
            BLOCK_WORDS => {
                let mut placed = [row[0], row[1], row[2], row[3]];
                for &r in &order[lo..start] {
                    bitset::set_bit(&mut placed, r.index());
                }
                for &r in &order[start..=hi] {
                    if !block_connects(compiled, r, &placed) {
                        return false;
                    }
                    bitset::set_bit(&mut placed, r.index());
                }
                true
            }
            _ => {
                let (prefix, placed) = (&self.prefix, &mut self.placed);
                placed.copy_from_slice(&prefix[lo * self.stride..(lo + 1) * self.stride]);
                for &r in &order[lo..start] {
                    compiled.set_placed(placed, r);
                }
                for &r in &order[start..=hi] {
                    if !compiled.connects_blocks(r, placed) {
                        return false;
                    }
                    compiled.set_placed(placed, r);
                }
                true
            }
        }
    }
}

/// One-block connectivity test: `rel`'s neighbor row against a stack
/// block, branch-free.
#[inline]
fn block_connects(compiled: &CompiledQuery, rel: RelId, placed: &[u64; BLOCK_WORDS]) -> bool {
    let nb = compiled.neighbor_blocks(rel);
    ((nb[0] & placed[0]) | (nb[1] & placed[1]) | (nb[2] & placed[2]) | (nb[3] & placed[3])) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::JoinEdge;

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(
            n,
            (1..n)
                .map(|i| JoinEdge::from_distincts(i - 1, i, 10.0, 10.0))
                .collect(),
        )
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn chain_orders() {
        let g = chain_graph(4);
        assert!(is_valid(&g, &ids(&[0, 1, 2, 3])));
        assert!(is_valid(&g, &ids(&[2, 1, 3, 0])));
        assert!(is_valid(&g, &ids(&[1, 2, 0, 3])));
        // 0 and 2 are not joined, so (0 2 ...) is invalid.
        assert!(!is_valid(&g, &ids(&[0, 2, 1, 3])));
        assert_eq!(first_invalid_position(&g, &ids(&[0, 2, 1, 3])), Some(1));
    }

    #[test]
    fn empty_and_singleton_valid() {
        let g = chain_graph(3);
        assert!(is_valid(&g, &[]));
        assert!(is_valid(&g, &ids(&[2])));
    }

    #[test]
    fn star_orders() {
        // 0 is the hub joined to 1..4.
        let g = JoinGraph::new(
            5,
            (1..5)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect(),
        );
        assert!(is_valid(&g, &ids(&[0, 3, 1, 4, 2])));
        assert!(is_valid(&g, &ids(&[3, 0, 1, 4, 2])));
        // Two spokes first is a cross product.
        assert!(!is_valid(&g, &ids(&[3, 1, 0, 4, 2])));
    }

    #[test]
    fn checker_matches_free_function_and_resets() {
        let g = chain_graph(5);
        let mut c = ValidityChecker::new(5);
        let good = ids(&[2, 3, 1, 0, 4]);
        let bad = ids(&[2, 4, 3, 1, 0]);
        for _ in 0..3 {
            assert!(c.is_valid(&g, &good));
            assert!(!c.is_valid(&g, &bad));
        }
    }

    #[test]
    fn bitset_checker_matches_free_function() {
        let g = chain_graph(5);
        let cards = vec![10.0; 5];
        let cq = CompiledQuery::from_graph(&g, cards);
        let mut c = BitsetChecker::new(5);
        for order in [
            ids(&[0, 1, 2, 3, 4]),
            ids(&[2, 3, 1, 0, 4]),
            ids(&[2, 4, 3, 1, 0]),
            ids(&[0, 2, 1, 3, 4]),
            ids(&[4]),
            ids(&[]),
        ] {
            assert_eq!(c.is_valid(&cq, &order), is_valid(&g, &order), "{order:?}");
        }
    }

    #[test]
    fn window_valid_matches_full_check_after_window_moves() {
        // Star with hub 0 — most permutations of a window are invalid.
        let g = JoinGraph::new(
            6,
            (1..6)
                .map(|i| JoinEdge::from_distincts(0u32, i as u32, 10.0, 10.0))
                .collect(),
        );
        let cq = CompiledQuery::from_graph(&g, vec![10.0; 6]);
        let mut c = BitsetChecker::new(6);
        let valid = ids(&[2, 0, 1, 4, 3, 5]);
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let mut perturbed = valid.clone();
                perturbed.swap(i, j);
                let (lo, hi) = (i.min(j), i.max(j));
                assert_eq!(
                    c.window_valid(&cq, &perturbed, lo, hi),
                    is_valid(&g, &perturbed),
                    "swap {i} <-> {j}"
                );
            }
        }
    }

    #[test]
    fn suborder_over_component_checked_in_isolation() {
        // Disconnected graph: component {0,1}, component {2,3}.
        let g = JoinGraph::new(
            4,
            vec![
                JoinEdge::from_distincts(0u32, 1u32, 5.0, 5.0),
                JoinEdge::from_distincts(2u32, 3u32, 5.0, 5.0),
            ],
        );
        assert!(is_valid(&g, &ids(&[1, 0])));
        assert!(is_valid(&g, &ids(&[3, 2])));
        // Mixing components forces a cross product -> invalid as one order.
        assert!(!is_valid(&g, &ids(&[0, 1, 2, 3])));
    }
}
