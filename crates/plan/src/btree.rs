//! Mutable arena-backed bushy join trees and their local-search moves.
//!
//! The linear search space is a permutation ([`crate::JoinOrder`]); the
//! bushy space is a binary tree whose internal nodes may join two
//! intermediates. [`TreePlan`] stores such a tree as a flat arena of
//! [`TreeNode`]s indexed by `u32` — no `Box` recursion — so moves mutate a
//! few indices, undo is a snapshot restore, and the cost evaluator can
//! memoize per-node results in parallel arrays.
//!
//! # Arena layout
//!
//! For `k` leaves the arena holds exactly `2k − 1` nodes: leaves at
//! indices `0..k`, internal joins at `k..2k−1`. Every move preserves this
//! arity split (moves relink and relabel nodes, never allocate), which is
//! what makes the steady-state propose → eval → commit loop allocation
//! free.
//!
//! # Validity masks
//!
//! Each node carries two one-block bitsets over relations
//! ([`BlockMask`], a `Copy` `[u64; 4]`, so trees cover queries of up to
//! [`BlockMask::CAPACITY`] = 256 relations while masks stay registers):
//!
//! * `set` — the relations below the node;
//! * `nbr` — the union of [`CompiledQuery::neighbor_block_mask`] over
//!   `set`.
//!
//! A join is cross-product free iff `left.nbr` intersects `right.set`,
//! and two subtrees are disjoint iff `a.set` and `b.set` are — both
//! `O(1)` branch-free block kernels.
//!
//! # Moves
//!
//! [`TreeMove`] lists the four tree perturbations (leaf swap, subtree
//! swap, rotate, reinsert). Application is speculative: the touched paths
//! are snapshotted into an undo log first, masks are refreshed upward, and
//! validity is re-checked along the affected paths; an invalid result is
//! rolled back in `O(path)`. The undo log doubles as the *dirty set* the
//! tree evaluator re-costs — by construction it contains every node whose
//! subtree (and therefore cardinality or accumulated cost) changed,
//! because each move snapshots the full path from every touched node to
//! the root.
//!
//! [`CompiledQuery::neighbor_block_mask`]: ljqo_catalog::CompiledQuery::neighbor_block_mask

use rand::Rng;

use ljqo_catalog::{BlockMask, CompiledQuery, RelId};

/// Sentinel index for "no node" (absent parent/children).
pub const NO_NODE: u32 = u32::MAX;

/// One arena slot: a leaf (`left == NO_NODE`) or an internal join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeNode {
    /// Left (outer) child, or [`NO_NODE`] for a leaf.
    pub left: u32,
    /// Right (inner) child, or [`NO_NODE`] for a leaf.
    pub right: u32,
    /// Parent node, or [`NO_NODE`] for the root.
    pub parent: u32,
    /// The base relation (meaningful for leaves only).
    pub rel: RelId,
    /// Bitset of relations in this subtree.
    pub set: BlockMask,
    /// Union of the compiled neighbor masks of the relations in `set`.
    pub nbr: BlockMask,
}

impl TreeNode {
    /// Whether this node is a base-relation leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NO_NODE
    }

    /// Number of relations in this subtree.
    #[inline]
    pub fn width(&self) -> u32 {
        self.set.count_ones()
    }
}

/// One bushy-tree perturbation, in applied form (indices refer to the
/// arena of the [`TreePlan`] it was proposed on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMove {
    /// Exchange the relations of two leaves (tree shape unchanged).
    LeafSwap {
        /// First leaf index.
        a: u32,
        /// Second leaf index.
        b: u32,
    },
    /// Exchange two disjoint subtrees (neither may be the root).
    SubtreeSwap {
        /// First subtree root.
        a: u32,
        /// Second subtree root.
        b: u32,
    },
    /// Rotate at an internal node: left means `(A, (B, C)) → ((A, B), C)`,
    /// right means `((A, B), C) → (A, (B, C))`. Changes the association
    /// only; the node's own relation set is unchanged.
    Rotate {
        /// The internal node rotated at.
        node: u32,
        /// `true` for a left rotation (right child must be internal),
        /// `false` for a right rotation (left child must be internal).
        left: bool,
    },
    /// Splice subtree `s` out (its former sibling replaces its parent)
    /// and re-join it directly with subtree `t` elsewhere in the tree.
    /// The generalization of the linear space's relation reinsertion.
    Reinsert {
        /// The subtree being moved.
        subtree: u32,
        /// The subtree it is re-joined with.
        dest: u32,
        /// Whether `subtree` becomes the left (outer) operand.
        subtree_left: bool,
    },
}

/// Sampling weights over the tree move kinds (normalized on use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeMoveSet {
    /// Weight of [`TreeMove::LeafSwap`].
    pub leaf_swap: f64,
    /// Weight of [`TreeMove::SubtreeSwap`].
    pub subtree_swap: f64,
    /// Weight of [`TreeMove::Rotate`].
    pub rotate: f64,
    /// Weight of [`TreeMove::Reinsert`].
    pub reinsert: f64,
}

impl Default for TreeMoveSet {
    fn default() -> Self {
        TreeMoveSet {
            leaf_swap: 0.3,
            subtree_swap: 0.25,
            rotate: 0.2,
            reinsert: 0.25,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TreeMoveKind {
    LeafSwap,
    SubtreeSwap,
    Rotate,
    Reinsert,
}

impl TreeMoveSet {
    fn sample_kind<R: Rng + ?Sized>(&self, rng: &mut R) -> TreeMoveKind {
        let total = self.leaf_swap + self.subtree_swap + self.rotate + self.reinsert;
        debug_assert!(total > 0.0, "all tree move weights are zero");
        let mut x = rng.gen::<f64>() * total;
        x -= self.leaf_swap;
        if x < 0.0 {
            return TreeMoveKind::LeafSwap;
        }
        x -= self.subtree_swap;
        if x < 0.0 {
            return TreeMoveKind::SubtreeSwap;
        }
        x -= self.rotate;
        if x < 0.0 {
            return TreeMoveKind::Rotate;
        }
        TreeMoveKind::Reinsert
    }
}

/// A mutable bushy join tree over one join-graph component.
///
/// See the [module docs](self) for the arena layout and the move
/// protocol. The expected usage loop is
/// [`propose`](TreePlan::propose) → evaluate (via the cost crate's tree
/// evaluator) → [`accept`](TreePlan::accept) or
/// [`undo_last`](TreePlan::undo_last).
#[derive(Debug, Clone)]
pub struct TreePlan {
    nodes: Vec<TreeNode>,
    root: u32,
    n_leaves: usize,
    /// Snapshot log of the pending (applied, unresolved) move:
    /// `(index, pre-move node)` pairs, plus the pre-move root. Restoring
    /// in reverse order is duplicate-safe.
    undo: Vec<(u32, TreeNode)>,
    undo_root: u32,
    /// Scratch for [`TreePlan::dirty_nodes`].
    dirty: Vec<u32>,
    max_retries: usize,
}

impl TreePlan {
    /// Build the left-deep tree for a join order: the embedding of the
    /// linear space into the bushy one, so any linear search result can
    /// seed (or fall back from) a tree search.
    ///
    /// Panics on an empty order; trees require `compiled` to cover at
    /// most [`BlockMask::CAPACITY`] relations (one-block bitsets,
    /// debug-asserted).
    pub fn from_order(compiled: &CompiledQuery, rels: &[RelId]) -> TreePlan {
        assert!(!rels.is_empty(), "empty join order");
        debug_assert!(
            compiled.n_relations() <= BlockMask::CAPACITY,
            "tree plans require <= {} relations",
            BlockMask::CAPACITY
        );
        let k = rels.len();
        let n_nodes = 2 * k - 1;
        let mut nodes = Vec::with_capacity(n_nodes);
        for &r in rels {
            nodes.push(TreeNode {
                left: NO_NODE,
                right: NO_NODE,
                parent: NO_NODE,
                rel: r,
                set: BlockMask::singleton(r.index()),
                nbr: compiled.neighbor_block_mask(r),
            });
        }
        let mut prev = 0u32;
        for (i, _) in rels.iter().enumerate().skip(1) {
            let id = (k + i - 1) as u32;
            let leaf = i as u32;
            let set = nodes[prev as usize].set.union(&nodes[leaf as usize].set);
            let nbr = nodes[prev as usize].nbr.union(&nodes[leaf as usize].nbr);
            nodes.push(TreeNode {
                left: prev,
                right: leaf,
                parent: NO_NODE,
                rel: rels[0], // internal nodes carry no relation
                set,
                nbr,
            });
            nodes[prev as usize].parent = id;
            nodes[leaf as usize].parent = id;
            prev = id;
        }
        Self::finish_build(nodes, prev, k)
    }

    /// Build an arbitrary tree shape: `leaves` fills arena slots `0..k`,
    /// and `joins[i]` names the two children of internal node `k + i`
    /// (children may be leaves or earlier internals). The last join is
    /// the root. This is how recursive tree shapes (the core crate's
    /// `BushyTree`, e.g. exact-DP results), flattened by the caller,
    /// enter the arena world.
    ///
    /// Panics if the joins do not describe a single binary tree over
    /// exactly the given leaves.
    pub fn from_joins(
        compiled: &CompiledQuery,
        leaves: &[RelId],
        joins: &[(u32, u32)],
    ) -> TreePlan {
        assert!(!leaves.is_empty(), "empty leaf set");
        assert_eq!(
            joins.len(),
            leaves.len() - 1,
            "a tree over k leaves has k-1 joins"
        );
        debug_assert!(
            compiled.n_relations() <= BlockMask::CAPACITY,
            "tree plans require <= {} relations",
            BlockMask::CAPACITY
        );
        let k = leaves.len();
        let n_nodes = 2 * k - 1;
        let mut nodes = Vec::with_capacity(n_nodes);
        for &r in leaves {
            nodes.push(TreeNode {
                left: NO_NODE,
                right: NO_NODE,
                parent: NO_NODE,
                rel: r,
                set: BlockMask::singleton(r.index()),
                nbr: compiled.neighbor_block_mask(r),
            });
        }
        for (i, &(l, r)) in joins.iter().enumerate() {
            let id = (k + i) as u32;
            assert!(
                (l as usize) < nodes.len() && (r as usize) < nodes.len() && l != r,
                "join {i} references unknown or identical children"
            );
            assert!(
                nodes[l as usize].parent == NO_NODE && nodes[r as usize].parent == NO_NODE,
                "join {i} reuses a child that already has a parent"
            );
            let set = nodes[l as usize].set.union(&nodes[r as usize].set);
            let nbr = nodes[l as usize].nbr.union(&nodes[r as usize].nbr);
            nodes.push(TreeNode {
                left: l,
                right: r,
                parent: NO_NODE,
                rel: leaves[0],
                set,
                nbr,
            });
            nodes[l as usize].parent = id;
            nodes[r as usize].parent = id;
        }
        let root = (n_nodes - 1) as u32;
        assert!(
            nodes
                .iter()
                .enumerate()
                .all(|(i, n)| n.parent != NO_NODE || i as u32 == root),
            "joins do not form a single tree"
        );
        Self::finish_build(nodes, root, k)
    }

    fn finish_build(nodes: Vec<TreeNode>, root: u32, k: usize) -> TreePlan {
        let n_nodes = nodes.len();
        TreePlan {
            nodes,
            root,
            n_leaves: k,
            undo: Vec::with_capacity(4 * n_nodes + 4),
            undo_root: root,
            dirty: Vec::with_capacity(n_nodes),
            max_retries: 64.max(4 * k),
        }
    }

    /// Number of base relations (leaves).
    #[inline]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Total arena size (`2·n_leaves − 1`).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The root node index.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The node at `id`.
    #[inline]
    pub fn node(&self, id: u32) -> &TreeNode {
        &self.nodes[id as usize]
    }

    /// Whether a move is currently applied but unresolved.
    #[inline]
    pub fn has_pending(&self) -> bool {
        !self.undo.is_empty()
    }

    /// Overwrite this plan with `other`'s state, reusing buffers
    /// (both must be resolved — no pending move).
    pub fn copy_from(&mut self, other: &TreePlan) {
        debug_assert!(self.undo.is_empty() && other.undo.is_empty());
        self.nodes.clone_from(&other.nodes);
        self.root = other.root;
        self.n_leaves = other.n_leaves;
        self.undo_root = other.undo_root;
        self.max_retries = other.max_retries;
    }

    /// The leaves left to right — the in-order relation sequence. For a
    /// left-deep tree this is exactly the join order it was built from.
    pub fn leaves(&self) -> Vec<RelId> {
        let mut out = Vec::with_capacity(self.n_leaves);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id as usize];
            if n.is_leaf() {
                out.push(n.rel);
            } else {
                // Right pushed first so the left child pops first.
                stack.push(n.right);
                stack.push(n.left);
            }
        }
        out
    }

    /// Whether every internal join has at least one join edge crossing
    /// its operands (no cross products). `O(n)` using the masks.
    pub fn is_cross_product_free(&self) -> bool {
        self.nodes.iter().all(|n| {
            n.is_leaf()
                || self.nodes[n.left as usize]
                    .nbr
                    .intersects(&self.nodes[n.right as usize].set)
        })
    }

    /// Full structural audit for tests and debug assertions: parent/child
    /// links are mutually consistent, the arity split (leaves `0..k`) is
    /// intact, every node is reachable from the root exactly once, and
    /// the `set`/`nbr` masks equal a from-scratch bottom-up recompute.
    pub fn audit(&self, compiled: &CompiledQuery) -> Result<(), String> {
        let k = self.n_leaves;
        if self.nodes.len() != 2 * k - 1 {
            return Err(format!(
                "arena has {} nodes, want {}",
                self.nodes.len(),
                2 * k - 1
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let is_leaf_slot = i < k;
            if n.is_leaf() != is_leaf_slot {
                return Err(format!("node {i}: arity does not match its arena slot"));
            }
            if n.is_leaf() != (n.right == NO_NODE) {
                return Err(format!("node {i}: half-leaf (one child set)"));
            }
            if !n.is_leaf() {
                for c in [n.left, n.right] {
                    if self.nodes[c as usize].parent != i as u32 {
                        return Err(format!("node {i}: child {c} does not point back"));
                    }
                }
            }
            if n.parent == NO_NODE && i as u32 != self.root {
                return Err(format!("node {i}: orphan that is not the root"));
            }
        }
        if self.nodes[self.root as usize].parent != NO_NODE {
            return Err("root has a parent".into());
        }
        // Reachability + mask recompute, children before parents.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut post = Vec::with_capacity(self.nodes.len());
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id as usize], true) {
                return Err(format!("node {id} reachable twice (cycle or diamond)"));
            }
            post.push(id);
            let n = &self.nodes[id as usize];
            if !n.is_leaf() {
                stack.push(n.left);
                stack.push(n.right);
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("unreachable arena nodes".into());
        }
        for &id in post.iter().rev() {
            let n = &self.nodes[id as usize];
            let (set, nbr) = if n.is_leaf() {
                (
                    BlockMask::singleton(n.rel.index()),
                    compiled.neighbor_block_mask(n.rel),
                )
            } else {
                let l = &self.nodes[n.left as usize];
                let r = &self.nodes[n.right as usize];
                (l.set.union(&r.set), l.nbr.union(&r.nbr))
            };
            if n.set != set || n.nbr != nbr {
                return Err(format!("node {id}: stale masks"));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Move application internals
    // ------------------------------------------------------------------

    /// Snapshot `id` and every ancestor into the undo log. Every move
    /// calls this for each node it touches *before* mutating, which both
    /// enables rollback and over-approximates the evaluator's dirty set
    /// (cost totals accumulate upward, so ancestors always need
    /// re-costing even when their masks are unchanged).
    fn snapshot_path(&mut self, mut id: u32) {
        while id != NO_NODE {
            self.undo.push((id, self.nodes[id as usize]));
            id = self.nodes[id as usize].parent;
        }
    }

    /// Recompute `set`/`nbr` from `id` up to the root. Where two changed
    /// paths share ancestors, refresh the paths one after the other: the
    /// second pass sees the first path's final values.
    fn refresh_up(&mut self, mut id: u32) {
        while id != NO_NODE {
            let n = self.nodes[id as usize];
            if !n.is_leaf() {
                let l = &self.nodes[n.left as usize];
                let (ls, ln) = (l.set, l.nbr);
                let r = &self.nodes[n.right as usize];
                let (rs, rn) = (r.set, r.nbr);
                let m = &mut self.nodes[id as usize];
                m.set = ls.union(&rs);
                m.nbr = ln.union(&rn);
            }
            id = n.parent;
        }
    }

    /// Whether every join from `id` up to the root is cross-product free.
    /// Must run after all mask refreshes of the move.
    fn path_valid(&self, mut id: u32) -> bool {
        while id != NO_NODE {
            let n = &self.nodes[id as usize];
            if !n.is_leaf()
                && !self.nodes[n.left as usize]
                    .nbr
                    .intersects(&self.nodes[n.right as usize].set)
            {
                return false;
            }
            id = n.parent;
        }
        true
    }

    fn replace_child(&mut self, parent: u32, old: u32, new: u32) {
        let p = &mut self.nodes[parent as usize];
        if p.left == old {
            p.left = new;
        } else {
            debug_assert_eq!(p.right, old);
            p.right = new;
        }
    }

    fn apply_leaf_swap(&mut self, a: u32, b: u32) -> bool {
        self.undo_root = self.root;
        self.snapshot_path(a);
        self.snapshot_path(b);
        {
            // Split the borrow to swap the relation payloads in place.
            let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
            let (head, tail) = self.nodes.split_at_mut(hi);
            let (x, y) = (&mut head[lo], &mut tail[0]);
            std::mem::swap(&mut x.rel, &mut y.rel);
            std::mem::swap(&mut x.set, &mut y.set);
            std::mem::swap(&mut x.nbr, &mut y.nbr);
        }
        let pa = self.nodes[a as usize].parent;
        let pb = self.nodes[b as usize].parent;
        self.refresh_up(pa);
        self.refresh_up(pb);
        self.path_valid(pa) && self.path_valid(pb)
    }

    fn apply_subtree_swap(&mut self, a: u32, b: u32) -> bool {
        self.undo_root = self.root;
        self.snapshot_path(a);
        self.snapshot_path(b);
        let pa = self.nodes[a as usize].parent;
        let pb = self.nodes[b as usize].parent;
        if pa == pb {
            // Siblings: exchanging outer and inner. Masks are unchanged
            // everywhere; only the parent's operand roles (and thus its
            // cost) change.
            let p = &mut self.nodes[pa as usize];
            std::mem::swap(&mut p.left, &mut p.right);
            return true;
        }
        self.replace_child(pa, a, b);
        self.replace_child(pb, b, a);
        self.nodes[a as usize].parent = pb;
        self.nodes[b as usize].parent = pa;
        self.refresh_up(pa);
        self.refresh_up(pb);
        self.path_valid(pa) && self.path_valid(pb)
    }

    fn apply_rotate(&mut self, node: u32, left: bool) -> bool {
        self.undo_root = self.root;
        // The whole path to the root is cost-dirty (totals accumulate),
        // even though masks above `node` are unchanged.
        self.snapshot_path(node);
        let n = self.nodes[node as usize];
        if left {
            // (A, m=(B, C)) → (m'=(A, B), C), reusing m's arena slot.
            let m = n.right;
            let (a, mn) = (n.left, self.nodes[m as usize]);
            let (b, c) = (mn.left, mn.right);
            self.undo.push((m, mn));
            self.undo.push((a, self.nodes[a as usize]));
            self.undo.push((c, self.nodes[c as usize]));
            {
                let nn = &mut self.nodes[node as usize];
                nn.left = m;
                nn.right = c;
            }
            {
                let mm = &mut self.nodes[m as usize];
                mm.left = a;
                mm.right = b;
            }
            self.nodes[a as usize].parent = m;
            self.nodes[c as usize].parent = node;
            // b keeps parent m; m keeps parent node.
            self.refresh_up(m);
            self.path_valid(m)
        } else {
            // (m=(A, B), C) → (A, m'=(B, C)).
            let m = n.left;
            let (c, mn) = (n.right, self.nodes[m as usize]);
            let (a, b) = (mn.left, mn.right);
            self.undo.push((m, mn));
            self.undo.push((a, self.nodes[a as usize]));
            self.undo.push((c, self.nodes[c as usize]));
            {
                let nn = &mut self.nodes[node as usize];
                nn.left = a;
                nn.right = m;
            }
            {
                let mm = &mut self.nodes[m as usize];
                mm.left = b;
                mm.right = c;
            }
            self.nodes[a as usize].parent = node;
            self.nodes[c as usize].parent = m;
            self.refresh_up(m);
            self.path_valid(m)
        }
    }

    fn apply_reinsert(&mut self, s: u32, t: u32, s_on_left: bool) -> bool {
        self.undo_root = self.root;
        // Pre-move paths from both touched subtrees cover every node that
        // loses or gains `s` (the insertion point's pre-move ancestors are
        // exactly its post-move ones, minus the spliced-out parent).
        self.snapshot_path(s);
        self.snapshot_path(t);
        let p = self.nodes[s as usize].parent;
        let pn = self.nodes[p as usize];
        let sib = if pn.left == s { pn.right } else { pn.left };
        self.undo.push((sib, self.nodes[sib as usize]));
        let g = pn.parent;
        // Splice p (and with it, s) out: sib takes p's place.
        self.nodes[sib as usize].parent = g;
        if g == NO_NODE {
            self.root = sib;
        } else {
            self.replace_child(g, p, sib);
        }
        // Re-insert p above t. Read t's parent *after* the splice: when
        // t == sib its parent just changed.
        let tp = self.nodes[t as usize].parent;
        if tp == NO_NODE {
            self.nodes[p as usize].parent = NO_NODE;
            self.root = p;
        } else {
            self.replace_child(tp, t, p);
            self.nodes[p as usize].parent = tp;
        }
        {
            let pm = &mut self.nodes[p as usize];
            if s_on_left {
                pm.left = s;
                pm.right = t;
            } else {
                pm.left = t;
                pm.right = s;
            }
        }
        self.nodes[t as usize].parent = p;
        debug_assert_eq!(self.nodes[s as usize].parent, p);
        // Two-pass refresh: the splice side first, then the insertion
        // side (which re-fixes any shared ancestors).
        if g != NO_NODE {
            self.refresh_up(g);
        }
        self.refresh_up(p);
        (g == NO_NODE || self.path_valid(g)) && self.path_valid(p)
    }

    /// Roll back the pending move, restoring every snapshotted node and
    /// the root pointer. No-op when nothing is pending.
    pub fn undo_last(&mut self) {
        while let Some((id, node)) = self.undo.pop() {
            self.nodes[id as usize] = node;
        }
        self.root = self.undo_root;
    }

    /// Resolve the pending move as accepted (clears the undo log).
    pub fn accept(&mut self) {
        self.undo.clear();
    }

    /// The nodes whose memoized cardinality or accumulated cost may have
    /// changed under the pending move, deduplicated and ordered children
    /// before parents (by subtree width — a strict topological order,
    /// since a child's relation set is a strict subset of its parent's).
    ///
    /// Only meaningful between a successful [`TreePlan::propose`] and the
    /// resolving [`accept`](TreePlan::accept) /
    /// [`undo_last`](TreePlan::undo_last).
    pub fn dirty_nodes(&mut self) -> &[u32] {
        self.dirty.clear();
        for &(id, _) in &self.undo {
            self.dirty.push(id);
        }
        let nodes = &self.nodes;
        self.dirty
            .sort_unstable_by_key(|&id| (nodes[id as usize].width(), id));
        self.dirty.dedup();
        &self.dirty
    }

    /// Sample, apply and validate one random move. Invalid proposals
    /// (cross products, structural preconditions) are undone internally
    /// and retried up to `max(64, 4·n_leaves)` times. On success the move
    /// is left **applied but pending** — the caller evaluates it and then
    /// calls [`accept`](TreePlan::accept) or
    /// [`undo_last`](TreePlan::undo_last).
    ///
    /// Returns the move and the number of sampling attempts (≥ 1), so
    /// budgets can charge for the rejected proposals exactly like the
    /// linear [`MoveGenerator::propose_counted`] path does. `None` when
    /// the component has no perturbable neighborhood (fewer than two
    /// leaves) or every retry failed.
    ///
    /// [`MoveGenerator::propose_counted`]: crate::MoveGenerator::propose_counted
    pub fn propose<R: Rng + ?Sized>(
        &mut self,
        moves: &TreeMoveSet,
        rng: &mut R,
    ) -> Option<(TreeMove, u32)> {
        debug_assert!(self.undo.is_empty(), "unresolved pending move");
        if self.n_leaves < 2 {
            return None;
        }
        let k = self.n_leaves as u32;
        let n_nodes = self.nodes.len() as u32;
        for attempt in 1..=self.max_retries as u32 {
            let applied = match moves.sample_kind(rng) {
                TreeMoveKind::LeafSwap => {
                    let a = rng.gen_range(0..k);
                    let mut b = rng.gen_range(0..k - 1);
                    if b >= a {
                        b += 1;
                    }
                    Some((TreeMove::LeafSwap { a, b }, self.apply_leaf_swap(a, b)))
                }
                TreeMoveKind::SubtreeSwap => {
                    let a = rng.gen_range(0..n_nodes);
                    let b = rng.gen_range(0..n_nodes);
                    if a == b
                        || a == self.root
                        || b == self.root
                        || self.nodes[a as usize]
                            .set
                            .intersects(&self.nodes[b as usize].set)
                    {
                        None
                    } else {
                        Some((
                            TreeMove::SubtreeSwap { a, b },
                            self.apply_subtree_swap(a, b),
                        ))
                    }
                }
                TreeMoveKind::Rotate => {
                    if k < 3 {
                        None
                    } else {
                        let node = k + rng.gen_range(0..k - 1);
                        let left = rng.gen::<bool>();
                        let n = &self.nodes[node as usize];
                        let pivot = if left { n.right } else { n.left };
                        if self.nodes[pivot as usize].is_leaf() {
                            None
                        } else {
                            Some((
                                TreeMove::Rotate { node, left },
                                self.apply_rotate(node, left),
                            ))
                        }
                    }
                }
                TreeMoveKind::Reinsert => {
                    let s = rng.gen_range(0..n_nodes);
                    let t = rng.gen_range(0..n_nodes);
                    let s_on_left = rng.gen::<bool>();
                    if s == self.root
                        || t == s
                        || self.nodes[s as usize]
                            .set
                            .intersects(&self.nodes[t as usize].set)
                    {
                        None
                    } else {
                        Some((
                            TreeMove::Reinsert {
                                subtree: s,
                                dest: t,
                                subtree_left: s_on_left,
                            },
                            self.apply_reinsert(s, t, s_on_left),
                        ))
                    }
                }
            };
            match applied {
                Some((mv, true)) => return Some((mv, attempt)),
                Some((_, false)) => self.undo_last(),
                None => {} // precondition failed before any mutation
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn from_order_builds_a_left_deep_tree() {
        let q = chain_query();
        let compiled = CompiledQuery::new(&q);
        let t = TreePlan::from_order(&compiled, &ids(&[0, 1, 2, 3, 4]));
        assert_eq!(t.n_leaves(), 5);
        assert_eq!(t.n_nodes(), 9);
        assert_eq!(t.leaves(), ids(&[0, 1, 2, 3, 4]));
        assert!(t.is_cross_product_free());
        t.audit(&compiled).unwrap();
    }

    #[test]
    fn from_joins_builds_a_balanced_tree() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .relation("d", 40)
            .join("a", "b", 0.1)
            .join("b", "c", 0.1)
            .join("c", "d", 0.1)
            .build()
            .unwrap();
        let compiled = CompiledQuery::new(&q);
        // ((a ⋈ b) ⋈ (c ⋈ d))
        let t = TreePlan::from_joins(&compiled, &ids(&[0, 1, 2, 3]), &[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(t.leaves(), ids(&[0, 1, 2, 3]));
        assert!(t.is_cross_product_free());
        t.audit(&compiled).unwrap();
        assert!(!t.node(t.root()).is_leaf());
    }

    #[test]
    fn singleton_tree_has_no_moves() {
        let q = chain_query();
        let compiled = CompiledQuery::new(&q);
        let mut t = TreePlan::from_order(&compiled, &ids(&[2]));
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(t.propose(&TreeMoveSet::default(), &mut rng).is_none());
        assert_eq!(t.leaves(), ids(&[2]));
    }

    #[test]
    fn moves_preserve_invariants_and_undo_restores() {
        let q = chain_query();
        let compiled = CompiledQuery::new(&q);
        let mut t = TreePlan::from_order(&compiled, &ids(&[0, 1, 2, 3, 4]));
        let mut rng = SmallRng::seed_from_u64(0xbee);
        let moves = TreeMoveSet::default();
        let mut leaves_sorted = t.leaves();
        leaves_sorted.sort_unstable();
        for i in 0..500 {
            let before = t.clone();
            let Some((mv, attempts)) = t.propose(&moves, &mut rng) else {
                panic!("no move proposable at iteration {i}");
            };
            assert!(attempts >= 1);
            // The applied state is structurally sound and CP-free.
            let dirty: Vec<u32> = t.dirty_nodes().to_vec();
            assert!(!dirty.is_empty(), "{mv:?} dirtied nothing");
            assert!(dirty.contains(&t.root()), "{mv:?} did not dirty the root");
            t.accept();
            t.audit(&compiled).unwrap_or_else(|e| panic!("{mv:?}: {e}"));
            assert!(t.is_cross_product_free(), "{mv:?} broke validity");
            let mut ls = t.leaves();
            ls.sort_unstable();
            assert_eq!(ls, leaves_sorted, "{mv:?} lost a leaf");
            // Undo on a fresh copy restores the original exactly.
            let mut u = before.clone();
            let mv2 = u.propose(&moves, &mut SmallRng::seed_from_u64(0xf00d + i));
            if mv2.is_some() {
                u.undo_last();
                assert_eq!(u.leaves(), before.leaves());
                u.audit(&compiled).unwrap();
            }
        }
    }

    #[test]
    fn sibling_subtree_swap_flips_operands() {
        let q = chain_query();
        let compiled = CompiledQuery::new(&q);
        let mut t = TreePlan::from_order(&compiled, &ids(&[0, 1, 2]));
        // Root (id 6? no: k=3 → nodes 0..5, root=4) joins node 3 and leaf 2.
        let root = t.root();
        let (l, r) = (t.node(root).left, t.node(root).right);
        assert!(t.apply_subtree_swap(l, r));
        assert_eq!(t.node(root).left, r);
        assert_eq!(t.node(root).right, l);
        t.accept();
        t.audit(&compiled).unwrap();
    }

    #[test]
    fn rotate_changes_association_only() {
        let q = chain_query();
        let compiled = CompiledQuery::new(&q);
        // Left-deep ((a b) c): rotate right at the root gives (a (b c)).
        let mut t = TreePlan::from_order(&compiled, &ids(&[0, 1, 2]));
        let root = t.root();
        let set_before = t.node(root).set;
        assert!(t.apply_rotate(root, false));
        t.accept();
        assert_eq!(t.node(root).set, set_before);
        t.audit(&compiled).unwrap();
        assert!(t.is_cross_product_free());
    }

    #[test]
    fn cross_product_moves_are_rejected() {
        // Chain a-b-c: putting a next to c is a cross product; propose
        // must never return such a state.
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .join("a", "b", 0.1)
            .join("b", "c", 0.1)
            .build()
            .unwrap();
        let compiled = CompiledQuery::new(&q);
        let mut t = TreePlan::from_order(&compiled, &ids(&[0, 1, 2]));
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            if t.propose(&TreeMoveSet::default(), &mut rng).is_some() {
                assert!(t.is_cross_product_free());
                t.accept();
            }
        }
    }
}
