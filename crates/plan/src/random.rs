//! Random valid state generation.
//!
//! Iterative improvement and simulated annealing both need uniformly-ish
//! distributed *valid* start states. Following SG88 we grow a random valid
//! permutation: pick a random first relation from the component, then
//! repeatedly pick a random relation from the frontier (relations joined to
//! something already placed). Every valid order of the component has
//! non-zero probability.

use rand::Rng;

use ljqo_catalog::{JoinGraph, RelId};

use crate::order::JoinOrder;

/// Generate a random valid join order over `component` (a set of relations
/// forming one connected component of `graph`).
///
/// Panics if `component` is empty. If `component` is not actually
/// connected, the returned order covers only the relations reachable from
/// the randomly chosen first relation (callers pass real components, so
/// this is a debug-time concern; a `debug_assert` guards it).
pub fn random_valid_order<R: Rng + ?Sized>(
    graph: &JoinGraph,
    component: &[RelId],
    rng: &mut R,
) -> JoinOrder {
    assert!(!component.is_empty(), "empty component");
    let mut in_component = vec![false; graph.n_relations()];
    for &r in component {
        in_component[r.index()] = true;
    }
    let mut placed = vec![false; graph.n_relations()];
    let mut order = Vec::with_capacity(component.len());
    let first = component[rng.gen_range(0..component.len())];
    placed[first.index()] = true;
    order.push(first);

    // Frontier: unplaced relations joined to at least one placed relation.
    let mut frontier: Vec<RelId> = Vec::with_capacity(component.len());
    let mut in_frontier = vec![false; graph.n_relations()];
    let extend_frontier =
        |r: RelId, placed: &[bool], frontier: &mut Vec<RelId>, in_frontier: &mut Vec<bool>| {
            for &eid in graph.incident(r) {
                if let Some(o) = graph.edge(eid).other(r) {
                    if in_component[o.index()] && !placed[o.index()] && !in_frontier[o.index()] {
                        in_frontier[o.index()] = true;
                        frontier.push(o);
                    }
                }
            }
        };
    extend_frontier(first, &placed, &mut frontier, &mut in_frontier);

    while !frontier.is_empty() {
        let pick = rng.gen_range(0..frontier.len());
        let r = frontier.swap_remove(pick);
        in_frontier[r.index()] = false;
        placed[r.index()] = true;
        order.push(r);
        extend_frontier(r, &placed, &mut frontier, &mut in_frontier);
    }
    debug_assert_eq!(
        order.len(),
        component.len(),
        "component was not connected; produced a partial order"
    );
    JoinOrder::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::is_valid;
    use ljqo_catalog::JoinEdge;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn chain_graph(n: usize) -> JoinGraph {
        JoinGraph::new(
            n,
            (1..n)
                .map(|i| JoinEdge::from_distincts(i - 1, i, 10.0, 10.0))
                .collect(),
        )
    }

    #[test]
    fn generated_orders_are_valid_permutations() {
        let g = chain_graph(10);
        let comp: Vec<RelId> = (0..10u32).map(RelId).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let o = random_valid_order(&g, &comp, &mut rng);
            assert_eq!(o.len(), 10);
            assert!(is_valid(&g, o.rels()));
        }
    }

    #[test]
    fn all_valid_orders_reachable_on_small_chain() {
        // Chain of 3 has exactly 4 valid orders:
        // (0 1 2), (1 0 2), (1 2 0), (2 1 0).
        let g = chain_graph(3);
        let comp: Vec<RelId> = (0..3u32).map(RelId).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let o = random_valid_order(&g, &comp, &mut rng);
            seen.insert(o.rels().to_vec());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn singleton_component() {
        let g = JoinGraph::new(3, vec![JoinEdge::from_distincts(0u32, 1u32, 2.0, 2.0)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let o = random_valid_order(&g, &[RelId(2)], &mut rng);
        assert_eq!(o.rels(), &[RelId(2)]);
    }

    #[test]
    fn respects_component_boundary() {
        // Two components; generating over one must not leak into the other.
        let g = JoinGraph::new(
            4,
            vec![
                JoinEdge::from_distincts(0u32, 1u32, 2.0, 2.0),
                JoinEdge::from_distincts(2u32, 3u32, 2.0, 2.0),
            ],
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let o = random_valid_order(&g, &[RelId(0), RelId(1)], &mut rng);
            assert_eq!(o.len(), 2);
            assert!(o.rels().iter().all(|r| r.index() < 2));
        }
    }
}
