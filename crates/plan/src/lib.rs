//! # ljqo-plan — the solution space of outer linear join trees
//!
//! The paper restricts the search to *outer linear join trees*: every join
//! has a base relation as its inner operand, so a tree is equivalent to a
//! permutation of the joining relations. This crate provides:
//!
//! * [`JoinOrder`] — a permutation of (a subset of) the query's relations,
//! * [`JoinTree`] — the equivalent explicit tree, for display and
//!   explanation,
//! * [`Plan`] — a full query plan: one join order per connected component
//!   of the join graph, with late cross products between components (the
//!   paper's "postpone cross-products" heuristic),
//! * validity checking ([`validity`]) — an order is *valid* when every
//!   relation after the first joins with at least one earlier relation, so
//!   no cross product is needed inside a component,
//! * the move set ([`moves`]) used by iterative improvement and simulated
//!   annealing, following Swami & Gupta (SIGMOD 1988): adjacent swaps,
//!   arbitrary swaps, 3-cycles, and single-relation reinsertions, all
//!   filtered for validity,
//! * a random valid state generator ([`random`]),
//! * the **bushy** search space ([`btree`]) that lifts the paper's
//!   linear-tree restriction: arena-backed mutable trees ([`TreePlan`])
//!   with their own move catalog ([`TreeMove`]), validity-checked through
//!   the same compiled bitset masks.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod btree;
pub mod moves;
mod order;
pub mod random;
mod tree;
pub mod validity;

pub use btree::{TreeMove, TreeMoveSet, TreeNode, TreePlan, NO_NODE};
pub use moves::{Move, MoveGenerator, MoveKind, MoveSet};
pub use order::{JoinOrder, Plan};
pub use random::random_valid_order;
pub use tree::JoinTree;
pub use validity::BitsetChecker;
