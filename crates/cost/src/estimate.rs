//! Cardinality estimation for join orders.
//!
//! Classical System-R-style estimation under independence and uniformity:
//! joining the running intermediate (over placed relations `S`) with a new
//! inner relation `j` multiplies the cardinality by `N_j` and by the
//! selectivities of **all** join predicates between `j` and `S`. A relation
//! with no predicate into `S` contributes a cross product (selectivity 1).

use ljqo_catalog::{Query, RelId};

use crate::CARD_CLAMP;

/// Clamp a running cardinality into `(0, CARD_CLAMP]`.
///
/// The upper clamp prevents products of many large relations from
/// overflowing `f64`. There is deliberately **no floor at one tuple**:
/// expected cardinalities below 1 are legitimate estimates, and flooring
/// them per step would make the running cardinality depend on the path
/// taken through a relation set — breaking the optimal substructure that
/// the dynamic-programming baseline relies on (the cost of a set must be
/// extendable independently of the order that produced it).
#[inline]
pub fn clamp_card(card: f64) -> f64 {
    card.clamp(f64::MIN_POSITIVE, CARD_CLAMP)
}

/// Combined selectivity of all join predicates between `rel` and the
/// relations marked in `placed`, or `None` if there is no predicate (cross
/// product).
pub fn selectivity_into(query: &Query, rel: RelId, placed: &[bool]) -> Option<f64> {
    let graph = query.graph();
    let mut sel: Option<f64> = None;
    for &eid in graph.incident(rel) {
        let e = graph.edge(eid);
        if let Some(o) = e.other(rel) {
            if placed[o.index()] {
                *sel.get_or_insert(1.0) *= e.selectivity;
            }
        }
    }
    sel
}

/// One step of a left-deep walk: statistics of the join that adds `inner`
/// to an intermediate of size `outer_card`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinStep {
    /// The inner relation being added.
    pub inner: RelId,
    /// Cardinality of the outer (intermediate) operand.
    pub outer_card: f64,
    /// Cardinality of the inner base relation.
    pub inner_card: f64,
    /// Estimated output cardinality.
    pub output_card: f64,
    /// Whether this step is a cross product (no predicate into `S`).
    pub is_cross_product: bool,
}

/// Iterator-style walker producing the [`JoinStep`] sequence of an order.
///
/// Reused by the cost evaluator (hot path), the local-improvement
/// heuristic, and the executor comparison tests.
#[derive(Debug)]
pub struct SizeWalker {
    placed: Vec<bool>,
}

impl SizeWalker {
    /// Create a walker for queries with up to `n_relations` relations.
    pub fn new(n_relations: usize) -> Self {
        SizeWalker {
            placed: vec![false; n_relations],
        }
    }

    /// Walk `order`, invoking `f` for every join step (i.e. for every
    /// relation after the first). Returns the final result cardinality.
    ///
    /// The walker resets its internal state afterwards, so it can be reused
    /// without reallocation.
    pub fn walk<F: FnMut(&JoinStep)>(&mut self, query: &Query, order: &[RelId], mut f: F) -> f64 {
        let mut iter = order.iter();
        let Some(&first) = iter.next() else {
            return 0.0;
        };
        self.placed[first.index()] = true;
        let mut card = clamp_card(query.cardinality(first));
        for &inner in iter {
            let inner_card = query.cardinality(inner);
            let sel = selectivity_into(query, inner, &self.placed);
            let output = clamp_card(card * inner_card * sel.unwrap_or(1.0));
            f(&JoinStep {
                inner,
                outer_card: card,
                inner_card,
                output_card: output,
                is_cross_product: sel.is_none(),
            });
            card = output;
            self.placed[inner.index()] = true;
        }
        for &r in order {
            self.placed[r.index()] = false;
        }
        card
    }
}

/// The estimated sizes of all intermediate results of `order` (one entry
/// per join, i.e. `order.len() - 1` entries).
pub fn intermediate_sizes(query: &Query, order: &[RelId]) -> Vec<f64> {
    let mut sizes = Vec::with_capacity(order.len().saturating_sub(1));
    let mut w = SizeWalker::new(query.n_relations());
    w.walk(query, order, |s| sizes.push(s.output_card));
    sizes
}

/// Estimated size of the final join result over `component`.
///
/// Order-independent: `∏ N_i · ∏ J_e` over the relations and all edges
/// inside the component.
pub fn final_result_size(query: &Query, component: &[RelId]) -> f64 {
    let mut in_comp = vec![false; query.n_relations()];
    for &r in component {
        in_comp[r.index()] = true;
    }
    let mut size: f64 = component.iter().map(|&r| query.cardinality(r)).product();
    size = clamp_card(size);
    for e in query.graph().edges() {
        if in_comp[e.a.index()] && in_comp[e.b.index()] {
            size = clamp_card(size * e.selectivity);
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn triangle() -> Query {
        // a(100) - b(200) - c(50), plus a-c edge: a cyclic query.
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 200)
            .relation("c", 50)
            .join("a", "b", 0.01)
            .join("b", "c", 0.02)
            .join("a", "c", 0.10)
            .build()
            .unwrap()
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn chain_walk_sizes() {
        let q = triangle();
        // (a b c): |a⋈b| = 100·200·0.01 = 200;
        // joining c applies BOTH the b-c and a-c predicates:
        // 200·50·0.02·0.10 = 20.
        let sizes = intermediate_sizes(&q, &ids(&[0, 1, 2]));
        assert_eq!(sizes.len(), 2);
        assert!((sizes[0] - 200.0).abs() < 1e-9);
        assert!((sizes[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn final_size_is_order_independent() {
        let q = triangle();
        let orders = [ids(&[0, 1, 2]), ids(&[2, 1, 0]), ids(&[1, 0, 2])];
        let expect = final_result_size(&q, &ids(&[0, 1, 2]));
        for o in &orders {
            let sizes = intermediate_sizes(&q, o);
            assert!(
                (sizes.last().unwrap() - expect).abs() / expect < 1e-9,
                "final size must match for {o:?}"
            );
        }
        // 100·200·50 · 0.01·0.02·0.1 = 20.
        assert!((expect - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cross_product_detected() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        let mut steps = Vec::new();
        let mut w = SizeWalker::new(3);
        w.walk(&q, &ids(&[0, 1, 2]), |s| steps.push(*s));
        assert!(!steps[0].is_cross_product);
        assert!(steps[1].is_cross_product);
        // Cross product multiplies cardinalities: 20 · 30 = 600.
        assert!((steps[1].output_card - 600.0).abs() < 1e-9);
    }

    #[test]
    fn walker_resets_between_walks() {
        let q = triangle();
        let mut w = SizeWalker::new(3);
        let a = w.walk(&q, &ids(&[0, 1, 2]), |_| {});
        let b = w.walk(&q, &ids(&[0, 1, 2]), |_| {});
        assert_eq!(a, b);
    }

    #[test]
    fn clamping_prevents_overflow() {
        let q = QueryBuilder::new()
            .relation("x", u64::MAX / 2)
            .relation("y", u64::MAX / 2)
            .relation("z", u64::MAX / 2)
            .build()
            .unwrap();
        // All cross products of astronomically large relations.
        let sizes = intermediate_sizes(&q, &ids(&[0, 1, 2]));
        assert!(sizes.iter().all(|s| s.is_finite() && *s <= CARD_CLAMP));
    }

    #[test]
    fn empty_and_singleton_orders() {
        let q = triangle();
        let mut w = SizeWalker::new(3);
        assert_eq!(w.walk(&q, &[], |_| panic!("no steps")), 0.0);
        let c = w.walk(&q, &ids(&[2]), |_| panic!("no steps"));
        assert_eq!(c, 50.0);
    }
}
