//! Incremental (delta) cost evaluation for local-search moves.
//!
//! Iterative improvement and simulated annealing spend essentially their
//! whole budget evaluating *perturbed* permutations, yet a full
//! re-evaluation recomputes every join step even though a move only
//! rearranges a small window of the order. This module memoizes per-prefix
//! state of the current order — accumulated cost, intermediate cardinality
//! and (optionally) the propagated distinct-value state of
//! [`crate::propagate`] — and re-costs only what a move can change.
//!
//! # The window argument
//!
//! Every [`Move`] permutes relations within the window
//! `[first_touched, last_touched]` and leaves all other positions fixed.
//! Under the static estimator the step cost at position `q` depends only
//! on the *set* of relations placed before `q` (which determines the
//! selectivities and, as a product, the running cardinality), the inner
//! relation at `q`, and `q` itself. Consequently:
//!
//! * steps **before** the window are untouched — their memoized costs are
//!   reused verbatim;
//! * steps **inside** the window are recomputed (O(window) work);
//! * steps **after** the window see the same placed set and the same inner
//!   relation, so their real-valued costs are unchanged — the memoized
//!   tail is reused as a difference of prefix sums.
//!
//! That makes a move evaluation `O(window + deg)` instead of `O(N)`: an
//! adjacent swap is constant work, and a random arbitrary swap touches
//! `~N/3` positions on average. The `moves_incremental` bench in
//! `ljqo-bench` quantifies the resulting throughput.
//!
//! # Floating-point contract
//!
//! Reusing the memoized tail re-associates a sum of `f64` step costs, so
//! an *evaluation* may differ from a from-scratch walk by a few ulps
//! (debug builds assert agreement within `1e-9` relative). Two guard
//! rails keep this honest:
//!
//! * [`IncrementalEvaluator::commit`] recomputes the suffix with the exact
//!   full-walk operation sequence, so the *memoized state* is always
//!   bit-identical to a fresh walk of the current order — ulp drift never
//!   accumulates across accepted moves;
//! * if the window's exit cardinality does not match the memoized one
//!   (which can happen when [`crate::estimate::clamp_card`] saturates at a
//!   different step pre- and post-move), the tail is recomputed explicitly
//!   instead of reused, so even saturated plans are costed faithfully.
//!
//! With the propagated estimator the distinct-value state mutates at every
//! step, so there is no reusable tail: evaluation clones the memoized
//! [`DistinctState`] snapshot at the window start and re-walks the suffix
//! (`O((N − p)·E)`), which still skips the whole prefix.
//!
//! # Example
//!
//! ```
//! use ljqo_catalog::QueryBuilder;
//! use ljqo_cost::{Estimator, IncrementalEvaluator, MemoryCostModel, CostModel};
//! use ljqo_plan::{JoinOrder, Move};
//!
//! let query = QueryBuilder::new()
//!     .relation("a", 1000)
//!     .relation("b", 50)
//!     .relation("c", 200)
//!     .join("a", "b", 0.01)
//!     .join("b", "c", 0.005)
//!     .build()
//!     .unwrap();
//! let model = MemoryCostModel::default();
//! let order = JoinOrder::identity(&query);
//!
//! let mut inc = IncrementalEvaluator::new(&query, &model, Estimator::Static, order);
//! let before = inc.current_cost();
//!
//! // Apply and evaluate a move incrementally, then keep or revert it.
//! let mv = Move::Swap { i: 0, j: 1 };
//! let candidate = inc.eval_move(&mv);
//! assert_eq!(candidate, inc.full_eval());
//! if candidate < before {
//!     inc.commit();
//! } else {
//!     inc.rollback();
//! }
//! ```

use std::sync::Arc;

use ljqo_catalog::{CompiledQuery, EdgeId, Query};
use ljqo_plan::{JoinOrder, Move};

use crate::estimate::clamp_card;
use crate::model::{CostModel, JoinCtx};
use crate::propagate::{order_cost_propagated, DistinctState};
use crate::sanitize_cost;

/// Reuse the memoized tail only when the window's exit cardinality agrees
/// with the memoized one to this relative precision; otherwise the
/// clamping order changed inside the window and the tail is recomputed.
const TAIL_REUSE_EPS: f64 = 1e-12;

/// Agreement tolerance between an incremental evaluation and a
/// from-scratch walk (relative). The only legitimate divergence is ulp
/// drift from re-associating the tail sum; any logic bug produces
/// differences many orders of magnitude larger.
const AGREEMENT_EPS: f64 = 1e-9;

/// Which cardinality estimator an [`IncrementalEvaluator`] mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// The static System-R estimator of [`crate::estimate`] — what
    /// [`crate::Evaluator::cost`] and [`CostModel::order_cost`] use.
    Static,
    /// Distinct-value propagation ([`crate::propagate`]); the reference
    /// full walk is [`order_cost_propagated`].
    Propagated,
}

/// A move evaluated but not yet committed or rolled back.
#[derive(Debug, Clone, Copy)]
struct Pending {
    mv: Move,
    /// First position whose memoized state is stale.
    lo: usize,
    /// Last position of the move's permutation window.
    hi: usize,
    /// Last position covered by the candidate scratch arrays.
    cand_to: usize,
    /// Whether the evaluation reused the memoized tail (static mode only);
    /// if so, `commit` must recompute positions after `cand_to`.
    reused_tail: bool,
}

/// Memoized per-prefix cost state of one join order, supporting O(window)
/// move evaluation for the local-search methods.
///
/// The evaluator owns the current [`JoinOrder`] and keeps, for every
/// position `p`, the accumulated cost and intermediate cardinality of the
/// prefix `order[..=p]` — bit-identical to what a from-scratch walk
/// ([`CostModel::order_cost`] or [`order_cost_propagated`]) would produce.
/// The move protocol is:
///
/// 1. apply a [`Move`] to [`IncrementalEvaluator::order_mut`] (this is
///    what [`ljqo_plan::MoveGenerator::propose_counted`] does), or use the
///    [`IncrementalEvaluator::eval_move`] convenience;
/// 2. call [`IncrementalEvaluator::eval_applied`] for the candidate cost;
/// 3. [`IncrementalEvaluator::commit`] to adopt the move, or
///    [`IncrementalEvaluator::rollback`] to undo it.
///
/// Budget charging and best-so-far tracking remain the job of
/// [`crate::Evaluator`]; see [`crate::Evaluator::begin_incremental`] and
/// [`crate::Evaluator::cost_move`], which drive this type on behalf of the
/// optimizers. Models that override [`CostModel::order_cost_with`] (e.g.
/// fault injectors) are not summable per step; gate on
/// [`CostModel::supports_incremental`] before using this path.
pub struct IncrementalEvaluator<'a> {
    query: &'a Query,
    model: &'a dyn CostModel,
    /// Compiled snapshot of `query`: CSR adjacency with pre-resolved
    /// other-endpoints and selectivities, the backing store of the hot
    /// [`IncrementalEvaluator::static_step`] loop. Iterates edges in
    /// exactly [`ljqo_catalog::JoinGraph::incident`] order, so compiled
    /// selectivity folds stay bit-identical to the edge-chasing walk.
    compiled: Arc<CompiledQuery>,
    estimator: Estimator,
    order: JoinOrder,
    /// Position of each relation in `order` (`usize::MAX` when absent, as
    /// for relations of other components).
    pos: Vec<usize>,
    /// `prefix_cost[p]` = accumulated cost after the step at position `p`
    /// (`prefix_cost[0] == 0`: placing the first relation is free).
    prefix_cost: Vec<f64>,
    /// `prefix_card[p]` = cardinality of the intermediate over
    /// `order[..=p]`.
    prefix_card: Vec<f64>,
    /// Propagated mode only: distinct-value state after each prefix.
    snapshots: Vec<DistinctState>,
    /// Candidate step costs / cardinalities for positions
    /// `pending.lo ..= pending.cand_to` of the perturbed order.
    cand_cost: Vec<f64>,
    cand_card: Vec<f64>,
    scratch_edges: Vec<(EdgeId, f64, f64)>,
    /// Propagated mode: reusable walk state for evaluations, resumed from
    /// a memoized snapshot via [`DistinctState::copy_from`] instead of a
    /// per-evaluation clone. `Option` so it can be moved out during the
    /// walk (the vectors inside keep their capacity either way).
    scratch_state: Option<DistinctState>,
    pending: Option<Pending>,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Build the memoized state for `order` (one full walk, `O(N·deg)`),
    /// compiling the query on the way in. Callers that already hold a
    /// [`CompiledQuery`] (e.g. [`crate::Evaluator`]) should use
    /// [`IncrementalEvaluator::with_compiled`] to share it instead.
    pub fn new(
        query: &'a Query,
        model: &'a dyn CostModel,
        estimator: Estimator,
        order: JoinOrder,
    ) -> Self {
        let compiled = Arc::new(CompiledQuery::new(query));
        Self::with_compiled(query, model, estimator, order, compiled)
    }

    /// As [`IncrementalEvaluator::new`], but reusing an existing compiled
    /// snapshot of `query` (it must describe the same query).
    pub fn with_compiled(
        query: &'a Query,
        model: &'a dyn CostModel,
        estimator: Estimator,
        order: JoinOrder,
        compiled: Arc<CompiledQuery>,
    ) -> Self {
        debug_assert_eq!(compiled.n_relations(), query.n_relations());
        let n = order.len();
        let mut inc = IncrementalEvaluator {
            query,
            model,
            compiled,
            estimator,
            order,
            pos: vec![usize::MAX; query.n_relations()],
            prefix_cost: vec![0.0; n],
            prefix_card: vec![0.0; n],
            snapshots: Vec::new(),
            cand_cost: Vec::with_capacity(n),
            cand_card: Vec::with_capacity(n),
            scratch_edges: Vec::new(),
            scratch_state: match estimator {
                Estimator::Static => None,
                Estimator::Propagated => Some(DistinctState::new(query)),
            },
            pending: None,
        };
        inc.rebuild();
        inc
    }

    /// The estimator this evaluator mirrors.
    #[inline]
    pub fn estimator(&self) -> Estimator {
        self.estimator
    }

    /// The current order (with a pending move applied, if any).
    #[inline]
    pub fn order(&self) -> &JoinOrder {
        &self.order
    }

    /// Mutable access to the order **for move application only** (this is
    /// what the move generator perturbs). Any structural change other than
    /// applying a single [`Move`] and then calling
    /// [`IncrementalEvaluator::eval_applied`] invalidates the memoized
    /// state; use [`IncrementalEvaluator::reset`] for arbitrary rewrites.
    #[inline]
    pub fn order_mut(&mut self) -> &mut JoinOrder {
        &mut self.order
    }

    /// Consume the evaluator, returning the current order.
    pub fn into_order(self) -> JoinOrder {
        debug_assert!(
            self.pending.is_none(),
            "pending move neither kept nor undone"
        );
        self.order
    }

    /// Replace the current order and rebuild the memoized state from
    /// scratch (used when a search restarts from its best-so-far state).
    pub fn reset(&mut self, order: JoinOrder) {
        self.pending = None;
        let n = order.len();
        self.order = order;
        self.prefix_cost.resize(n, 0.0);
        self.prefix_card.resize(n, 0.0);
        self.rebuild();
    }

    /// Cost of the current order, read from the memoized state (free).
    /// Identical to what [`crate::Evaluator::cost`] would return for the
    /// same order (after saturation via [`sanitize_cost`]).
    pub fn current_cost(&self) -> f64 {
        debug_assert!(
            self.pending.is_none(),
            "pending move neither kept nor undone"
        );
        match self.prefix_cost.last() {
            Some(&total) => sanitize_cost(total.min(f64::MAX)),
            None => 0.0,
        }
    }

    /// From-scratch reference cost of the current order (including a
    /// pending move, if one is applied): the exact value the incremental
    /// path must reproduce. `O(N·deg)` — for tests, debug assertions and
    /// callers that need an authoritative re-check.
    pub fn full_eval(&self) -> f64 {
        let raw = match self.estimator {
            Estimator::Static => self.model.order_cost(self.query, self.order.rels()),
            Estimator::Propagated => {
                order_cost_propagated(self.query, self.model, self.order.rels())
            }
        };
        sanitize_cost(raw)
    }

    /// Apply `mv` to the order and evaluate it incrementally. Convenience
    /// wrapper around [`IncrementalEvaluator::eval_applied`] for callers
    /// that don't route application through a move generator.
    pub fn eval_move(&mut self, mv: &Move) -> f64 {
        mv.apply(&mut self.order);
        self.eval_applied(mv)
    }

    /// Evaluate the already-applied move `mv` against the memoized prefix
    /// state, re-costing only from `mv.first_touched()`. Returns the
    /// saturated candidate cost. The move stays applied and *must* be
    /// resolved with [`IncrementalEvaluator::commit`] or
    /// [`IncrementalEvaluator::rollback`] before the next evaluation.
    pub fn eval_applied(&mut self, mv: &Move) -> f64 {
        debug_assert!(
            self.pending.is_none(),
            "pending move neither kept nor undone"
        );
        let n = self.order.len();
        let lo = mv.first_touched();
        let hi = mv.last_touched();
        debug_assert!(hi < n, "move window exceeds the order");
        let raw = match self.estimator {
            Estimator::Static => self.eval_static(mv, lo, hi),
            Estimator::Propagated => self.eval_propagated(mv, lo, hi),
        };
        sanitize_cost(raw.min(f64::MAX))
    }

    /// Keep the pending move: adopt the candidate window into the memoized
    /// state and re-establish the bit-exact full-walk invariant for the
    /// suffix. `O(N − first_touched)`.
    pub fn commit(&mut self) {
        let p = self
            .pending
            .take()
            .expect("commit without a pending evaluation");
        let n = self.order.len();
        // Re-index the permuted window.
        for q in p.lo..=p.hi {
            self.pos[self.order.at(q).index()] = q;
        }
        // Adopt the candidate steps (bit-identical to a fresh walk, since
        // they chain from the untouched — hence bit-exact — prefix).
        for (i, q) in (p.lo..=p.cand_to).enumerate() {
            self.prefix_card[q] = self.cand_card[i];
            self.prefix_cost[q] = if q == 0 {
                self.cand_cost[i]
            } else {
                self.prefix_cost[q - 1] + self.cand_cost[i]
            };
        }
        // If the evaluation reused the memoized tail, recompute it now with
        // the exact full-walk operation sequence so the memoized state
        // stays bit-identical to a from-scratch walk of the new order.
        if p.reused_tail {
            for q in p.cand_to + 1..n {
                let (step, output) = self.static_step(q, self.prefix_card[q - 1], |pos| pos);
                self.prefix_cost[q] = self.prefix_cost[q - 1] + step;
                self.prefix_card[q] = output;
            }
        }
        if self.estimator == Estimator::Propagated {
            self.rebuild_snapshots_from(p.lo);
        }
    }

    /// Discard the pending move: undo it on the order. The memoized state
    /// (which still describes the pre-move order) is untouched, so this is
    /// `O(window)`.
    pub fn rollback(&mut self) {
        let p = self
            .pending
            .take()
            .expect("rollback without a pending evaluation");
        p.mv.undo(&mut self.order);
    }

    /// One static-estimator join step at position `q` of the current
    /// order, with `outer` rows entering. `placed_pos` maps a memoized
    /// position to its position in the order being walked (identity when
    /// the memoized index is current; [`Move::dest`] during evaluation of
    /// a pending move). Returns `(step_cost, output_card)`.
    #[inline]
    fn static_step(&self, q: usize, outer: f64, placed_pos: impl Fn(usize) -> usize) -> (f64, f64) {
        let inner = self.order.at(q);
        let cq = &*self.compiled;
        let inner_card = cq.cardinality(inner);
        // Mirrors `estimate::selectivity_into`: the compiled slots iterate
        // incident edges in exactly `JoinGraph::incident` order with the
        // same multiplication order — required for bit-exact agreement
        // with the full walk. The CSR layout pre-resolves each edge's
        // other endpoint and selectivity into flat arrays, so the loop
        // body is two array reads and a position compare.
        let mut sel: Option<f64> = None;
        for s in cq.slot_range(inner) {
            let o = cq.slot_other(s);
            if placed_pos(self.pos[o.index()]) < q {
                *sel.get_or_insert(1.0) *= cq.slot_selectivity(s);
            }
        }
        let output = clamp_card(outer * inner_card * sel.unwrap_or(1.0));
        let step = self.model.join_cost(&JoinCtx {
            outer_card: outer,
            inner_card,
            output_card: output,
            outer_rels: q,
            is_cross_product: sel.is_none(),
        });
        (step, output)
    }

    fn eval_static(&mut self, mv: &Move, lo: usize, hi: usize) -> f64 {
        let n = self.order.len();
        self.cand_cost.clear();
        self.cand_card.clear();
        let (mut cost, mut card) = if lo == 0 {
            let c0 = clamp_card(self.query.cardinality(self.order.at(0)));
            self.cand_cost.push(0.0);
            self.cand_card.push(c0);
            (0.0, c0)
        } else {
            (self.prefix_cost[lo - 1], self.prefix_card[lo - 1])
        };
        // Window: recompute each step against the perturbed placement. The
        // position index still describes the pre-move order, so route
        // placement tests through the move's `dest` oracle. (`dest` of
        // `usize::MAX` — an absent relation — stays astronomically large
        // and therefore never tests as placed.)
        for q in lo.max(1)..=hi {
            let (step, output) = self.static_step(q, card, |pos| mv.dest(pos));
            cost += step;
            self.cand_cost.push(step);
            self.cand_card.push(output);
            card = output;
        }
        let mut cand_to = hi;
        let mut reused_tail = false;
        if hi + 1 < n {
            // Tail: the placed set below every tail position is unchanged,
            // so the memoized tail costs apply to the perturbed order too
            // (up to ulp re-association) — provided the cardinality
            // entering the tail is the memoized one. When clamping made
            // the window's exit cardinality diverge, fall back to an
            // explicit tail walk.
            let memo_exit = self.prefix_card[hi];
            if card == memo_exit || ((card - memo_exit) / memo_exit).abs() <= TAIL_REUSE_EPS {
                cost += self.prefix_cost[n - 1] - self.prefix_cost[hi];
                reused_tail = true;
            } else {
                for q in hi + 1..n {
                    let (step, output) = self.static_step(q, card, |pos| mv.dest(pos));
                    cost += step;
                    self.cand_cost.push(step);
                    self.cand_card.push(output);
                    card = output;
                }
                cand_to = n - 1;
            }
        }
        self.pending = Some(Pending {
            mv: *mv,
            lo,
            hi,
            cand_to,
            reused_tail,
        });
        cost
    }

    fn eval_propagated(&mut self, mv: &Move, lo: usize, hi: usize) -> f64 {
        let n = self.order.len();
        self.cand_cost.clear();
        self.cand_card.clear();
        // The distinct-value state mutates at every step (Yao shrinkage
        // touches the present columns), so the tail cannot be reused:
        // resume the reusable scratch state from the snapshot at the
        // window start (allocation-free — `copy_from` reuses the scratch's
        // full-capacity buffers) and re-walk the whole suffix.
        let mut state = self
            .scratch_state
            .take()
            .expect("propagated evaluator always owns a scratch state");
        let (mut cost, mut card) = if lo == 0 {
            state.reset();
            state.admit_first(self.query, self.order.at(0));
            let c0 = clamp_card(self.query.cardinality(self.order.at(0)));
            self.cand_cost.push(0.0);
            self.cand_card.push(c0);
            (0.0, c0)
        } else {
            state.copy_from(&self.snapshots[lo - 1]);
            (self.prefix_cost[lo - 1], self.prefix_card[lo - 1])
        };
        let mut joined = std::mem::take(&mut self.scratch_edges);
        for q in lo.max(1)..n {
            let inner = self.order.at(q);
            let inner_card = self.query.cardinality(inner);
            joined.clear();
            let sel = state.join_selectivity(self.query, inner, &mut joined);
            let output = clamp_card(card * inner_card * sel.unwrap_or(1.0));
            let step = self.model.join_cost(&JoinCtx {
                outer_card: card,
                inner_card,
                output_card: output,
                outer_rels: q,
                is_cross_product: sel.is_none(),
            });
            state.place(self.query, inner, output, &joined);
            cost += step;
            self.cand_cost.push(step);
            self.cand_card.push(output);
            card = output;
        }
        self.scratch_edges = joined;
        self.scratch_state = Some(state);
        self.pending = Some(Pending {
            mv: *mv,
            lo,
            hi,
            cand_to: n.saturating_sub(1),
            reused_tail: false,
        });
        cost
    }

    /// Rebuild the full memoized state with the exact full-walk operation
    /// sequence.
    fn rebuild(&mut self) {
        let n = self.order.len();
        for p in self.pos.iter_mut() {
            *p = usize::MAX;
        }
        for q in 0..n {
            self.pos[self.order.at(q).index()] = q;
        }
        if n == 0 {
            self.snapshots.clear();
            return;
        }
        self.prefix_card[0] = clamp_card(self.query.cardinality(self.order.at(0)));
        self.prefix_cost[0] = 0.0;
        match self.estimator {
            Estimator::Static => {
                for q in 1..n {
                    let (step, output) = self.static_step(q, self.prefix_card[q - 1], |pos| pos);
                    self.prefix_cost[q] = self.prefix_cost[q - 1] + step;
                    self.prefix_card[q] = output;
                }
            }
            Estimator::Propagated => {
                // Size the snapshot store with full-capacity states (via
                // `DistinctState::new`, never `clone`, whose vectors carry
                // exact-length capacities) so later `copy_from` writes can
                // never reallocate.
                self.snapshots.truncate(n);
                while self.snapshots.len() < n {
                    self.snapshots.push(DistinctState::new(self.query));
                }
                let mut state = self
                    .scratch_state
                    .take()
                    .expect("propagated evaluator always owns a scratch state");
                state.reset();
                state.admit_first(self.query, self.order.at(0));
                self.snapshots[0].copy_from(&state);
                let mut joined = std::mem::take(&mut self.scratch_edges);
                for q in 1..n {
                    let inner = self.order.at(q);
                    let inner_card = self.query.cardinality(inner);
                    joined.clear();
                    let sel = state.join_selectivity(self.query, inner, &mut joined);
                    let card = self.prefix_card[q - 1];
                    let output = clamp_card(card * inner_card * sel.unwrap_or(1.0));
                    let step = self.model.join_cost(&JoinCtx {
                        outer_card: card,
                        inner_card,
                        output_card: output,
                        outer_rels: q,
                        is_cross_product: sel.is_none(),
                    });
                    state.place(self.query, inner, output, &joined);
                    self.prefix_cost[q] = self.prefix_cost[q - 1] + step;
                    self.prefix_card[q] = output;
                    self.snapshots[q].copy_from(&state);
                }
                self.scratch_edges = joined;
                self.scratch_state = Some(state);
            }
        }
    }

    /// Recompute the distinct-value snapshots from position `from` on
    /// (after a commit adopted new prefix cardinalities).
    fn rebuild_snapshots_from(&mut self, from: usize) {
        let n = self.order.len();
        debug_assert_eq!(self.snapshots.len(), n);
        let mut state = self
            .scratch_state
            .take()
            .expect("propagated evaluator always owns a scratch state");
        if from == 0 {
            state.reset();
            state.admit_first(self.query, self.order.at(0));
            self.snapshots[0].copy_from(&state);
        } else {
            state.copy_from(&self.snapshots[from - 1]);
        }
        let mut joined = std::mem::take(&mut self.scratch_edges);
        for q in from.max(1)..n {
            let inner = self.order.at(q);
            joined.clear();
            let _sel = state.join_selectivity(self.query, inner, &mut joined);
            state.place(self.query, inner, self.prefix_card[q], &joined);
            self.snapshots[q].copy_from(&state);
        }
        self.scratch_edges = joined;
        self.scratch_state = Some(state);
    }
}

/// Whether two saturated costs agree up to the incremental path's
/// re-association tolerance (used by the debug-mode agreement assertion
/// and the cross-checking property tests).
pub fn costs_agree(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= scale * AGREEMENT_EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryCostModel;
    use ljqo_catalog::{QueryBuilder, RelId};

    fn q() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 9)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.2)
            .build()
            .unwrap()
    }

    fn moves() -> Vec<Move> {
        vec![
            Move::Swap { i: 0, j: 1 },
            Move::Swap { i: 4, j: 5 },
            Move::Swap { i: 0, j: 5 },
            Move::Swap { i: 2, j: 4 },
            Move::ThreeCycle { i: 1, j: 3, k: 5 },
            Move::ThreeCycle { i: 5, j: 0, k: 2 },
            Move::Reinsert { from: 0, to: 4 },
            Move::Reinsert { from: 5, to: 1 },
            Move::Reinsert { from: 2, to: 3 },
        ]
    }

    #[test]
    fn initial_state_matches_full_walk() {
        let query = q();
        let model = MemoryCostModel::default();
        for est in [Estimator::Static, Estimator::Propagated] {
            let inc = IncrementalEvaluator::new(&query, &model, est, JoinOrder::identity(&query));
            assert_eq!(inc.current_cost(), inc.full_eval(), "{est:?}");
        }
    }

    #[test]
    fn eval_commit_keeps_state_bit_exact() {
        let query = q();
        let model = MemoryCostModel::default();
        for est in [Estimator::Static, Estimator::Propagated] {
            let mut inc =
                IncrementalEvaluator::new(&query, &model, est, JoinOrder::identity(&query));
            for mv in moves() {
                let got = inc.eval_move(&mv);
                let want = inc.full_eval();
                assert!(
                    costs_agree(got, want),
                    "{est:?} {mv:?}: incremental {got} vs full {want}"
                );
                inc.commit();
                // The committed state must be bit-identical to a fresh walk.
                assert_eq!(inc.current_cost(), inc.full_eval(), "{est:?} {mv:?}");
            }
        }
    }

    #[test]
    fn rollback_restores_order_and_cost() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut inc = IncrementalEvaluator::new(
            &query,
            &model,
            Estimator::Static,
            JoinOrder::identity(&query),
        );
        let before_cost = inc.current_cost();
        let before_order = inc.order().clone();
        for mv in moves() {
            inc.eval_move(&mv);
            inc.rollback();
            assert_eq!(*inc.order(), before_order, "{mv:?}");
            assert_eq!(inc.current_cost(), before_cost, "{mv:?}");
        }
    }

    #[test]
    fn reset_rebuilds_for_an_arbitrary_order() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut inc = IncrementalEvaluator::new(
            &query,
            &model,
            Estimator::Static,
            JoinOrder::identity(&query),
        );
        let mut rev: Vec<RelId> = query.rel_ids().collect();
        rev.reverse();
        inc.reset(JoinOrder::new(rev));
        assert_eq!(inc.current_cost(), inc.full_eval());
    }

    #[test]
    fn singleton_and_empty_orders_cost_zero() {
        let query = q();
        let model = MemoryCostModel::default();
        let inc = IncrementalEvaluator::new(
            &query,
            &model,
            Estimator::Static,
            JoinOrder::new(vec![RelId(2)]),
        );
        assert_eq!(inc.current_cost(), 0.0);
        let inc =
            IncrementalEvaluator::new(&query, &model, Estimator::Static, JoinOrder::new(vec![]));
        assert_eq!(inc.current_cost(), 0.0);
    }
}
