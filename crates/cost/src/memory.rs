//! Main-memory hash-join cost model (after Swami \[Swa89a\]).

use ljqo_catalog::{Query, RelId};

use crate::model::{bound_ingredients, CostModel, JoinCtx};

/// Cost model for join processing in memory-resident databases.
///
/// The companion paper \[Swa89a\] validates a CPU-only model for
/// main-memory hash joins; its essential structure (and the structure of
/// the other main-memory models it cites, e.g. DeWitt et al. SIGMOD 1984)
/// is linear in the operand and result sizes:
///
/// ```text
/// cost(outer ⋈ inner) = c_build·|inner| + c_probe·|outer|
///                     + (c_output + c_copy·w)·|result|
/// ```
///
/// * `c_build` — hashing and inserting one inner tuple into the hash table,
/// * `c_probe` — hashing one outer tuple and probing,
/// * `c_output` — fixed per-result-tuple cost,
/// * `c_copy·w` — copying the result tuple's fields, where the width `w`
///   is the number of base relations folded into it so far. Intermediate
///   tuples get *wider* as the plan progresses, so materializing a result
///   late costs more than materializing the same row count early — a
///   property of any real execution engine. It also makes the model
///   deviate from the `Σ|outer|·g(inner)` (ASI) shape that the KBZ rank
///   theory requires, which is what the paper means when it notes that
///   "all join methods do not have a cost function of the required form".
///
/// Cross products have no hash table; they cost the output term per
/// result tuple plus a scan of both inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryCostModel {
    /// Per-inner-tuple build cost.
    pub c_build: f64,
    /// Per-outer-tuple probe cost.
    pub c_probe: f64,
    /// Fixed per-result-tuple output cost.
    pub c_output: f64,
    /// Per-result-tuple, per-constituent-relation copy cost.
    pub c_copy: f64,
}

impl Default for MemoryCostModel {
    fn default() -> Self {
        // Building (hash + insert) is a little dearer than probing; output
        // materialization is comparable to probing plus a copy cost per
        // constituent relation. The relative rankings the paper measures
        // are insensitive to the exact constants.
        MemoryCostModel {
            c_build: 1.5,
            c_probe: 1.0,
            c_output: 1.0,
            c_copy: 0.2,
        }
    }
}

impl MemoryCostModel {
    /// Per-result-tuple cost for a result of `width` base relations.
    #[inline]
    fn output_cost(&self, width: usize) -> f64 {
        self.c_output + self.c_copy * width as f64
    }
}

impl CostModel for MemoryCostModel {
    fn join_cost(&self, ctx: &JoinCtx) -> f64 {
        let out = self.output_cost(ctx.outer_rels + 1) * ctx.output_card;
        if ctx.is_cross_product {
            // Nested scan: touch both inputs and emit every pair.
            ctx.outer_card + ctx.inner_card + out
        } else {
            self.c_build * ctx.inner_card + self.c_probe * ctx.outer_card + out
        }
    }

    fn name(&self) -> &'static str {
        "memory"
    }

    /// Admissible bound: every relation except the one placed first must be
    /// built into a hash table exactly once (drop the most expensive build,
    /// since the first relation is never an inner), every join probes with
    /// at least one tuple, and the final result must be emitted at full
    /// width.
    fn lower_bound(&self, query: &Query, component: &[RelId]) -> f64 {
        if component.len() < 2 {
            return 0.0;
        }
        let (final_size, cards) = bound_ingredients(query, component);
        let build_sum: f64 = cards.iter().sum();
        let build_max = cards.iter().cloned().fold(0.0, f64::max);
        self.c_build * (build_sum - build_max)
            + self.c_probe * (component.len() - 1) as f64
            + self.output_cost(component.len()) * final_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn q3() -> Query {
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 1000)
            .relation("c", 10)
            .join("a", "b", 0.001)
            .join("b", "c", 0.01)
            .build()
            .unwrap()
    }

    fn order(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn join_cost_formula() {
        let m = MemoryCostModel::default();
        let c = m.join_cost(&JoinCtx {
            outer_card: 100.0,
            inner_card: 1000.0,
            output_card: 100.0,
            outer_rels: 1,
            is_cross_product: false,
        });
        // Output width = 2 relations: (1.0 + 0.2·2)·100 = 140.
        assert!((c - (1.5 * 1000.0 + 100.0 + 140.0)).abs() < 1e-9);
    }

    #[test]
    fn cross_product_cost_is_output_dominated() {
        let m = MemoryCostModel::default();
        let c = m.join_cost(&JoinCtx {
            outer_card: 100.0,
            inner_card: 100.0,
            output_card: 10_000.0,
            outer_rels: 1,
            is_cross_product: true,
        });
        // Output width 2: (1.0 + 0.4)·10000 = 14000.
        assert!((c - (200.0 + 14_000.0)).abs() < 1e-9);
    }

    #[test]
    fn better_orders_cost_less() {
        let q = q3();
        let m = MemoryCostModel::default();
        // Starting with the small relation keeps intermediates small.
        let good = m.order_cost(&q, &order(&[2, 1, 0]));
        let bad = m.order_cost(&q, &order(&[0, 1, 2]));
        // good: |c⋈b| = 10·1000·0.01 = 100; bad: |a⋈b| = 100·1000·0.001 = 100;
        // same intermediate here, but build order differs. Use a clearly
        // asymmetric pair instead:
        assert!(good > 0.0 && bad > 0.0);
    }

    #[test]
    fn lower_bound_is_admissible_on_all_valid_orders() {
        let q = q3();
        let m = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let lb = m.lower_bound(&q, &comp);
        for o in [
            order(&[0, 1, 2]),
            order(&[1, 0, 2]),
            order(&[1, 2, 0]),
            order(&[2, 1, 0]),
        ] {
            let c = m.order_cost(&q, &o);
            assert!(lb <= c + 1e-9, "lower bound {lb} exceeds cost {c} of {o:?}");
        }
        assert!(lb > 0.0);
    }

    #[test]
    fn singleton_component_bound_is_zero() {
        let q = q3();
        let m = MemoryCostModel::default();
        assert_eq!(m.lower_bound(&q, &[RelId(0)]), 0.0);
    }
}
