//! A lock-free shared best-cost cell for cooperative parallel search.
//!
//! Parallel multi-start workers are embarrassingly parallel *except* for
//! one datum worth sharing: the best cost anyone has found. [`SharedBest`]
//! is that datum — an [`Arc`]`<`[`AtomicU64`]`>` holding an f64 in a
//! bit-ordered encoding, so that "record a better cost" is a single
//! `fetch_min` and "read the global best" is a single load. No locks, no
//! poisoning, and nothing for a panicking worker to corrupt: a dead
//! worker simply stops publishing.
//!
//! The cell carries only the *cost*, never the join order. Orders stay
//! worker-local (cloning them through a shared slot would need a mutex on
//! the hot path); the parallel driver recovers the winning order from the
//! worker that reported the winning cost. Consequently the cell's value
//! is always at least as good as every worker's local best — each worker
//! publishes its improvements — and may be momentarily better than any
//! *surviving* worker's best if the publisher later panicked.
//!
//! Memory ordering is `Relaxed` throughout: the cell is a monotone
//! minimum of a single value and no other memory is synchronized through
//! it. A stale read is indistinguishable from reading a moment earlier,
//! which the amortized polling cadence already allows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Map an `f64` to a `u64` whose unsigned order matches
/// [`f64::total_cmp`]: flip all bits of negative values, set the sign bit
/// of non-negative ones.
#[inline]
fn key_of(cost: f64) -> u64 {
    let bits = cost.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// Inverse of [`key_of`].
#[inline]
fn cost_of(key: u64) -> f64 {
    let bits = if key & (1 << 63) != 0 {
        key ^ (1 << 63)
    } else {
        !key
    };
    f64::from_bits(bits)
}

/// A shared, monotonically decreasing best-cost watermark.
///
/// Clone the handle into each worker; all clones view the same cell.
/// Workers publish every improvement of their local best
/// ([`SharedBest::publish`]) and poll the global value
/// ([`SharedBest::get`]) — the [`Evaluator`](crate::Evaluator) does both
/// automatically once [`Evaluator::set_shared_best`] is installed,
/// polling on the same amortized cadence as its deadline checks.
///
/// ```
/// use ljqo_cost::SharedBest;
///
/// let shared = SharedBest::new();
/// assert_eq!(shared.get(), f64::INFINITY);
/// let clone = shared.clone();
/// clone.publish(42.0);
/// clone.publish(99.0); // worse: ignored
/// assert_eq!(shared.get(), 42.0);
/// ```
///
/// [`Evaluator::set_shared_best`]: crate::Evaluator::set_shared_best
#[derive(Clone, Debug)]
pub struct SharedBest {
    bits: Arc<AtomicU64>,
}

impl Default for SharedBest {
    fn default() -> Self {
        SharedBest::new()
    }
}

impl SharedBest {
    /// A fresh cell holding `+∞` (no cost published yet).
    pub fn new() -> Self {
        SharedBest {
            bits: Arc::new(AtomicU64::new(key_of(f64::INFINITY))),
        }
    }

    /// Record `cost` if it beats the current global best. Non-finite
    /// inputs are saturated first (see [`crate::sanitize_cost`]), so a
    /// faulty worker cannot publish `NaN` and wedge every comparison.
    #[inline]
    pub fn publish(&self, cost: f64) {
        let key = key_of(crate::sanitize_cost(cost));
        self.bits.fetch_min(key, Ordering::Relaxed);
    }

    /// The best cost published so far (`+∞` if none).
    #[inline]
    pub fn get(&self) -> f64 {
        cost_of(self.bits.load(Ordering::Relaxed))
    }

    /// Whether any cost has been published.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.get() < f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn key_order_matches_total_cmp() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut samples: Vec<f64> = vec![0.0, -0.0, 1.0, -1.0, f64::MAX, f64::INFINITY];
        for _ in 0..512 {
            let exp = rng.gen_range(-300i32..300);
            let mantissa: f64 = rng.gen_range(-10.0..10.0);
            samples.push(mantissa * 10f64.powi(exp));
        }
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    key_of(a).cmp(&key_of(b)),
                    a.total_cmp(&b),
                    "key order diverged for {a} vs {b}"
                );
                assert_eq!(cost_of(key_of(a)).to_bits(), a.to_bits());
            }
        }
    }

    #[test]
    fn publish_keeps_the_minimum() {
        let s = SharedBest::new();
        assert!(!s.is_set());
        s.publish(10.0);
        s.publish(25.0);
        assert_eq!(s.get(), 10.0);
        s.publish(3.5);
        assert_eq!(s.get(), 3.5);
        assert!(s.is_set());
    }

    #[test]
    fn nan_publishes_saturate() {
        let s = SharedBest::new();
        s.publish(f64::NAN);
        assert_eq!(s.get(), f64::MAX);
        s.publish(7.0);
        assert_eq!(s.get(), 7.0);
        s.publish(f64::NAN); // must not displace a real cost
        assert_eq!(s.get(), 7.0);
    }

    #[test]
    fn clones_share_one_cell_across_threads() {
        let s = SharedBest::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        s.publish(1000.0 - (t * 100 + i) as f64);
                    }
                });
            }
        });
        // Minimum over all published values: 1000 - 399.
        assert_eq!(s.get(), 601.0);
    }
}
