//! Distinct-value propagation — a refined cardinality estimator.
//!
//! The paper's estimator (and [`crate::estimate`]) applies each join
//! predicate's *static* selectivity. That ignores how earlier joins
//! change the distinct-value counts of join columns: once `R.x` has been
//! equi-joined with `S.x`, the surviving `R` rows carry at most
//! `min(D_R.x, D_S.x)` distinct `x` values, and unrelated columns lose
//! distinct values whenever rows are filtered. This module propagates
//! those counts through a left-deep walk:
//!
//! * an equi-join on columns with `D_a`/`D_b` distinct values keeps
//!   `min(D_a, D_b)` on both sides and selects with
//!   `1 / max(D_a, D_b)` — using the *current* (propagated) counts
//!   rather than the base-table ones;
//! * when a step reduces the row count from `R` to `r`, every other
//!   column's distinct count shrinks by Yao's approximation
//!   `D' = D·(1 − (1 − 1/D)^r)` capped at `r`; row multiplication never
//!   increases a distinct count.
//!
//! The paper mentions exactly this effect when explaining why criterion
//! 3 wins Table 1: it "tends to maximize the number of distinct values
//! in the intermediate results". The `ext_estimator` bench and the
//! integration tests compare this estimator against the static one on
//! executed ground truth.

use ljqo_catalog::{EdgeId, Query, RelId};

use crate::estimate::{clamp_card, JoinStep};
use crate::model::{CostModel, JoinCtx};

/// Yao's approximation: expected distinct values in a column of `d`
/// distinct values after sampling `rows` of its rows (uniformly).
#[inline]
fn yao(d: f64, rows: f64) -> f64 {
    if d <= 1.0 {
        return 1.0;
    }
    // d·(1 − (1 − 1/d)^rows), computed stably via ln1p.
    let log_keep = rows * (-1.0 / d).ln_1p();
    (d * (1.0 - log_keep.exp())).clamp(1.0, d)
}

/// The distinct-value bookkeeping of a partially built left-deep prefix.
///
/// This is the *state* half of [`PropagatingWalker`], split out so that
/// incremental evaluators can snapshot it per prefix position (it is
/// `Clone`) and resume a walk from the middle of an order. All mutation
/// happens through [`DistinctState::admit_first`] and
/// [`DistinctState::place`], which replay exactly the operations the
/// consuming walker performs, so a resumed walk is bit-identical to a
/// fresh one.
#[derive(Debug, Clone)]
pub struct DistinctState {
    /// Current distinct estimate per (edge, side-relation) column of the
    /// running intermediate; keyed densely by edge id with one slot per
    /// side. NaN = column not present yet.
    distinct: Vec<[f64; 2]>,
    placed: Vec<bool>,
    /// Flat indices (`2·edge + side`) of the present (non-NaN) columns, in
    /// admission order. Lets [`DistinctState::shrink_all`] touch only the
    /// columns that exist — O(present) per join step instead of O(E) —
    /// which is what makes a propagated walk O(N + Σ placed-columns)
    /// rather than O(N·E). Yao shrinkage is applied to each slot
    /// independently, so the iteration order does not affect the values
    /// and the sparse scan is bit-identical to a dense one (see
    /// [`DenseDistinctState`], the differential reference).
    ///
    /// A column enters the set exactly once (a relation is admitted at
    /// most once per walk, and [`DistinctState::place`]'s domain merge
    /// never turns a NaN slot finite), so no dedup pass is needed.
    present: Vec<u32>,
}

impl DistinctState {
    /// Empty state for `query`: nothing placed, no columns present.
    ///
    /// The present-set vector is allocated at its worst-case capacity
    /// (two columns per edge) up front, so the state never reallocates —
    /// a prerequisite for the allocation-free steady state of
    /// [`crate::IncrementalEvaluator`].
    pub fn new(query: &Query) -> Self {
        let n_edges = query.graph().edges().len();
        DistinctState {
            distinct: vec![[f64::NAN; 2]; n_edges],
            placed: vec![false; query.n_relations()],
            present: Vec::with_capacity(2 * n_edges),
        }
    }

    fn side(query: &Query, eid: EdgeId, rel: RelId) -> usize {
        usize::from(query.graph().edge(eid).b == rel)
    }

    /// Import the base distinct counts of every column of `rel`.
    fn admit(&mut self, query: &Query, rel: RelId) {
        for &eid in query.graph().incident(rel) {
            let side = Self::side(query, eid, rel);
            debug_assert!(
                self.distinct[eid.index()][side].is_nan(),
                "column admitted twice"
            );
            self.distinct[eid.index()][side] =
                query.graph().edge(eid).distinct_on(rel).unwrap_or(1.0);
            self.present.push((2 * eid.index() + side) as u32);
        }
        self.placed[rel.index()] = true;
    }

    /// Shrink every present column after a row-count change to `rows`.
    fn shrink_all(&mut self, rows: f64) {
        for &slot in &self.present {
            let d = &mut self.distinct[(slot >> 1) as usize][(slot & 1) as usize];
            debug_assert!(!d.is_nan());
            *d = yao(*d, rows).min(*d);
        }
    }

    /// Return to the empty state (nothing placed, no columns present)
    /// without releasing any allocation. O(present + N).
    pub fn reset(&mut self) {
        for &slot in &self.present {
            self.distinct[(slot >> 1) as usize][(slot & 1) as usize] = f64::NAN;
        }
        self.present.clear();
        self.placed.fill(false);
    }

    /// Overwrite this state with `src`, reusing the existing allocations
    /// (the allocation-free counterpart of `*self = src.clone()`, used by
    /// the incremental evaluator to resume walks from memoized
    /// snapshots). Both states must describe the same query.
    pub fn copy_from(&mut self, src: &DistinctState) {
        self.distinct.clone_from(&src.distinct);
        self.placed.clone_from(&src.placed);
        self.present.clone_from(&src.present);
    }

    /// The current distinct estimate of the given column (`NaN` when the
    /// column is not present yet). For differential tests against the
    /// dense reference.
    #[inline]
    pub fn distinct(&self, eid: EdgeId, side: usize) -> f64 {
        self.distinct[eid.index()][side]
    }

    /// Place the leading relation of an order (no join happens).
    pub fn admit_first(&mut self, query: &Query, rel: RelId) {
        self.admit(query, rel);
    }

    /// Combined selectivity of joining `inner` against the placed set,
    /// using the *current* (propagated) distinct counts. `None` means no
    /// edge connects `inner` to the placed set (cross product). Appends
    /// the contributing edges with their distinct counts to `joined` for
    /// a subsequent [`DistinctState::place`].
    pub fn join_selectivity(
        &self,
        query: &Query,
        inner: RelId,
        joined: &mut Vec<(EdgeId, f64, f64)>,
    ) -> Option<f64> {
        let mut sel: Option<f64> = None;
        for &eid in query.graph().incident(inner) {
            let e = query.graph().edge(eid);
            let Some(other) = e.other(inner) else {
                continue;
            };
            if !self.placed[other.index()] {
                continue;
            }
            let outer_side = Self::side(query, eid, other);
            let d_outer = self.distinct[eid.index()][outer_side];
            let d_inner = e.distinct_on(inner).unwrap_or(1.0);
            let s = 1.0 / d_outer.max(d_inner).max(1.0);
            *sel.get_or_insert(1.0) *= s;
            joined.push((eid, d_outer, d_inner));
        }
        sel
    }

    /// Fold `inner` into the placed set after its join produced `output`
    /// rows: admit its columns, intersect the equi-joined domains listed
    /// in `joined` (as returned by [`DistinctState::join_selectivity`]),
    /// and shrink every present column to the new row count.
    pub fn place(
        &mut self,
        query: &Query,
        inner: RelId,
        output: f64,
        joined: &[(EdgeId, f64, f64)],
    ) {
        self.admit(query, inner);
        for &(eid, d_outer, d_inner) in joined {
            // Equi-join intersects the two domains.
            let merged = d_outer.min(d_inner);
            self.distinct[eid.index()] = [
                non_nan_min(self.distinct[eid.index()][0], merged),
                non_nan_min(self.distinct[eid.index()][1], merged),
            ];
        }
        self.shrink_all(output);
    }
}

/// Left-deep size estimation with distinct-value propagation.
///
/// Mirrors [`crate::estimate::SizeWalker`]'s interface: `walk` invokes a
/// callback per join step and returns the final cardinality. The
/// underlying bookkeeping lives in [`DistinctState`], which incremental
/// evaluators snapshot per prefix instead of re-walking from scratch.
#[derive(Debug)]
pub struct PropagatingWalker {
    state: DistinctState,
    /// Scratch for the per-step contributing-edge list, reused across
    /// walks so a warm walker performs no heap allocation.
    joined_edges: Vec<(EdgeId, f64, f64)>,
}

impl PropagatingWalker {
    /// Create a walker for `query`.
    pub fn new(query: &Query) -> Self {
        PropagatingWalker {
            state: DistinctState::new(query),
            joined_edges: Vec::new(),
        }
    }

    /// Walk `order`, calling `f` per join step; returns the final
    /// cardinality. The walker resets itself first, so one walker can be
    /// reused across walks (allocation-free once its scratch is warm).
    pub fn walk<F: FnMut(&JoinStep)>(&mut self, query: &Query, order: &[RelId], mut f: F) -> f64 {
        self.state.reset();
        let mut iter = order.iter();
        let Some(&first) = iter.next() else {
            return 0.0;
        };
        self.state.admit_first(query, first);
        let mut card = clamp_card(query.cardinality(first));

        for &inner in iter {
            let inner_card = query.cardinality(inner);
            // Gather the edges joining `inner` to the placed set, with the
            // CURRENT outer-side distinct counts.
            self.joined_edges.clear();
            let sel = self
                .state
                .join_selectivity(query, inner, &mut self.joined_edges);
            let output = clamp_card(card * inner_card * sel.unwrap_or(1.0));
            f(&JoinStep {
                inner,
                outer_card: card,
                inner_card,
                output_card: output,
                is_cross_product: sel.is_none(),
            });

            // Admit the inner's columns, then update distinct counts.
            self.state.place(query, inner, output, &self.joined_edges);
            card = output;
        }
        card
    }
}

#[inline]
fn non_nan_min(current: f64, merged: f64) -> f64 {
    if current.is_nan() {
        current
    } else {
        current.min(merged)
    }
}

/// Total cost of `order` under `model` using the *propagated* estimator
/// (counterpart of [`CostModel::order_cost`], which uses the static
/// one). This is the full-walk reference that
/// [`crate::incremental::IncrementalEvaluator`] in propagated mode must
/// agree with bit-for-bit.
pub fn order_cost_propagated(query: &Query, model: &dyn CostModel, order: &[RelId]) -> f64 {
    let mut total = 0.0f64;
    let mut outer_rels = 1usize;
    PropagatingWalker::new(query).walk(query, order, |s| {
        total += model.join_cost(&JoinCtx {
            outer_card: s.outer_card,
            inner_card: s.inner_card,
            output_card: s.output_card,
            outer_rels,
            is_cross_product: s.is_cross_product,
        });
        outer_rels += 1;
    });
    total.min(f64::MAX)
}

/// Estimated intermediate sizes with distinct propagation (counterpart of
/// [`crate::estimate::intermediate_sizes`]).
pub fn intermediate_sizes_propagated(query: &Query, order: &[RelId]) -> Vec<f64> {
    let mut sizes = Vec::with_capacity(order.len().saturating_sub(1));
    PropagatingWalker::new(query).walk(query, order, |s| sizes.push(s.output_card));
    sizes
}

/// Dense reference implementation of [`DistinctState`]'s bookkeeping.
///
/// [`DistinctState`] tracks the set of present columns explicitly so its
/// per-step Yao shrinkage is O(present); this type keeps the original
/// "scan every slot, skip NaN" formulation. Because Yao shrinkage is
/// applied per slot with no cross-slot interaction, the two must agree
/// **bit for bit** after any identical operation sequence — the
/// `compiled_props` differential suite replays random walks through both
/// and asserts exactly that. Not used by any optimizer path.
#[derive(Debug, Clone)]
pub struct DenseDistinctState {
    distinct: Vec<[f64; 2]>,
    placed: Vec<bool>,
}

impl DenseDistinctState {
    /// Empty state for `query`: nothing placed, no columns present.
    pub fn new(query: &Query) -> Self {
        DenseDistinctState {
            distinct: vec![[f64::NAN; 2]; query.graph().edges().len()],
            placed: vec![false; query.n_relations()],
        }
    }

    fn admit(&mut self, query: &Query, rel: RelId) {
        for &eid in query.graph().incident(rel) {
            let side = DistinctState::side(query, eid, rel);
            self.distinct[eid.index()][side] =
                query.graph().edge(eid).distinct_on(rel).unwrap_or(1.0);
        }
        self.placed[rel.index()] = true;
    }

    fn shrink_all(&mut self, rows: f64) {
        for slots in &mut self.distinct {
            for d in slots {
                if !d.is_nan() {
                    *d = yao(*d, rows).min(*d);
                }
            }
        }
    }

    /// As [`DistinctState::admit_first`].
    pub fn admit_first(&mut self, query: &Query, rel: RelId) {
        self.admit(query, rel);
    }

    /// As [`DistinctState::join_selectivity`].
    pub fn join_selectivity(
        &self,
        query: &Query,
        inner: RelId,
        joined: &mut Vec<(EdgeId, f64, f64)>,
    ) -> Option<f64> {
        let mut sel: Option<f64> = None;
        for &eid in query.graph().incident(inner) {
            let e = query.graph().edge(eid);
            let Some(other) = e.other(inner) else {
                continue;
            };
            if !self.placed[other.index()] {
                continue;
            }
            let outer_side = DistinctState::side(query, eid, other);
            let d_outer = self.distinct[eid.index()][outer_side];
            let d_inner = e.distinct_on(inner).unwrap_or(1.0);
            let s = 1.0 / d_outer.max(d_inner).max(1.0);
            *sel.get_or_insert(1.0) *= s;
            joined.push((eid, d_outer, d_inner));
        }
        sel
    }

    /// As [`DistinctState::place`].
    pub fn place(
        &mut self,
        query: &Query,
        inner: RelId,
        output: f64,
        joined: &[(EdgeId, f64, f64)],
    ) {
        self.admit(query, inner);
        for &(eid, d_outer, d_inner) in joined {
            let merged = d_outer.min(d_inner);
            self.distinct[eid.index()] = [
                non_nan_min(self.distinct[eid.index()][0], merged),
                non_nan_min(self.distinct[eid.index()][1], merged),
            ];
        }
        self.shrink_all(output);
    }

    /// As [`DistinctState::distinct`] (`NaN` = column not present).
    #[inline]
    pub fn distinct(&self, eid: EdgeId, side: usize) -> f64 {
        self.distinct[eid.index()][side]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::intermediate_sizes;
    use ljqo_catalog::QueryBuilder;

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn yao_limits() {
        assert_eq!(yao(1.0, 100.0), 1.0);
        // Sampling far more rows than distincts keeps all distincts.
        assert!((yao(10.0, 10_000.0) - 10.0).abs() < 1e-9);
        // Sampling one row keeps about one distinct.
        assert!((yao(1000.0, 1.0) - 1.0).abs() < 0.01);
        // Monotone in rows.
        assert!(yao(100.0, 50.0) < yao(100.0, 200.0));
    }

    #[test]
    fn matches_static_estimator_on_simple_chains() {
        // On an acyclic chain where each join column is used once, the
        // propagated estimate of each *next* join equals the static one
        // as long as no prior step reduced the relevant distinct counts.
        let q = QueryBuilder::new()
            .relation("a", 1000)
            .relation("b", 1000)
            .relation("c", 1000)
            .join_on_distincts("a", "b", 1000.0, 1000.0)
            .join_on_distincts("b", "c", 1000.0, 1000.0)
            .build()
            .unwrap();
        let order = ids(&[0, 1, 2]);
        let s = intermediate_sizes(&q, &order);
        let p = intermediate_sizes_propagated(&q, &order);
        // |a⋈b| = 1000 under both.
        assert!((s[0] - p[0]).abs() < 1e-9);
        // With 1000 rows over 1000 distincts in b.c's column, Yao keeps
        // ~632 distinct values, so the propagated second join is LESS
        // selective (1/1000) only via max(d_inner)=1000 -> same here.
        assert!((p[1] - s[1]).abs() / s[1] < 0.01);
    }

    #[test]
    fn repeated_join_columns_lose_selectivity() {
        // Two relations both joining a hub on the SAME hub column
        // (modeled as two edges with the hub side sharing distincts):
        // after the first join shrinks the hub's rows, the second join
        // against a now-smaller column domain must be estimated as less
        // selective per row than the static model claims.
        let q = QueryBuilder::new()
            .relation("hub", 10_000)
            .relation("d1", 100)
            .relation("d2", 100)
            .join_on_distincts("hub", "d1", 10_000.0, 100.0)
            .join_on_distincts("hub", "d2", 10_000.0, 100.0)
            .build()
            .unwrap();
        let order = ids(&[0, 1, 2]);
        let s = intermediate_sizes(&q, &order);
        let p = intermediate_sizes_propagated(&q, &order);
        assert!((s[0] - p[0]).abs() < 1e-9, "first join identical");
        // Static second join: 1/max(10000,100) = 1e-4.
        // Propagated: hub⋈d1 has 100 rows; the hub-d2 column's distincts
        // shrink via Yao(10000, 100) ≈ 99.5 -> sel ≈ 1/100: ~100x larger
        // estimate.
        assert!(
            p[1] > s[1] * 20.0,
            "propagated {} should far exceed static {}",
            p[1],
            s[1]
        );
    }

    #[test]
    fn cross_products_still_detected() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        let mut steps = Vec::new();
        PropagatingWalker::new(&q).walk(&q, &ids(&[0, 1, 2]), |s| steps.push(*s));
        assert!(!steps[0].is_cross_product);
        assert!(steps[1].is_cross_product);
    }

    #[test]
    fn final_sizes_stay_positive_and_finite() {
        let q = QueryBuilder::new()
            .relation("a", 100_000)
            .relation("b", 50_000)
            .relation("c", 200)
            .relation("d", 9)
            .join_on_distincts("a", "b", 40_000.0, 30_000.0)
            .join_on_distincts("b", "c", 150.0, 180.0)
            .join_on_distincts("c", "d", 9.0, 9.0)
            .join_on_distincts("a", "d", 9.0, 9.0)
            .build()
            .unwrap();
        for order in [ids(&[0, 1, 2, 3]), ids(&[3, 2, 1, 0]), ids(&[2, 1, 0, 3])] {
            let p = intermediate_sizes_propagated(&q, &order);
            assert!(p.iter().all(|v| v.is_finite() && *v > 0.0), "{order:?}");
        }
    }
}
