//! Multiple join methods — the paper's first stated extension.
//!
//! §7: *"Our work can be extended by incorporating join methods other
//! than the hash join method."* This model prices each join under three
//! physical operators and charges the cheapest:
//!
//! * **hash join** — as [`crate::MemoryCostModel`];
//! * **nested loops** — quadratic, but with no build cost: wins when the
//!   inner is tiny;
//! * **sort-merge** — `n log n` sorts plus a linear merge: wins when both
//!   inputs are large but the output is small.
//!
//! The search space is unchanged (still permutations of relations), so
//! every optimizer in this workspace works under this model untouched.
//! One caveat the paper itself raises (§1, §4.2): the KBZ rank theory
//! requires per-join costs of the form `|outer|·g(inner)`, which
//! sort-merge violates — under this model the KBZ heuristic loses its
//! per-rooted-tree optimality guarantee and becomes "just" a heuristic,
//! while augmentation, II and SA are unaffected. This is precisely the
//! cost-model-independence argument the paper makes for its methods.

use ljqo_catalog::{Query, RelId};

use crate::model::{bound_ingredients, CostModel, JoinCtx};

/// A physical join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    /// Classic in-memory hash join (build inner, probe outer).
    Hash,
    /// Tuple-at-a-time nested loops (no setup cost).
    NestedLoop,
    /// Sort both inputs, merge.
    SortMerge,
}

impl JoinMethod {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinMethod::Hash => "hash",
            JoinMethod::NestedLoop => "nested-loop",
            JoinMethod::SortMerge => "sort-merge",
        }
    }
}

/// Main-memory cost model that picks the cheapest of three join methods
/// per join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiMethodCostModel {
    /// Hash: per-inner-tuple build cost.
    pub hash_build: f64,
    /// Hash: per-outer-tuple probe cost.
    pub hash_probe: f64,
    /// Nested loops: cost per (outer, inner) tuple pair examined.
    pub nl_pair: f64,
    /// Sort-merge: per-tuple-comparison sort constant (multiplies
    /// `n·log₂n`).
    pub sort_tuple: f64,
    /// Sort-merge: per-tuple merge scan cost.
    pub merge_tuple: f64,
    /// All methods: per-result-tuple output cost.
    pub output: f64,
}

impl Default for MultiMethodCostModel {
    fn default() -> Self {
        MultiMethodCostModel {
            hash_build: 1.5,
            hash_probe: 1.0,
            nl_pair: 0.25,
            sort_tuple: 0.8,
            merge_tuple: 0.5,
            output: 1.0,
        }
    }
}

impl MultiMethodCostModel {
    /// Cost of one join under a specific method.
    pub fn method_cost(&self, method: JoinMethod, ctx: &JoinCtx) -> f64 {
        let out = self.output * ctx.output_card;
        match method {
            JoinMethod::Hash => {
                self.hash_build * ctx.inner_card + self.hash_probe * ctx.outer_card + out
            }
            JoinMethod::NestedLoop => self.nl_pair * ctx.outer_card * ctx.inner_card + out,
            JoinMethod::SortMerge => {
                let sort = |n: f64| n * n.max(2.0).log2() * self.sort_tuple;
                sort(ctx.outer_card)
                    + sort(ctx.inner_card)
                    + self.merge_tuple * (ctx.outer_card + ctx.inner_card)
                    + out
            }
        }
    }

    /// The cheapest method for one join and its cost. Cross products are
    /// forced to nested loops (there is no key to hash or merge on).
    pub fn best_method(&self, ctx: &JoinCtx) -> (JoinMethod, f64) {
        if ctx.is_cross_product {
            return (
                JoinMethod::NestedLoop,
                self.method_cost(JoinMethod::NestedLoop, ctx),
            );
        }
        [
            JoinMethod::Hash,
            JoinMethod::NestedLoop,
            JoinMethod::SortMerge,
        ]
        .into_iter()
        .map(|m| (m, self.method_cost(m, ctx)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
    }

    /// Annotate an order with the chosen method per join (for EXPLAIN
    /// output and tests).
    pub fn annotate(&self, query: &Query, order: &[RelId]) -> Vec<(RelId, JoinMethod)> {
        let mut walker = crate::estimate::SizeWalker::new(query.n_relations());
        let mut out = Vec::with_capacity(order.len().saturating_sub(1));
        let mut outer_rels = 1usize;
        walker.walk(query, order, |s| {
            let ctx = JoinCtx {
                outer_card: s.outer_card,
                inner_card: s.inner_card,
                output_card: s.output_card,
                outer_rels,
                is_cross_product: s.is_cross_product,
            };
            out.push((s.inner, self.best_method(&ctx).0));
            outer_rels += 1;
        });
        out
    }
}

impl CostModel for MultiMethodCostModel {
    fn join_cost(&self, ctx: &JoinCtx) -> f64 {
        self.best_method(ctx).1
    }

    fn name(&self) -> &'static str {
        "multi-method"
    }

    /// Admissible: every result tuple must be emitted, and each non-first
    /// relation participates in at least one join whose cost is at least
    /// the cheapest conceivable handling of that relation (a merge scan).
    fn lower_bound(&self, query: &Query, component: &[RelId]) -> f64 {
        if component.len() < 2 {
            return 0.0;
        }
        let (final_size, cards) = bound_ingredients(query, component);
        let touch_sum: f64 = cards.iter().sum();
        let touch_max = cards.iter().cloned().fold(0.0, f64::max);
        let per_tuple_floor = self.merge_tuple.min(self.hash_build).min(self.nl_pair);
        per_tuple_floor * (touch_sum - touch_max) + self.output * final_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    fn ctx(outer: f64, inner: f64, output: f64) -> JoinCtx {
        JoinCtx {
            outer_card: outer,
            inner_card: inner,
            output_card: output,
            outer_rels: 1,
            is_cross_product: false,
        }
    }

    #[test]
    fn tiny_inner_prefers_nested_loops() {
        let m = MultiMethodCostModel::default();
        // Inner of 2 tuples: NL pays 0.25·outer·2 = 0.5·outer, cheaper
        // than hashing (probe alone costs 1.0·outer).
        let (method, _) = m.best_method(&ctx(10_000.0, 2.0, 100.0));
        assert_eq!(method, JoinMethod::NestedLoop);
    }

    #[test]
    fn balanced_large_inputs_prefer_hash() {
        let m = MultiMethodCostModel::default();
        let (method, _) = m.best_method(&ctx(50_000.0, 50_000.0, 1_000.0));
        assert_eq!(method, JoinMethod::Hash);
    }

    #[test]
    fn sort_merge_wins_when_sorting_is_cheap() {
        // Make sorting nearly free and hashing expensive.
        let m = MultiMethodCostModel {
            sort_tuple: 0.001,
            merge_tuple: 0.01,
            hash_build: 10.0,
            hash_probe: 10.0,
            ..MultiMethodCostModel::default()
        };
        let (method, _) = m.best_method(&ctx(10_000.0, 10_000.0, 10.0));
        assert_eq!(method, JoinMethod::SortMerge);
    }

    #[test]
    fn cross_products_are_nested_loops() {
        let m = MultiMethodCostModel::default();
        let mut c = ctx(100.0, 100.0, 10_000.0);
        c.is_cross_product = true;
        assert_eq!(m.best_method(&c).0, JoinMethod::NestedLoop);
    }

    #[test]
    fn join_cost_is_min_over_methods() {
        let m = MultiMethodCostModel::default();
        let c = ctx(3_000.0, 700.0, 400.0);
        let min = [
            JoinMethod::Hash,
            JoinMethod::NestedLoop,
            JoinMethod::SortMerge,
        ]
        .into_iter()
        .map(|mm| m.method_cost(mm, &c))
        .fold(f64::INFINITY, f64::min);
        assert_eq!(m.join_cost(&c), min);
    }

    #[test]
    fn annotate_covers_every_join() {
        let q = QueryBuilder::new()
            .relation("big", 100_000)
            .relation("tiny", 3)
            .relation("mid", 5_000)
            .join("big", "tiny", 0.4)
            .join("big", "mid", 0.0002)
            .build()
            .unwrap();
        let m = MultiMethodCostModel::default();
        let order: Vec<RelId> = q.rel_ids().collect();
        let plan = m.annotate(&q, &order);
        assert_eq!(plan.len(), 2);
        // The 3-tuple inner should be joined by nested loops.
        assert_eq!(plan[0], (RelId(1), JoinMethod::NestedLoop));
    }

    #[test]
    fn lower_bound_admissible_on_samples() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let q = QueryBuilder::new()
            .relation("a", 5_000)
            .relation("b", 300)
            .relation("c", 12_000)
            .relation("d", 45)
            .join("a", "b", 0.003)
            .join("b", "c", 0.0001)
            .join("c", "d", 0.02)
            .build()
            .unwrap();
        let m = MultiMethodCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let lb = m.lower_bound(&q, &comp);
        assert!(lb > 0.0);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..50 {
            let o = ljqo_plan::random_valid_order(q.graph(), &comp, &mut rng);
            assert!(m.order_cost(&q, o.rels()) >= lb - 1e-9);
        }
    }

    #[test]
    fn multi_method_cost_never_exceeds_pure_hash() {
        let hash = crate::MemoryCostModel::default();
        let multi = MultiMethodCostModel::default();
        let q = QueryBuilder::new()
            .relation("a", 5_000)
            .relation("b", 3)
            .relation("c", 12_000)
            .join("a", "b", 0.3)
            .join("b", "c", 0.3)
            .build()
            .unwrap();
        let order: Vec<RelId> = q.rel_ids().collect();
        assert!(multi.order_cost(&q, &order) <= hash.order_cost(&q, &order) + 1e-9);
    }
}
