//! Wall-clock deadlines composing with the deterministic unit budget.
//!
//! The paper's time limits are expressed in machine-independent budget
//! units (`τ·N²·κ`, see [`crate::TimeLimit`]), which keeps experiments
//! reproducible. A production optimizer additionally needs a hard
//! wall-clock bound: no matter how the calibration constant `κ` relates
//! to the actual hardware, the driver must hand back *a* plan within the
//! caller's latency envelope. [`Deadline`] provides that bound; the
//! [`crate::Evaluator`] polls it at an amortized interval so the hot
//! evaluation loop does not pay for a clock read per plan.

use std::time::{Duration, Instant};

/// A wall-clock deadline. Cheap to copy; `None` internally means "never
/// expires" (used when a requested duration overflows `Instant`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `d` from now. Durations too large to represent never
    /// expire.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(d),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// A deadline that has already expired (useful in tests and for
    /// "plan with whatever you have" requests).
    pub fn immediate() -> Self {
        Deadline {
            at: Some(Instant::now()),
        }
    }

    /// A deadline that never expires.
    pub fn never() -> Self {
        Deadline { at: None }
    }

    /// Whether the deadline has passed. Reads the clock.
    pub fn expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Time left before expiry (zero once expired, `None` if the deadline
    /// never expires).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_deadline_is_expired() {
        assert!(Deadline::immediate().expired());
        assert_eq!(Deadline::immediate().remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn far_deadline_is_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn never_deadline_does_not_expire() {
        let d = Deadline::never();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn overflowing_duration_never_expires() {
        let d = Deadline::after(Duration::MAX);
        assert!(!d.expired());
    }
}
