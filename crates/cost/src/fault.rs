//! Fault-injecting cost model wrapper for robustness tests.
//!
//! Cost models consume catalog statistics that may be stale, extreme, or
//! plain wrong, and third-party models can have bugs of their own. The
//! optimizer driver therefore treats a model as an untrusted component:
//! non-finite costs are saturated by the [`crate::Evaluator`] and panics
//! are isolated per component / worker in `ljqo-core`. [`FaultyCostModel`]
//! exists to test exactly those paths: it wraps any inner model and
//! injects a deterministic fault on the k-th full plan evaluation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;

use ljqo_catalog::{Query, RelId};

use crate::estimate::SizeWalker;
use crate::model::{CostModel, JoinCtx};

/// What the wrapper injects, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic on exactly the k-th full plan evaluation (1-based); all other
    /// evaluations pass through.
    PanicOnKth(u64),
    /// Return `NaN` for the k-th full plan evaluation (1-based); all other
    /// evaluations pass through.
    NanOnKth(u64),
    /// Panic on every evaluation performed by any thread other than the
    /// first thread to evaluate. Under a parallel multi-start run this
    /// deterministically kills all workers but one, which is the
    /// worst-case input for per-worker panic isolation.
    PanicOnAllButFirstThread,
}

/// A [`CostModel`] wrapper that injects one deterministic fault.
///
/// Evaluations are counted across threads with an atomic counter, so the
/// k-th evaluation is well-defined (if racy in *which* order triggers it)
/// even under `run_parallel`. The wrapper is written for tests: it panics
/// or emits `NaN` so the robustness of the surrounding machinery —
/// saturation in the evaluator, `catch_unwind` isolation in the driver —
/// can be asserted.
pub struct FaultyCostModel<M> {
    inner: M,
    mode: FaultMode,
    evals: AtomicU64,
    first_thread: Mutex<Option<ThreadId>>,
}

impl<M: CostModel> FaultyCostModel<M> {
    /// Wrap `inner`, injecting according to `mode`.
    pub fn new(inner: M, mode: FaultMode) -> Self {
        FaultyCostModel {
            inner,
            mode,
            evals: AtomicU64::new(0),
            first_thread: Mutex::new(None),
        }
    }

    /// Number of full plan evaluations seen so far (including the faulted
    /// one).
    pub fn evals(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    fn register_eval(&self) -> u64 {
        self.evals.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether the calling thread is the first thread ever to evaluate
    /// through this wrapper (claiming the slot if unclaimed).
    fn is_first_thread(&self) -> bool {
        let me = std::thread::current().id();
        let mut slot = self.first_thread.lock().expect("fault-model lock");
        match *slot {
            Some(first) => first == me,
            None => {
                *slot = Some(me);
                true
            }
        }
    }
}

impl<M: CostModel> CostModel for FaultyCostModel<M> {
    fn join_cost(&self, ctx: &JoinCtx) -> f64 {
        self.inner.join_cost(ctx)
    }

    fn name(&self) -> &'static str {
        "faulty"
    }

    fn order_cost_with(&self, query: &Query, order: &[RelId], walker: &mut SizeWalker) -> f64 {
        let n = self.register_eval();
        match self.mode {
            FaultMode::PanicOnKth(k) if n == k => {
                panic!("injected cost-model fault: panic on evaluation {k}")
            }
            FaultMode::NanOnKth(k) if n == k => f64::NAN,
            FaultMode::PanicOnAllButFirstThread if !self.is_first_thread() => {
                panic!("injected cost-model fault: panic on non-first worker thread")
            }
            _ => self.inner.order_cost_with(query, order, walker),
        }
    }

    fn lower_bound(&self, query: &Query, component: &[RelId]) -> f64 {
        self.inner.lower_bound(query, component)
    }

    /// Fault injection hooks `order_cost_with`; an incremental evaluation
    /// sums `join_cost` directly and would never trigger the fault, so this
    /// model opts out and forces the full-evaluation path.
    fn supports_incremental(&self) -> bool {
        false
    }

    /// A model that panics or emits `NaN` mid-stream has no meaningful
    /// monotone cost surface; opting out keeps the `ljqo::bound`
    /// certifier from deriving a "lower bound" out of injected faults.
    fn monotone_join_cost(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryCostModel;
    use ljqo_catalog::QueryBuilder;

    fn q() -> Query {
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 200)
            .join("a", "b", 0.01)
            .build()
            .unwrap()
    }

    #[test]
    fn passes_through_until_the_fault() {
        let query = q();
        let order: Vec<RelId> = query.rel_ids().collect();
        let clean = MemoryCostModel::default().order_cost(&query, &order);
        let faulty = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::NanOnKth(3));
        assert_eq!(faulty.order_cost(&query, &order), clean);
        assert_eq!(faulty.order_cost(&query, &order), clean);
        assert!(faulty.order_cost(&query, &order).is_nan());
        assert_eq!(faulty.order_cost(&query, &order), clean);
        assert_eq!(faulty.evals(), 4);
    }

    #[test]
    fn panic_mode_panics_exactly_on_kth() {
        let query = q();
        let order: Vec<RelId> = query.rel_ids().collect();
        let faulty = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::PanicOnKth(2));
        let _ = faulty.order_cost(&query, &order);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faulty.order_cost(&query, &order)
        }));
        assert!(caught.is_err());
        let _ = faulty.order_cost(&query, &order);
    }

    #[test]
    fn first_thread_survives_thread_fault_mode() {
        let query = q();
        let order: Vec<RelId> = query.rel_ids().collect();
        let faulty = FaultyCostModel::new(
            MemoryCostModel::default(),
            FaultMode::PanicOnAllButFirstThread,
        );
        // This thread claims the first-evaluator slot...
        let c = faulty.order_cost(&query, &order);
        assert!(c.is_finite());
        // ...so another thread must panic.
        let caught = std::thread::scope(|s| {
            s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faulty.order_cost(&query, &order)
                }))
            })
            .join()
            .expect("probe thread itself must not die")
        });
        assert!(caught.is_err());
        // The first thread keeps working.
        assert_eq!(faulty.order_cost(&query, &order), c);
    }
}
