//! Tree-shaped incremental cost evaluation for the bushy search space.
//!
//! The bushy analogue of [`IncrementalEvaluator`](crate::IncrementalEvaluator):
//! where the linear evaluator memoizes per-*prefix* cost/cardinality and
//! re-costs a move from its first touched position, [`TreeEvaluator`]
//! memoizes per-*node* `(output cardinality, accumulated subtree cost)`
//! and re-costs exactly the nodes a tree move dirtied — by construction
//! (see [`TreePlan::dirty_nodes`]) the union of paths from every touched
//! subtree to the root. Everything below the dirty paths is reused from
//! the memo.
//!
//! # Recurrence — and bit-identity with the linear walk
//!
//! Per node, children before parents:
//!
//! * leaf: `card = cardinality(rel)` (raw), `cost = 0`;
//! * join `(L, R)`: `sel` = product over all join edges crossing
//!   `(L.set, R.set)` in ascending edge order; the outer operand is
//!   clamped when it is a base relation (mirroring the linear walk's
//!   clamped first relation), inner left raw (mirroring `inner_card`);
//!   `output = clamp_card(outer · inner · sel)`;
//!   `cost = cost(L) + cost(R) + model.join_cost(...)` with
//!   `outer_rels = output width − 1`.
//!
//! On an outer-linear (left-deep) tree this reproduces
//! [`CostModel::order_cost`] **bit for bit**: the crossing-edge fold
//! restricted to an inner leaf enumerates exactly the placed incident
//! edges in the same (ascending edge id) order as
//! [`estimate::selectivity_into`](crate::estimate::selectivity_into) and
//! the compiled CSR slots; the products and the cost sum associate
//! identically. That makes bushy-vs-linear comparisons exact rather than
//! tolerance-based. Each node's value is a pure function of its
//! children's values, so the path-to-root recompute is bit-identical to a
//! full bottom-up re-cost — debug builds assert this on **every** move.
//!
//! # Protocol
//!
//! [`propose`](TreeEvaluator::propose) → [`eval_pending`](TreeEvaluator::eval_pending)
//! → [`commit`](TreeEvaluator::commit) or [`rollback`](TreeEvaluator::rollback),
//! mirroring the linear `eval_applied`/`commit`/`rollback` shape.
//! Candidate values live in epoch-marked scratch arrays, so neither
//! rollback nor the next proposal needs to clear anything; the
//! steady-state loop performs no heap allocation (enforced by the
//! workspace's counting-allocator test).

use std::sync::Arc;

use rand::Rng;

use ljqo_catalog::{CompiledQuery, EdgeId};
use ljqo_plan::{TreeMove, TreeMoveSet, TreeNode, TreePlan};

use crate::estimate::clamp_card;
use crate::{sanitize_cost, CostModel, JoinCtx};

/// Per-node `(output cardinality, accumulated cost)` for one join node.
///
/// Free function (not a method) so the evaluator can call it while
/// holding disjoint borrows of its scratch arrays.
#[inline]
fn join_value(
    model: &dyn CostModel,
    cq: &CompiledQuery,
    l: &TreeNode,
    lv: (f64, f64),
    r: &TreeNode,
    rv: (f64, f64),
) -> (f64, f64) {
    let mut sel: Option<f64> = None;
    for e in 0..cq.n_edges() {
        let eid = EdgeId(e as u32);
        let a = cq.edge_a(eid).index();
        let b = cq.edge_b(eid).index();
        let crosses = (l.set.test(a) && r.set.test(b)) || (l.set.test(b) && r.set.test(a));
        if crosses {
            *sel.get_or_insert(1.0) *= cq.edge_selectivity(eid);
        }
    }
    // Clamp rule mirrors the linear walk exactly: the walk clamps the
    // *first* (outer-side) base relation and leaves every inner base
    // relation raw; intermediates are clamped as they are produced.
    let outer_card = if l.is_leaf() { clamp_card(lv.0) } else { lv.0 };
    let inner_card = rv.0;
    let output = clamp_card(outer_card * inner_card * sel.unwrap_or(1.0));
    let step = model.join_cost(&JoinCtx {
        outer_card,
        inner_card,
        output_card: output,
        outer_rels: (l.width() + r.width()) as usize - 1,
        is_cross_product: sel.is_none(),
    });
    (output, lv.1 + rv.1 + step)
}

/// Full bottom-up evaluation of `plan` into `card`/`cost` (indexed by
/// arena node id), using `post`/`stack` as traversal scratch. Returns the
/// root's accumulated cost (unsanitized).
fn compute_full(
    model: &dyn CostModel,
    cq: &CompiledQuery,
    plan: &TreePlan,
    card: &mut [f64],
    cost: &mut [f64],
    post: &mut Vec<u32>,
    stack: &mut Vec<u32>,
) -> f64 {
    post.clear();
    stack.clear();
    stack.push(plan.root());
    while let Some(id) = stack.pop() {
        post.push(id);
        let n = plan.node(id);
        if !n.is_leaf() {
            stack.push(n.left);
            stack.push(n.right);
        }
    }
    // `post` holds parents before children; reverse for bottom-up.
    for i in (0..post.len()).rev() {
        let id = post[i];
        let n = plan.node(id);
        let v = if n.is_leaf() {
            (cq.cardinality(n.rel), 0.0)
        } else {
            let l = plan.node(n.left);
            let r = plan.node(n.right);
            let lv = (card[n.left as usize], cost[n.left as usize]);
            let rv = (card[n.right as usize], cost[n.right as usize]);
            join_value(model, cq, l, lv, r, rv)
        };
        card[id as usize] = v.0;
        cost[id as usize] = v.1;
    }
    cost[plan.root() as usize]
}

/// Budget-free tree-shaped cost evaluator owning a [`TreePlan`].
///
/// Budgeting stays with [`Evaluator`](crate::Evaluator) (the search loop
/// pairs every [`TreeEvaluator::eval_pending`] with
/// [`Evaluator::charge_eval`](crate::Evaluator::charge_eval)); this type
/// owns only the memoized per-node state and the pending-move protocol.
pub struct TreeEvaluator<'a> {
    model: &'a dyn CostModel,
    compiled: Arc<CompiledQuery>,
    plan: TreePlan,
    memo_card: Vec<f64>,
    memo_cost: Vec<f64>,
    cand_card: Vec<f64>,
    cand_cost: Vec<f64>,
    /// Epoch marks: `cand_*[i]` is live iff `cand_mark[i] == epoch`.
    cand_mark: Vec<u64>,
    epoch: u64,
    /// Copy of the pending move's dirty node list (the plan's own scratch
    /// is invalidated by `accept`, and `commit` needs the list after it).
    dirty: Vec<u32>,
    post: Vec<u32>,
    stack: Vec<u32>,
    pending: bool,
}

impl<'a> TreeEvaluator<'a> {
    /// Create an evaluator owning `plan`, fully evaluating it once
    /// (off any budget — callers charge their evaluator separately).
    pub fn new(model: &'a dyn CostModel, compiled: Arc<CompiledQuery>, plan: TreePlan) -> Self {
        let n = plan.n_nodes();
        let mut ev = TreeEvaluator {
            model,
            compiled,
            plan,
            memo_card: vec![0.0; n],
            memo_cost: vec![0.0; n],
            cand_card: vec![0.0; n],
            cand_cost: vec![0.0; n],
            cand_mark: vec![0; n],
            epoch: 0,
            dirty: Vec::with_capacity(n),
            post: Vec::with_capacity(n),
            stack: Vec::with_capacity(n),
            pending: false,
        };
        ev.rebuild();
        ev
    }

    /// The current (resolved) tree.
    #[inline]
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// The compiled query snapshot this evaluator costs against.
    #[inline]
    pub fn compiled(&self) -> &Arc<CompiledQuery> {
        &self.compiled
    }

    /// Replace the owned tree (e.g. a restart from a fresh random order),
    /// reusing buffers where capacities allow, and re-evaluate.
    pub fn reset(&mut self, plan: TreePlan) {
        assert!(!self.pending, "reset with an unresolved pending move");
        self.plan = plan;
        let n = self.plan.n_nodes();
        self.memo_card.resize(n, 0.0);
        self.memo_cost.resize(n, 0.0);
        self.cand_card.resize(n, 0.0);
        self.cand_cost.resize(n, 0.0);
        self.cand_mark.clear();
        self.cand_mark.resize(n, 0);
        self.epoch = 0;
        self.rebuild();
    }

    /// Copy another plan's state into the owned tree (no allocation when
    /// shapes match, e.g. restoring the best tree) and re-evaluate.
    pub fn reset_from(&mut self, plan: &TreePlan) {
        assert!(!self.pending, "reset with an unresolved pending move");
        self.plan.copy_from(plan);
        self.rebuild();
    }

    fn rebuild(&mut self) {
        compute_full(
            self.model,
            &self.compiled,
            &self.plan,
            &mut self.memo_card,
            &mut self.memo_cost,
            &mut self.post,
            &mut self.stack,
        );
    }

    /// Cost of the current (resolved) tree, sanitized like
    /// [`Evaluator::cost`](crate::Evaluator::cost) sanitizes order costs.
    #[inline]
    pub fn current_cost(&self) -> f64 {
        debug_assert!(!self.pending);
        sanitize_cost(self.memo_cost[self.plan.root() as usize].min(f64::MAX))
    }

    /// Estimated cardinality of the tree's final result.
    #[inline]
    pub fn final_card(&self) -> f64 {
        debug_assert!(!self.pending);
        self.memo_card[self.plan.root() as usize]
    }

    /// Sample, apply and validate one random move on the owned tree (see
    /// [`TreePlan::propose`]). On `Some`, the move is pending: call
    /// [`eval_pending`](TreeEvaluator::eval_pending), then
    /// [`commit`](TreeEvaluator::commit) or
    /// [`rollback`](TreeEvaluator::rollback).
    pub fn propose<R: Rng + ?Sized>(
        &mut self,
        moves: &TreeMoveSet,
        rng: &mut R,
    ) -> Option<(TreeMove, u32)> {
        debug_assert!(!self.pending, "propose with an unresolved pending move");
        self.plan.propose(moves, rng)
    }

    /// Cost of the pending (applied) tree, re-costing only the dirtied
    /// path-to-root nodes against the memoized subtrees below them.
    ///
    /// Debug builds assert the result is **bit-identical** to a full
    /// bottom-up re-cost of the applied tree.
    pub fn eval_pending(&mut self) -> f64 {
        debug_assert!(!self.pending, "eval_pending called twice");
        debug_assert!(self.plan.has_pending(), "no applied move to evaluate");
        self.epoch += 1;
        self.dirty.clear();
        let dirty_ids = self.plan.dirty_nodes();
        self.dirty.extend_from_slice(dirty_ids);
        for i in 0..self.dirty.len() {
            let id = self.dirty[i];
            let n = *self.plan.node(id);
            let v = if n.is_leaf() {
                (self.compiled.cardinality(n.rel), 0.0)
            } else {
                let lv = self.value_of(n.left);
                let rv = self.value_of(n.right);
                join_value(
                    self.model,
                    &self.compiled,
                    self.plan.node(n.left),
                    lv,
                    self.plan.node(n.right),
                    rv,
                )
            };
            self.cand_card[id as usize] = v.0;
            self.cand_cost[id as usize] = v.1;
            self.cand_mark[id as usize] = self.epoch;
        }
        let root = self.plan.root();
        debug_assert_eq!(
            self.cand_mark[root as usize], self.epoch,
            "dirty set must always reach the root"
        );
        let total = sanitize_cost(self.cand_cost[root as usize].min(f64::MAX));
        self.pending = true;
        #[cfg(debug_assertions)]
        {
            let full = self.full_cost_scratchless();
            assert_eq!(
                total, full,
                "path-to-root incremental cost diverged from full tree re-cost"
            );
        }
        total
    }

    /// Child value under the pending epoch: candidate if recomputed this
    /// move, memo otherwise.
    #[inline]
    fn value_of(&self, id: u32) -> (f64, f64) {
        let i = id as usize;
        if self.cand_mark[i] == self.epoch {
            (self.cand_card[i], self.cand_cost[i])
        } else {
            (self.memo_card[i], self.memo_cost[i])
        }
    }

    /// Adopt the pending move: candidate values become the memo for
    /// exactly the dirty nodes, and the plan's undo log is cleared.
    pub fn commit(&mut self) {
        assert!(self.pending, "commit without a pending evaluation");
        for i in 0..self.dirty.len() {
            let id = self.dirty[i] as usize;
            self.memo_card[id] = self.cand_card[id];
            self.memo_cost[id] = self.cand_cost[id];
        }
        self.plan.accept();
        self.pending = false;
    }

    /// Reject the pending move: the tree is rolled back and the memo —
    /// which was never touched — remains the resolved state's.
    pub fn rollback(&mut self) {
        assert!(self.pending, "rollback without a pending evaluation");
        self.plan.undo_last();
        self.pending = false;
    }

    /// Full bottom-up re-cost of the tree *as it currently stands*
    /// (including a pending move, if any), without touching the memo.
    /// Allocates; for tests and the debug agreement assertion.
    pub fn full_cost(&mut self) -> f64 {
        self.full_cost_scratchless()
    }

    fn full_cost_scratchless(&mut self) -> f64 {
        let n = self.plan.n_nodes();
        let mut card = vec![0.0; n];
        let mut cost = vec![0.0; n];
        let total = compute_full(
            self.model,
            &self.compiled,
            &self.plan,
            &mut card,
            &mut cost,
            &mut self.post,
            &mut self.stack,
        );
        sanitize_cost(total.min(f64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskCostModel, MemoryCostModel};
    use ljqo_catalog::{Query, QueryBuilder, RelId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    fn ids(v: &[u32]) -> Vec<RelId> {
        v.iter().map(|&i| RelId(i)).collect()
    }

    #[test]
    fn left_deep_tree_cost_equals_order_cost_bit_for_bit() {
        let q = chain_query();
        let compiled = Arc::new(CompiledQuery::new(&q));
        for model in [
            &MemoryCostModel::default() as &dyn CostModel,
            &DiskCostModel::default() as &dyn CostModel,
        ] {
            for order in [
                vec![0, 1, 2, 3, 4],
                vec![4, 3, 2, 1, 0],
                vec![2, 1, 0, 3, 4],
            ] {
                let rels = ids(&order);
                let plan = TreePlan::from_order(&compiled, &rels);
                let te = TreeEvaluator::new(model, Arc::clone(&compiled), plan);
                let linear = sanitize_cost(model.order_cost(&q, &rels));
                assert_eq!(
                    te.current_cost(),
                    linear,
                    "model {} order {order:?}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn incremental_matches_full_recost_across_many_moves() {
        let q = chain_query();
        let compiled = Arc::new(CompiledQuery::new(&q));
        let model = MemoryCostModel::default();
        let plan = TreePlan::from_order(&compiled, &ids(&[0, 1, 2, 3, 4]));
        let mut te = TreeEvaluator::new(&model, Arc::clone(&compiled), plan);
        let mut rng = SmallRng::seed_from_u64(0x7ee);
        let mut current = te.current_cost();
        for _ in 0..300 {
            let Some((_mv, _attempts)) = te.propose(&TreeMoveSet::default(), &mut rng) else {
                continue;
            };
            let cand = te.eval_pending();
            // Release builds need the explicit check too (debug builds
            // assert inside eval_pending already).
            let full = te.full_cost();
            assert_eq!(cand, full);
            if cand < current {
                te.commit();
                current = cand;
            } else {
                te.rollback();
                assert_eq!(te.current_cost(), current);
            }
        }
    }

    #[test]
    fn commit_establishes_the_candidate_as_current() {
        let q = chain_query();
        let compiled = Arc::new(CompiledQuery::new(&q));
        let model = MemoryCostModel::default();
        let plan = TreePlan::from_order(&compiled, &ids(&[0, 1, 2, 3, 4]));
        let mut te = TreeEvaluator::new(&model, Arc::clone(&compiled), plan);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            if te.propose(&TreeMoveSet::default(), &mut rng).is_some() {
                let cand = te.eval_pending();
                te.commit();
                assert_eq!(te.current_cost(), cand);
            }
        }
    }

    #[test]
    fn reset_from_restores_a_saved_tree() {
        let q = chain_query();
        let compiled = Arc::new(CompiledQuery::new(&q));
        let model = MemoryCostModel::default();
        let plan = TreePlan::from_order(&compiled, &ids(&[0, 1, 2, 3, 4]));
        let mut te = TreeEvaluator::new(&model, Arc::clone(&compiled), plan);
        let saved = te.plan().clone();
        let saved_cost = te.current_cost();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..40 {
            if te.propose(&TreeMoveSet::default(), &mut rng).is_some() {
                te.eval_pending();
                te.commit();
            }
        }
        te.reset_from(&saved);
        assert_eq!(te.current_cost(), saved_cost);
        assert_eq!(te.plan().leaves(), saved.leaves());
    }
}
