//! # ljqo-cost — cost models, size estimation, and budgeted evaluation
//!
//! The paper evaluates join orders under two cost models:
//!
//! * a **main-memory** model in the spirit of Swami's validated
//!   main-memory cost model \[Swa89a\] — see [`MemoryCostModel`];
//! * a **disk-based** model similar to Bratbergsengen's hash-join cost
//!   analysis \[Bra84\] — see [`DiskCostModel`].
//!
//! Both consume per-join statistics produced by the shared cardinality
//! estimator ([`estimate`]), which uses the classical independence /
//! uniformity assumptions: `|R ⋈ S| = |R|·|S|·J` with the join selectivity
//! `J` taken from the catalog, multiplying the selectivities of all join
//! predicates that connect the new inner relation to the relations already
//! joined.
//!
//! The [`Evaluator`] wraps a query + model behind a **deterministic work
//! budget**. The paper allots CPU time proportional to `N²`; wall-clock
//! time is machine-dependent, so we charge one *budget unit* per plan cost
//! evaluation (an `O(N)` operation — heuristics charge proportionally for
//! their own `O(N)`-sized work, see `ljqo-heuristics`) and express the
//! paper's time limit `τ·N²` as `⌊τ·N²·κ⌋` units. The evaluator also
//! tracks the best state seen and snapshots it at configurable checkpoint
//! budgets, which is how the experiment harness extracts "solution quality
//! at time limit t" curves from a single run.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod deadline;
mod disk;
pub mod estimate;
mod evaluator;
mod fault;
pub mod incremental;
mod memory;
mod model;
mod multi;
pub mod propagate;
mod shared;
mod tree_eval;

pub use deadline::Deadline;
pub use disk::DiskCostModel;
pub use evaluator::{Evaluator, Snapshot};
pub use fault::{FaultMode, FaultyCostModel};
pub use incremental::{costs_agree, Estimator, IncrementalEvaluator};
pub use memory::MemoryCostModel;
pub use model::{CostModel, JoinCtx};
pub use multi::{JoinMethod, MultiMethodCostModel};
pub use shared::SharedBest;
pub use tree_eval::TreeEvaluator;

/// Intermediate cardinalities are clamped to this value so that products of
/// many large relations cannot overflow `f64` and so that cost comparisons
/// remain total. Any plan that reaches the clamp is astronomically bad and
/// will never survive optimization.
pub const CARD_CLAMP: f64 = 1e120;

/// Saturate a cost to a finite value: `NaN` and `±∞` become [`f64::MAX`].
///
/// Cost models are treated as untrusted components — stale statistics or a
/// buggy model can emit non-finite costs, and `NaN` in particular breaks
/// best-so-far tracking (`c < best` is false for every `NaN`) and the
/// methods' accept/reject comparisons. The [`Evaluator`] applies this to
/// every model output, so optimizer code downstream only ever sees finite
/// costs; a saturated plan is simply astronomically bad and loses every
/// comparison it should lose.
#[inline]
pub fn sanitize_cost(c: f64) -> f64 {
    if c.is_finite() {
        c
    } else {
        f64::MAX
    }
}

/// Time limits proportional to `N²`, as used throughout the paper
/// ("`1.5N²`", "`9N²`", ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeLimit {
    /// The multiplier `τ` in `τ·N²`.
    pub tau: f64,
}

impl TimeLimit {
    /// A time limit of `τ·N²`.
    pub fn of(tau: f64) -> Self {
        TimeLimit { tau }
    }

    /// Budget units for a query with `n` joins under calibration constant
    /// `kappa` (units per `N²`).
    pub fn units(&self, n_joins: usize, kappa: f64) -> u64 {
        let n = n_joins as f64;
        (self.tau * n * n * kappa).max(1.0) as u64
    }
}

/// How the work budget grows with query size.
///
/// The paper works at `N ≤ 100`, where its `τ·N²` CPU allotment is
/// affordable. At `N = 1000` the same rule hands the optimizer 100× the
/// budget of an `N = 100` query — minutes of planning for one query. The
/// schedule decouples *per-unit* calibration (still [`TimeLimit`]'s `τ`
/// and the driver's `κ`) from the *growth curve*:
///
/// * [`Quadratic`](BudgetSchedule::Quadratic) — the paper's rule,
///   `⌊τ·N²·κ⌋`, bit-identical to [`TimeLimit::units`]. The default.
/// * [`Capped`](BudgetSchedule::Capped) — quadratic up to a threshold
///   `t`, then frozen at `⌊τ·t²·κ⌋`: a hard ceiling on planning work no
///   matter how large the query grows.
/// * [`NlogN`](BudgetSchedule::NlogN) — quadratic up to `t`, then
///   `τ·κ·t·N·log₂N ⁄ log₂t`: keeps growing (bigger queries *do* deserve
///   more work — their neighborhoods are larger) but only
///   quasi-linearly. Continuous at the threshold: both branches give
///   `τ·κ·t²` at `N = t`.
///
/// All three floor at one unit, like [`TimeLimit::units`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetSchedule {
    /// The paper's `τ·N²·κ` rule (default; bit-identical to
    /// [`TimeLimit::units`]).
    #[default]
    Quadratic,
    /// `τ·min(N, t)²·κ` — quadratic until `t` joins, constant beyond.
    Capped {
        /// Join count `t` at which the budget stops growing.
        threshold: usize,
    },
    /// Quadratic until `t` joins, then `τ·κ·t·N·log₂N ⁄ log₂t`.
    NlogN {
        /// Join count `t` at which growth switches to `N·log N`
        /// (must be ≥ 2 for the `log₂t` divisor to be positive;
        /// enforced by clamping).
        threshold: usize,
    },
}

impl BudgetSchedule {
    /// Budget units for a query with `n` joins, combining the schedule's
    /// growth curve with `limit`'s per-`N²` multiplier `τ` and the
    /// calibration constant `kappa`.
    pub fn units(&self, limit: &TimeLimit, n_joins: usize, kappa: f64) -> u64 {
        match *self {
            BudgetSchedule::Quadratic => limit.units(n_joins, kappa),
            BudgetSchedule::Capped { threshold } => limit.units(n_joins.min(threshold), kappa),
            BudgetSchedule::NlogN { threshold } => {
                let t = threshold.max(2);
                if n_joins <= t {
                    limit.units(n_joins, kappa)
                } else {
                    let n = n_joins as f64;
                    let tf = t as f64;
                    (limit.tau * kappa * tf * n * n.log2() / tf.log2()).max(1.0) as u64
                }
            }
        }
    }
}

impl std::fmt::Display for BudgetSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BudgetSchedule::Quadratic => write!(f, "quadratic"),
            BudgetSchedule::Capped { threshold } => write!(f, "capped:{threshold}"),
            BudgetSchedule::NlogN { threshold } => write!(f, "nlogn:{threshold}"),
        }
    }
}

impl std::str::FromStr for BudgetSchedule {
    type Err = String;

    /// Parses `quadratic`, `capped:<t>`, or `nlogn:<t>` (the [`Display`]
    /// format, so round-trips).
    ///
    /// [`Display`]: std::fmt::Display
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_threshold = |v: &str| {
            v.parse::<usize>()
                .map_err(|_| format!("bad schedule threshold {v:?} (want a positive integer)"))
        };
        match s.split_once(':') {
            None if s == "quadratic" => Ok(BudgetSchedule::Quadratic),
            Some(("capped", v)) => Ok(BudgetSchedule::Capped {
                threshold: parse_threshold(v)?,
            }),
            Some(("nlogn", v)) => Ok(BudgetSchedule::NlogN {
                threshold: parse_threshold(v)?,
            }),
            _ => Err(format!(
                "unknown budget schedule {s:?} (want quadratic, capped:<t>, or nlogn:<t>)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_limit_units_scale_quadratically() {
        let t = TimeLimit::of(9.0);
        assert_eq!(t.units(10, 20.0), 18_000);
        assert_eq!(t.units(20, 20.0), 72_000);
    }

    #[test]
    fn time_limit_units_floor_at_one() {
        let t = TimeLimit::of(1e-9);
        assert_eq!(t.units(10, 20.0), 1);
    }

    #[test]
    fn quadratic_schedule_matches_time_limit_exactly() {
        let t = TimeLimit::of(1.5);
        for n in [1usize, 2, 7, 64, 100, 333, 1000] {
            for kappa in [0.5, 20.0, 137.25] {
                assert_eq!(
                    BudgetSchedule::Quadratic.units(&t, n, kappa),
                    t.units(n, kappa),
                    "n={n} kappa={kappa}"
                );
            }
        }
    }

    #[test]
    fn capped_schedule_freezes_at_threshold() {
        let t = TimeLimit::of(9.0);
        let s = BudgetSchedule::Capped { threshold: 100 };
        assert_eq!(s.units(&t, 50, 20.0), t.units(50, 20.0));
        assert_eq!(s.units(&t, 100, 20.0), t.units(100, 20.0));
        assert_eq!(s.units(&t, 250, 20.0), t.units(100, 20.0));
        assert_eq!(s.units(&t, 1000, 20.0), t.units(100, 20.0));
    }

    #[test]
    fn nlogn_schedule_is_continuous_and_subquadratic() {
        let t = TimeLimit::of(9.0);
        let s = BudgetSchedule::NlogN { threshold: 100 };
        // Below/at the threshold: exactly quadratic.
        assert_eq!(s.units(&t, 64, 20.0), t.units(64, 20.0));
        assert_eq!(s.units(&t, 100, 20.0), t.units(100, 20.0));
        // Just past the threshold: no cliff (within integer truncation).
        let at = s.units(&t, 100, 20.0) as f64;
        let past = s.units(&t, 101, 20.0) as f64;
        assert!(past > at && past < at * 1.05, "at={at} past={past}");
        // Far past: strictly between the cap and full quadratic.
        let far = s.units(&t, 1000, 20.0);
        assert!(far > BudgetSchedule::Capped { threshold: 100 }.units(&t, 1000, 20.0));
        assert!(far < BudgetSchedule::Quadratic.units(&t, 1000, 20.0));
    }

    #[test]
    fn schedule_display_round_trips_through_from_str() {
        for s in [
            BudgetSchedule::Quadratic,
            BudgetSchedule::Capped { threshold: 128 },
            BudgetSchedule::NlogN { threshold: 256 },
        ] {
            assert_eq!(s.to_string().parse::<BudgetSchedule>().unwrap(), s);
        }
        assert!("nope".parse::<BudgetSchedule>().is_err());
        assert!("capped:x".parse::<BudgetSchedule>().is_err());
        assert!("capped".parse::<BudgetSchedule>().is_err());
    }

    #[test]
    fn sanitize_cost_saturates_non_finite() {
        assert_eq!(sanitize_cost(f64::NAN), f64::MAX);
        assert_eq!(sanitize_cost(f64::INFINITY), f64::MAX);
        assert_eq!(sanitize_cost(f64::NEG_INFINITY), f64::MAX);
        assert_eq!(sanitize_cost(42.0), 42.0);
        assert_eq!(sanitize_cost(0.0), 0.0);
        assert_eq!(sanitize_cost(f64::MAX), f64::MAX);
    }
}
