//! # ljqo-cost — cost models, size estimation, and budgeted evaluation
//!
//! The paper evaluates join orders under two cost models:
//!
//! * a **main-memory** model in the spirit of Swami's validated
//!   main-memory cost model \[Swa89a\] — see [`MemoryCostModel`];
//! * a **disk-based** model similar to Bratbergsengen's hash-join cost
//!   analysis \[Bra84\] — see [`DiskCostModel`].
//!
//! Both consume per-join statistics produced by the shared cardinality
//! estimator ([`estimate`]), which uses the classical independence /
//! uniformity assumptions: `|R ⋈ S| = |R|·|S|·J` with the join selectivity
//! `J` taken from the catalog, multiplying the selectivities of all join
//! predicates that connect the new inner relation to the relations already
//! joined.
//!
//! The [`Evaluator`] wraps a query + model behind a **deterministic work
//! budget**. The paper allots CPU time proportional to `N²`; wall-clock
//! time is machine-dependent, so we charge one *budget unit* per plan cost
//! evaluation (an `O(N)` operation — heuristics charge proportionally for
//! their own `O(N)`-sized work, see `ljqo-heuristics`) and express the
//! paper's time limit `τ·N²` as `⌊τ·N²·κ⌋` units. The evaluator also
//! tracks the best state seen and snapshots it at configurable checkpoint
//! budgets, which is how the experiment harness extracts "solution quality
//! at time limit t" curves from a single run.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod deadline;
mod disk;
pub mod estimate;
mod evaluator;
mod fault;
pub mod incremental;
mod memory;
mod model;
mod multi;
pub mod propagate;
mod shared;
mod tree_eval;

pub use deadline::Deadline;
pub use disk::DiskCostModel;
pub use evaluator::{Evaluator, Snapshot};
pub use fault::{FaultMode, FaultyCostModel};
pub use incremental::{costs_agree, Estimator, IncrementalEvaluator};
pub use memory::MemoryCostModel;
pub use model::{CostModel, JoinCtx};
pub use multi::{JoinMethod, MultiMethodCostModel};
pub use shared::SharedBest;
pub use tree_eval::TreeEvaluator;

/// Intermediate cardinalities are clamped to this value so that products of
/// many large relations cannot overflow `f64` and so that cost comparisons
/// remain total. Any plan that reaches the clamp is astronomically bad and
/// will never survive optimization.
pub const CARD_CLAMP: f64 = 1e120;

/// Saturate a cost to a finite value: `NaN` and `±∞` become [`f64::MAX`].
///
/// Cost models are treated as untrusted components — stale statistics or a
/// buggy model can emit non-finite costs, and `NaN` in particular breaks
/// best-so-far tracking (`c < best` is false for every `NaN`) and the
/// methods' accept/reject comparisons. The [`Evaluator`] applies this to
/// every model output, so optimizer code downstream only ever sees finite
/// costs; a saturated plan is simply astronomically bad and loses every
/// comparison it should lose.
#[inline]
pub fn sanitize_cost(c: f64) -> f64 {
    if c.is_finite() {
        c
    } else {
        f64::MAX
    }
}

/// Time limits proportional to `N²`, as used throughout the paper
/// ("`1.5N²`", "`9N²`", ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeLimit {
    /// The multiplier `τ` in `τ·N²`.
    pub tau: f64,
}

impl TimeLimit {
    /// A time limit of `τ·N²`.
    pub fn of(tau: f64) -> Self {
        TimeLimit { tau }
    }

    /// Budget units for a query with `n` joins under calibration constant
    /// `kappa` (units per `N²`).
    pub fn units(&self, n_joins: usize, kappa: f64) -> u64 {
        let n = n_joins as f64;
        (self.tau * n * n * kappa).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_limit_units_scale_quadratically() {
        let t = TimeLimit::of(9.0);
        assert_eq!(t.units(10, 20.0), 18_000);
        assert_eq!(t.units(20, 20.0), 72_000);
    }

    #[test]
    fn time_limit_units_floor_at_one() {
        let t = TimeLimit::of(1e-9);
        assert_eq!(t.units(10, 20.0), 1);
    }

    #[test]
    fn sanitize_cost_saturates_non_finite() {
        assert_eq!(sanitize_cost(f64::NAN), f64::MAX);
        assert_eq!(sanitize_cost(f64::INFINITY), f64::MAX);
        assert_eq!(sanitize_cost(f64::NEG_INFINITY), f64::MAX);
        assert_eq!(sanitize_cost(42.0), 42.0);
        assert_eq!(sanitize_cost(0.0), 0.0);
        assert_eq!(sanitize_cost(f64::MAX), f64::MAX);
    }
}
