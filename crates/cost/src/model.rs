//! The cost model abstraction.
//!
//! The paper stresses that, unlike the KBZ theory, its methods "do not
//! depend on using any particular cost model; any reasonable cost model
//! will do". We capture that with the [`CostModel`] trait: a model maps
//! per-join statistics ([`JoinCtx`]) to a cost, and optionally supplies a
//! lower bound used by the early-stopping condition.

use ljqo_catalog::{Query, RelId};

use crate::estimate::{final_result_size, SizeWalker};

/// Statistics describing one join of a left-deep walk, as consumed by a
/// cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinCtx {
    /// Cardinality of the outer (intermediate) operand.
    pub outer_card: f64,
    /// Cardinality of the inner base relation.
    pub inner_card: f64,
    /// Estimated output cardinality.
    pub output_card: f64,
    /// Number of base relations already folded into the outer operand.
    pub outer_rels: usize,
    /// Whether this join is a cross product.
    pub is_cross_product: bool,
}

/// A cost model for hash-join processing of outer linear join trees.
pub trait CostModel: Sync {
    /// Cost of one hash join (or cross product) with the given statistics.
    fn join_cost(&self, ctx: &JoinCtx) -> f64;

    /// A short name for reports ("memory", "disk").
    fn name(&self) -> &'static str;

    /// Total cost of processing `order` (a walk over one component).
    ///
    /// Provided: sums [`CostModel::join_cost`] over the steps of the order
    /// using the shared estimator. Implementations normally keep this
    /// default.
    fn order_cost(&self, query: &Query, order: &[RelId]) -> f64 {
        let mut walker = SizeWalker::new(query.n_relations());
        self.order_cost_with(query, order, &mut walker)
    }

    /// As [`CostModel::order_cost`] but reusing a caller-provided walker
    /// (the evaluator's hot path).
    fn order_cost_with(&self, query: &Query, order: &[RelId], walker: &mut SizeWalker) -> f64 {
        let mut total = 0.0f64;
        let mut outer_rels = 1usize;
        walker.walk(query, order, |s| {
            total += self.join_cost(&JoinCtx {
                outer_card: s.outer_card,
                inner_card: s.inner_card,
                output_card: s.output_card,
                outer_rels,
                is_cross_product: s.is_cross_product,
            });
            outer_rels += 1;
        });
        total.min(f64::MAX)
    }

    /// An admissible lower bound on the cost of any valid order over
    /// `component`. The optimizers may stop early once the best solution is
    /// within a factor of this bound. The default is the trivial bound 0.
    fn lower_bound(&self, _query: &Query, _component: &[RelId]) -> f64 {
        0.0
    }

    /// Whether this model's order cost is the plain per-step sum of
    /// [`CostModel::join_cost`], making it safe for
    /// [`crate::IncrementalEvaluator`] to re-cost only the steps a move
    /// changes. Models that override [`CostModel::order_cost_with`] with
    /// anything other than that sum (e.g. fault injectors or models with
    /// whole-plan terms) **must** return `false` here, or the incremental
    /// path would silently bypass their override; the local-search methods
    /// then fall back to full evaluation.
    fn supports_incremental(&self) -> bool {
        true
    }

    /// Whether [`CostModel::join_cost`] is monotone non-decreasing in each
    /// of `outer_card`, `inner_card`, `output_card`, and `outer_rels`
    /// (holding the others fixed). The LP-style certifier in `ljqo::bound` relies on
    /// this to turn per-step cardinality lower bounds into a cost lower
    /// bound: it prices each step at the *smallest* cardinalities any
    /// plan could present, which under-estimates the true step cost only
    /// if larger inputs never cost less. Models that are not monotone
    /// (e.g. fault injectors that invert costs) **must** return `false`,
    /// which disables the certifier for them (the reported bound falls
    /// back to [`CostModel::lower_bound`]).
    fn monotone_join_cost(&self) -> bool {
        true
    }
}

/// Shared helper for lower bounds: the final result size of a component
/// (order-independent) and the cardinalities of its members.
pub(crate) fn bound_ingredients(query: &Query, component: &[RelId]) -> (f64, Vec<f64>) {
    let final_size = final_result_size(query, component);
    let cards = component.iter().map(|&r| query.cardinality(r)).collect();
    (final_size, cards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    /// A trivially countable model: cost = number of joins.
    struct UnitModel;
    impl CostModel for UnitModel {
        fn join_cost(&self, _ctx: &JoinCtx) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "unit"
        }
    }

    #[test]
    fn default_order_cost_sums_steps() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 10)
            .relation("c", 10)
            .join("a", "b", 0.1)
            .join("b", "c", 0.1)
            .build()
            .unwrap();
        let order: Vec<RelId> = q.rel_ids().collect();
        assert_eq!(UnitModel.order_cost(&q, &order), 2.0);
        assert_eq!(UnitModel.order_cost(&q, &order[..1]), 0.0);
    }

    #[test]
    fn outer_rels_counts_up() {
        struct Probe;
        impl CostModel for Probe {
            fn join_cost(&self, ctx: &JoinCtx) -> f64 {
                ctx.outer_rels as f64
            }
            fn name(&self) -> &'static str {
                "probe"
            }
        }
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 10)
            .relation("c", 10)
            .relation("d", 10)
            .join("a", "b", 0.1)
            .join("b", "c", 0.1)
            .join("c", "d", 0.1)
            .build()
            .unwrap();
        let order: Vec<RelId> = q.rel_ids().collect();
        // outer_rels: 1, 2, 3 -> sum 6.
        assert_eq!(Probe.order_cost(&q, &order), 6.0);
    }
}
