//! Budgeted cost evaluation with best-so-far tracking.

use std::sync::Arc;

use ljqo_catalog::{CompiledQuery, Query, RelId};
use ljqo_plan::JoinOrder;

use crate::deadline::Deadline;
use crate::estimate::SizeWalker;
use crate::incremental::{Estimator, IncrementalEvaluator};
use crate::model::CostModel;
use crate::sanitize_cost;
use crate::shared::SharedBest;
use ljqo_plan::Move;

/// How many budget units may elapse between wall-clock reads when a
/// [`Deadline`] is installed. Amortizes the cost of `Instant::now()` over
/// the hot evaluation loop; one unit is an `O(N)` operation, so the
/// deadline is noticed within `O(64·N)` elementary steps. A
/// [`SharedBest`] cell, when installed, is polled on the same cadence.
const DEADLINE_POLL_UNITS: u64 = 64;

/// Best-so-far cost recorded when the budget crossed a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// The checkpoint, in budget units.
    pub units: u64,
    /// Best cost of any state fully evaluated within that budget
    /// (`f64::INFINITY` if none was).
    pub best_cost: f64,
}

/// Budgeted evaluator: the optimizer's only gateway to the cost model.
///
/// * Charges one budget unit per full plan evaluation (`cost`), and lets
///   heuristics charge proportionally for their own work (`charge`) — one
///   unit corresponds to `O(N)` elementary operations, the cost of one
///   evaluation.
/// * Tracks the best (lowest-cost) state evaluated so far, which is what
///   an anytime optimizer returns when stopped.
/// * Snapshots the best cost whenever consumption crosses one of the
///   configured checkpoints, so a single run yields the whole
///   quality-vs-time-limit curve the paper plots.
///
/// # Example: building a query and costing an order
///
/// ```
/// use ljqo_catalog::QueryBuilder;
/// use ljqo_cost::{Evaluator, MemoryCostModel};
/// use ljqo_plan::JoinOrder;
///
/// let query = QueryBuilder::new()
///     .relation("customer", 10_000)
///     .relation("orders", 100_000)
///     .relation("nation", 25)
///     .join("customer", "orders", 0.0001)
///     .join("customer", "nation", 0.04)
///     .build()
///     .unwrap();
/// let model = MemoryCostModel::default();
/// let mut ev = Evaluator::with_budget(&query, &model, 1_000);
///
/// let cost = ev.cost(&JoinOrder::identity(&query));
/// assert!(cost.is_finite() && cost > 0.0);
/// assert_eq!(ev.used(), 1); // one budget unit per evaluation
/// assert_eq!(ev.best().unwrap().1, cost);
/// ```
pub struct Evaluator<'a> {
    query: &'a Query,
    model: &'a dyn CostModel,
    /// Compiled snapshot of `query`, built once per evaluator and shared
    /// (via `Arc`) with every incremental evaluator and — through
    /// [`Evaluator::compiled`] — with the optimizers' move generators.
    compiled: Arc<CompiledQuery>,
    walker: SizeWalker,
    limit: u64,
    used: u64,
    n_evals: u64,
    n_inc_evals: u64,
    best_cost: f64,
    best_order: Option<JoinOrder>,
    checkpoints: Vec<u64>,
    next_checkpoint: usize,
    snapshots: Vec<Snapshot>,
    /// Early-stopping threshold: once the best cost is at or below this,
    /// `exhausted()` reports true (paper §3: "The optimizer can stop if it
    /// obtains a solution whose cost is sufficiently close to a lower
    /// bound on the cost of the optimal solution").
    stop_threshold: f64,
    /// Optional wall-clock deadline, polled every [`DEADLINE_POLL_UNITS`]
    /// charged units.
    deadline: Option<Deadline>,
    /// Latched result of the last deadline poll; once true, stays true.
    deadline_hit: bool,
    /// Optional cooperative best-cost cell shared with sibling workers.
    /// Local best improvements are published to it immediately; it is
    /// polled on the same amortized cadence as the deadline, and when the
    /// *global* best reaches the stop threshold this evaluator winds down
    /// even though its own best has not.
    shared: Option<SharedBest>,
    /// Latched result of the last shared-best poll; once true, stays true.
    coop_stop: bool,
    /// Units charged since the last deadline / shared-best poll.
    units_since_poll: u64,
}

impl<'a> Evaluator<'a> {
    /// An evaluator with no budget limit.
    pub fn new(query: &'a Query, model: &'a dyn CostModel) -> Self {
        Self::with_budget(query, model, u64::MAX)
    }

    /// An evaluator limited to `limit` budget units.
    pub fn with_budget(query: &'a Query, model: &'a dyn CostModel, limit: u64) -> Self {
        Evaluator {
            query,
            model,
            compiled: Arc::new(CompiledQuery::new(query)),
            walker: SizeWalker::new(query.n_relations()),
            limit,
            used: 0,
            n_evals: 0,
            n_inc_evals: 0,
            best_cost: f64::INFINITY,
            best_order: None,
            checkpoints: Vec::new(),
            next_checkpoint: 0,
            snapshots: Vec::new(),
            stop_threshold: -1.0,
            deadline: None,
            deadline_hit: false,
            shared: None,
            coop_stop: false,
            // Start at the poll interval so the very first charge reads
            // the clock — an already-expired deadline trips immediately.
            units_since_poll: DEADLINE_POLL_UNITS,
        }
    }

    /// Install a wall-clock deadline composing with the unit budget:
    /// [`Evaluator::exhausted`] reports true as soon as *either* the
    /// budget runs out or the deadline passes. The clock is polled at an
    /// amortized interval, so expiry is noticed within
    /// `DEADLINE_POLL_UNITS` (64) charged units.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = Some(deadline);
        self.deadline_hit = deadline.expired();
        self.units_since_poll = 0;
    }

    /// Whether an installed deadline has been observed as expired.
    #[inline]
    pub fn deadline_expired(&self) -> bool {
        self.deadline_hit
    }

    /// Join a cooperative search: local best improvements are published
    /// to `shared`, and the cell is polled on the same amortized cadence
    /// as the deadline (every `DEADLINE_POLL_UNITS` charged units). If
    /// a stop threshold is installed (see
    /// [`Evaluator::set_stop_threshold`]) and the *global* best reaches
    /// it, [`Evaluator::exhausted`] reports true — any worker reaching
    /// the bar winds every cooperating worker down. Without a threshold
    /// the cell changes nothing about this evaluator's own search; it
    /// only makes the global best observable.
    pub fn set_shared_best(&mut self, shared: SharedBest) {
        if self.best_cost < f64::INFINITY {
            shared.publish(self.best_cost);
        }
        self.shared = Some(shared);
    }

    /// The cooperative global best cost, if a [`SharedBest`] cell is
    /// installed. Reads the cell directly (not the amortized poll cache),
    /// so the value is current as of this call.
    #[inline]
    pub fn shared_best(&self) -> Option<f64> {
        self.shared.as_ref().map(SharedBest::get)
    }

    /// Whether a poll of the shared best-cost cell observed the global
    /// best at or below the stop threshold (a cooperative early stop, as
    /// opposed to this evaluator's own best reaching it).
    #[inline]
    pub fn coop_stopped(&self) -> bool {
        self.coop_stop
    }

    /// Install an early-stopping threshold, typically derived from the
    /// model's lower bound: `lb * (1 + epsilon)`. Once the best cost
    /// reaches the threshold, [`Evaluator::exhausted`] reports true and
    /// budget-driven methods wind down.
    pub fn set_stop_threshold(&mut self, threshold: f64) {
        self.stop_threshold = threshold;
    }

    /// Install snapshot checkpoints (must be ascending). Replaces any
    /// existing checkpoints; snapshots already taken are kept.
    pub fn set_checkpoints(&mut self, checkpoints: Vec<u64>) {
        debug_assert!(checkpoints.windows(2).all(|w| w[0] <= w[1]));
        self.checkpoints = checkpoints;
        self.next_checkpoint = 0;
    }

    /// The query under optimization.
    #[inline]
    pub fn query(&self) -> &'a Query {
        self.query
    }

    /// The cost model in use.
    #[inline]
    pub fn model(&self) -> &'a dyn CostModel {
        self.model
    }

    /// The compiled snapshot of the query, for sharing with move
    /// generators ([`ljqo_plan::MoveGenerator`]'s compiled windowed
    /// filtering) and other hot-loop consumers.
    #[inline]
    pub fn compiled(&self) -> &Arc<CompiledQuery> {
        &self.compiled
    }

    /// Record `rels` as the new best order without allocating when a best
    /// buffer already exists.
    #[inline]
    fn record_best(&mut self, rels: &[RelId]) {
        match &mut self.best_order {
            Some(best) => best.copy_from_rels(rels),
            None => self.best_order = Some(JoinOrder::new(rels.to_vec())),
        }
        self.publish_best();
    }

    /// Evaluate the cost of `order`, charging one budget unit and updating
    /// the best-so-far state. Non-finite model outputs are saturated to
    /// [`f64::MAX`] (see [`sanitize_cost`]) so a faulty model cannot
    /// poison best-tracking or the methods' acceptance decisions.
    pub fn cost(&mut self, order: &JoinOrder) -> f64 {
        self.charge(1);
        let c = sanitize_cost(self.model.order_cost_with(
            self.query,
            order.rels(),
            &mut self.walker,
        ));
        self.n_evals += 1;
        if c < self.best_cost {
            self.best_cost = c;
            self.record_best(order.rels());
        }
        c
    }

    /// Evaluate a raw relation slice (used by heuristics mid-construction).
    pub fn cost_slice(&mut self, rels: &[RelId]) -> f64 {
        self.charge(1);
        let c = sanitize_cost(
            self.model
                .order_cost_with(self.query, rels, &mut self.walker),
        );
        self.n_evals += 1;
        if c < self.best_cost {
            self.best_cost = c;
            self.record_best(rels);
        }
        c
    }

    /// Start incremental evaluation of `order`: build the per-prefix
    /// memoized state and record the order's cost like [`Evaluator::cost`]
    /// would (one budget unit is charged for the initial full walk).
    /// Subsequent moves are costed with [`Evaluator::cost_move`]; the
    /// caller gets the order back with
    /// [`IncrementalEvaluator::into_order`].
    ///
    /// Callers must check [`CostModel::supports_incremental`] first — a
    /// model that overrides its order cost cannot be summed per step.
    pub fn begin_incremental(&mut self, order: JoinOrder) -> IncrementalEvaluator<'a> {
        debug_assert!(
            self.model.supports_incremental(),
            "model {} does not support incremental evaluation",
            self.model.name()
        );
        self.charge(1);
        let inc = IncrementalEvaluator::with_compiled(
            self.query,
            self.model,
            Estimator::Static,
            order,
            Arc::clone(&self.compiled),
        );
        let c = inc.current_cost();
        self.n_evals += 1;
        if c < self.best_cost {
            self.best_cost = c;
            self.record_best(inc.order().rels());
        }
        inc
    }

    /// Evaluate the move `mv`, already applied to `inc`'s order (the move
    /// generator applies proposals in place), re-costing only the
    /// positions the move touches. Charges one budget unit — the budget
    /// models the paper's wall clock, and one unit stays the price of one
    /// candidate evaluation regardless of how cheaply it is computed — and
    /// updates best-so-far exactly like [`Evaluator::cost`]. In debug
    /// builds, asserts that the incremental cost agrees with a
    /// from-scratch evaluation.
    ///
    /// The caller resolves the proposal with
    /// [`IncrementalEvaluator::commit`] or
    /// [`IncrementalEvaluator::rollback`].
    pub fn cost_move(&mut self, inc: &mut IncrementalEvaluator<'a>, mv: &Move) -> f64 {
        self.charge(1);
        let c = inc.eval_applied(mv);
        self.n_evals += 1;
        self.n_inc_evals += 1;
        debug_assert!(
            crate::incremental::costs_agree(c, inc.full_eval()),
            "incremental cost {c} diverged from full evaluation {} for {mv:?}",
            inc.full_eval()
        );
        if c < self.best_cost {
            self.best_cost = c;
            self.record_best(inc.order().rels());
        }
        c
    }

    /// Publish the (just-improved) local best to the cooperative cell.
    #[inline]
    fn publish_best(&self) {
        if let Some(shared) = &self.shared {
            shared.publish(self.best_cost);
        }
    }

    /// Evaluate without charging budget or updating best-so-far. For
    /// analysis and tests only — optimizers must use [`Evaluator::cost`].
    pub fn cost_uncharged(&mut self, order: &JoinOrder) -> f64 {
        sanitize_cost(
            self.model
                .order_cost_with(self.query, order.rels(), &mut self.walker),
        )
    }

    /// Consume `units` of budget (heuristics use this to pay for their own
    /// non-evaluation work). Crossing a checkpoint records a snapshot of
    /// the best cost *before* the newly charged work completes.
    pub fn charge(&mut self, units: u64) {
        while self.next_checkpoint < self.checkpoints.len()
            && self.used >= self.checkpoints[self.next_checkpoint]
        {
            self.snapshots.push(Snapshot {
                units: self.checkpoints[self.next_checkpoint],
                best_cost: self.best_cost,
            });
            self.next_checkpoint += 1;
        }
        self.used = self.used.saturating_add(units);
        if (self.deadline.is_none() && self.shared.is_none()) || self.deadline_hit || self.coop_stop
        {
            return;
        }
        self.units_since_poll = self.units_since_poll.saturating_add(units);
        if self.units_since_poll >= DEADLINE_POLL_UNITS {
            self.units_since_poll = 0;
            if let Some(deadline) = self.deadline {
                self.deadline_hit = deadline.expired();
            }
            if let Some(shared) = &self.shared {
                if self.stop_threshold >= 0.0 && shared.get() <= self.stop_threshold {
                    self.coop_stop = true;
                }
            }
        }
    }

    /// Charge one budget unit and count one plan evaluation performed
    /// *outside* the evaluator's own walkers. The bushy tree search costs
    /// candidates through [`crate::TreeEvaluator`] (its states are trees,
    /// not [`JoinOrder`]s, so best-order tracking does not apply) but must
    /// still pay the paper's one-unit-per-candidate price and appear in
    /// [`Evaluator::n_evals`] so budgets and reports stay comparable
    /// across search spaces.
    #[inline]
    pub fn charge_eval(&mut self) {
        self.charge(1);
        self.n_evals += 1;
    }

    /// Whether the method should stop: the budget is exhausted, the best
    /// solution (local, or global under cooperative search) has reached
    /// the early-stopping threshold, or the wall-clock deadline has
    /// passed.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.used >= self.limit
            || self.best_cost <= self.stop_threshold
            || self.deadline_hit
            || self.coop_stop
    }

    /// Budget units consumed so far.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Budget units remaining.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used)
    }

    /// Number of plan evaluations performed (full and incremental).
    #[inline]
    pub fn n_evals(&self) -> u64 {
        self.n_evals
    }

    /// How many of the evaluations went through the incremental
    /// (delta) path of [`Evaluator::cost_move`].
    #[inline]
    pub fn n_inc_evals(&self) -> u64 {
        self.n_inc_evals
    }

    /// The best state evaluated so far, with its cost.
    pub fn best(&self) -> Option<(&JoinOrder, f64)> {
        self.best_order.as_ref().map(|o| (o, self.best_cost))
    }

    /// Best cost so far (`INFINITY` before any evaluation).
    #[inline]
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Flush remaining checkpoints and return all snapshots. Checkpoints
    /// not yet crossed are recorded with the final best cost (the run ended
    /// before spending that much budget, so its result stands for all later
    /// limits).
    pub fn finish(mut self) -> (Option<JoinOrder>, f64, Vec<Snapshot>) {
        for i in self.next_checkpoint..self.checkpoints.len() {
            self.snapshots.push(Snapshot {
                units: self.checkpoints[i],
                best_cost: self.best_cost,
            });
        }
        (self.best_order, self.best_cost, self.snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryCostModel;
    use ljqo_catalog::QueryBuilder;

    fn q() -> Query {
        QueryBuilder::new()
            .relation("a", 100)
            .relation("b", 1000)
            .relation("c", 10)
            .join("a", "b", 0.001)
            .join("b", "c", 0.01)
            .build()
            .unwrap()
    }

    fn order(v: &[u32]) -> JoinOrder {
        JoinOrder::new(v.iter().map(|&i| RelId(i)).collect())
    }

    #[test]
    fn budget_counts_evaluations() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, 3);
        assert!(!ev.exhausted());
        ev.cost(&order(&[0, 1, 2]));
        ev.cost(&order(&[2, 1, 0]));
        assert!(!ev.exhausted());
        ev.cost(&order(&[1, 0, 2]));
        assert!(ev.exhausted());
        assert_eq!(ev.n_evals(), 3);
        assert_eq!(ev.remaining(), 0);
    }

    #[test]
    fn best_tracks_minimum() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&query, &model);
        let c1 = ev.cost(&order(&[0, 1, 2]));
        let c2 = ev.cost(&order(&[2, 1, 0]));
        let (best_order, best_cost) = ev.best().unwrap();
        assert_eq!(best_cost, c1.min(c2));
        let expect = if c1 <= c2 {
            order(&[0, 1, 2])
        } else {
            order(&[2, 1, 0])
        };
        assert_eq!(*best_order, expect);
    }

    #[test]
    fn snapshots_record_best_at_checkpoints() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, 100);
        ev.set_checkpoints(vec![2, 5]);
        let c0 = ev.cost(&order(&[0, 1, 2])); // used: 1
        let _ = ev.cost(&order(&[0, 1, 2])); // used: 2
        let c2 = ev.cost(&order(&[2, 1, 0])); // crosses checkpoint 2 first
        let (_, _, snaps) = ev.finish();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].units, 2);
        // The state evaluated while crossing the checkpoint does not count
        // toward that checkpoint's best.
        assert_eq!(snaps[0].best_cost, c0);
        assert_eq!(snaps[1].units, 5);
        assert_eq!(snaps[1].best_cost, c0.min(c2));
    }

    #[test]
    fn finish_flushes_uncrossed_checkpoints() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, 1000);
        ev.set_checkpoints(vec![10, 500, 900]);
        let c = ev.cost(&order(&[0, 1, 2]));
        let (_, best, snaps) = ev.finish();
        assert_eq!(best, c);
        assert_eq!(snaps.len(), 3);
        assert!(snaps.iter().all(|s| s.best_cost == c));
    }

    #[test]
    fn stop_threshold_trips_exhausted() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, 1_000_000);
        assert!(!ev.exhausted());
        let c = ev.cost(&order(&[2, 1, 0]));
        assert!(!ev.exhausted());
        ev.set_stop_threshold(c + 1.0);
        assert!(ev.exhausted(), "best {c} is below the threshold");
        // Without any evaluation the threshold must not trip (best = inf).
        let mut ev2 = Evaluator::with_budget(&query, &model, 10);
        ev2.set_stop_threshold(1e18);
        assert!(!ev2.exhausted());
    }

    #[test]
    fn expired_deadline_trips_exhausted() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, u64::MAX);
        ev.set_deadline(crate::Deadline::immediate());
        assert!(ev.deadline_expired());
        assert!(ev.exhausted());
        // The budget side reports plenty remaining; only the clock is up.
        assert!(ev.remaining() > 0);
    }

    #[test]
    fn future_deadline_does_not_interfere() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, 2);
        ev.set_deadline(crate::Deadline::after(std::time::Duration::from_secs(3600)));
        ev.cost(&order(&[0, 1, 2]));
        assert!(!ev.deadline_expired());
        assert!(!ev.exhausted());
        ev.cost(&order(&[2, 1, 0]));
        // Budget exhaustion still applies on its own.
        assert!(ev.exhausted());
        assert!(!ev.deadline_expired());
    }

    #[test]
    fn deadline_is_noticed_within_poll_interval() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, u64::MAX);
        ev.set_deadline(crate::Deadline::after(std::time::Duration::from_millis(5)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let o = order(&[0, 1, 2]);
        let mut evals = 0u64;
        while !ev.exhausted() {
            ev.cost(&o);
            evals += 1;
            assert!(
                evals <= super::DEADLINE_POLL_UNITS + 1,
                "deadline never noticed"
            );
        }
        assert!(ev.deadline_expired());
        // A best state gathered before expiry is still available.
        assert!(ev.best().is_some());
    }

    #[test]
    fn nan_costs_are_saturated_not_propagated() {
        use crate::fault::{FaultMode, FaultyCostModel};
        let query = q();
        let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::NanOnKth(1));
        let mut ev = Evaluator::new(&query, &model);
        let c1 = ev.cost(&order(&[0, 1, 2]));
        assert_eq!(c1, f64::MAX, "NaN from the model must saturate");
        // The saturated evaluation still counts as a (terrible) best state,
        // so an all-faulty run degrades instead of returning nothing.
        assert_eq!(ev.best().map(|(_, c)| c), Some(f64::MAX));
        let c2 = ev.cost(&order(&[2, 1, 0]));
        assert!(c2.is_finite() && c2 < f64::MAX);
        assert_eq!(ev.best().map(|(_, c)| c), Some(c2));
    }

    #[test]
    fn shared_best_receives_local_improvements() {
        let query = q();
        let model = MemoryCostModel::default();
        let shared = crate::SharedBest::new();
        let mut ev = Evaluator::new(&query, &model);
        ev.set_shared_best(shared.clone());
        let c1 = ev.cost(&order(&[0, 1, 2]));
        assert_eq!(shared.get(), c1);
        let c2 = ev.cost(&order(&[2, 1, 0]));
        assert_eq!(shared.get(), c1.min(c2));
        assert_eq!(ev.shared_best(), Some(c1.min(c2)));
        // Installing the cell after evaluations publishes the current best.
        let late = crate::SharedBest::new();
        ev.set_shared_best(late.clone());
        assert_eq!(late.get(), c1.min(c2));
    }

    #[test]
    fn foreign_cost_below_threshold_winds_evaluator_down() {
        let query = q();
        let model = MemoryCostModel::default();
        let shared = crate::SharedBest::new();
        let mut ev = Evaluator::with_budget(&query, &model, u64::MAX);
        ev.set_shared_best(shared.clone());
        ev.set_stop_threshold(1.0);
        let o = order(&[0, 1, 2]);
        ev.cost(&o);
        assert!(!ev.exhausted(), "own best is far above the threshold");
        // Another worker reaches the bar; this evaluator notices within
        // the amortized poll interval and stops.
        shared.publish(0.5);
        let mut evals = 0u64;
        while !ev.exhausted() {
            ev.cost(&o);
            evals += 1;
            assert!(
                evals <= super::DEADLINE_POLL_UNITS + 1,
                "shared stop never noticed"
            );
        }
        assert!(ev.coop_stopped());
        assert!(ev.best().is_some());
    }

    #[test]
    fn shared_cell_without_threshold_changes_nothing() {
        let query = q();
        let model = MemoryCostModel::default();
        let run = |shared: Option<crate::SharedBest>| {
            let mut ev = Evaluator::with_budget(&query, &model, 200);
            if let Some(s) = shared {
                ev.set_shared_best(s);
            }
            let mut sequence = Vec::new();
            while !ev.exhausted() {
                sequence.push(ev.cost(&order(&[0, 1, 2])));
                sequence.push(ev.cost(&order(&[2, 1, 0])));
            }
            (sequence, ev.used(), ev.best_cost())
        };
        let shared = crate::SharedBest::new();
        shared.publish(0.0); // a foreign best, but no threshold installed
        assert_eq!(run(None), run(Some(shared)));
    }

    #[test]
    fn uncharged_costs_do_not_consume_budget() {
        let query = q();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&query, &model, 1);
        let a = ev.cost_uncharged(&order(&[0, 1, 2]));
        assert_eq!(ev.used(), 0);
        let b = ev.cost(&order(&[0, 1, 2]));
        assert_eq!(a, b);
        assert!(ev.exhausted());
    }
}
