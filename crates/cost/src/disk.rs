//! Disk-based hash-join cost model (after Bratbergsengen \[Bra84\]).

use ljqo_catalog::{Query, RelId};

use crate::model::{bound_ingredients, CostModel, JoinCtx};

/// Cost model for disk-based hash-join processing.
///
/// Follows the classic I/O analysis of hash-based relational algebra
/// operations \[Bra84\]: the inner (build) relation is read from disk; if
/// its hash table fits in memory the outer is streamed through once,
/// otherwise both inputs are partitioned to disk and re-read
/// (Grace-style), tripling the transfer volume. Intermediate results are
/// materialized: each join writes its output, which the next join reads
/// back as its outer input. Costs are expressed in abstract units with one
/// page I/O costing `io_weight` and one tuple of CPU work costing
/// `cpu_weight`, so that the two models in this crate are on comparable
/// scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskCostModel {
    /// Bytes per page.
    pub page_bytes: f64,
    /// Bytes per tuple (uniform, as in the paper's synthetic setting).
    pub tuple_bytes: f64,
    /// Pages of main memory available to the join.
    pub mem_pages: f64,
    /// Cost units per page I/O.
    pub io_weight: f64,
    /// Cost units per tuple of CPU work (hash/probe/copy).
    pub cpu_weight: f64,
}

impl Default for DiskCostModel {
    fn default() -> Self {
        DiskCostModel {
            page_bytes: 4096.0,
            tuple_bytes: 128.0,
            mem_pages: 64.0, // 256 KiB of join memory - mid-1980s scale
            io_weight: 20.0,
            cpu_weight: 1.0,
        }
    }
}

impl DiskCostModel {
    /// Pages occupied by `card` base-relation tuples (at least one page
    /// for any non-empty input).
    #[inline]
    pub fn pages(&self, card: f64) -> f64 {
        self.pages_wide(card, 1)
    }

    /// Pages occupied by `card` tuples of `width` base relations.
    /// Intermediate results carry the concatenation of their constituents'
    /// fields, so they widen as the plan progresses — exactly the effect
    /// Bratbergsengen's page counts capture, and a cost shape outside the
    /// `Σ|outer|·g(inner)` (ASI) form required by the KBZ rank theory.
    #[inline]
    pub fn pages_wide(&self, card: f64, width: usize) -> f64 {
        (card * self.tuple_bytes * width as f64 / self.page_bytes)
            .ceil()
            .max(1.0)
    }

    /// I/O pages transferred by one hash join with the given operand sizes.
    fn join_io_pages(&self, outer_pages: f64, inner_pages: f64, output_pages: f64) -> f64 {
        let transfer = if inner_pages <= self.mem_pages {
            // Classic hashing: build fits, read each input once.
            outer_pages + inner_pages
        } else {
            // Grace hash join: partition both inputs (read + write), then
            // read the partitions back -> 3x transfer volume.
            3.0 * (outer_pages + inner_pages)
        };
        transfer + output_pages
    }
}

impl CostModel for DiskCostModel {
    fn join_cost(&self, ctx: &JoinCtx) -> f64 {
        let outer_pages = self.pages_wide(ctx.outer_card, ctx.outer_rels);
        let inner_pages = self.pages(ctx.inner_card);
        let output_pages = self.pages_wide(ctx.output_card, ctx.outer_rels + 1);
        let io = if ctx.is_cross_product {
            // Block nested loops: scan the inner once per memory-load of
            // the outer.
            let outer_loads = (outer_pages / self.mem_pages.max(1.0)).ceil().max(1.0);
            outer_pages + outer_loads * inner_pages + output_pages
        } else {
            self.join_io_pages(outer_pages, inner_pages, output_pages)
        };
        let cpu = ctx.outer_card + ctx.inner_card + ctx.output_card;
        self.io_weight * io + self.cpu_weight * cpu
    }

    fn name(&self) -> &'static str {
        "disk"
    }

    /// Admissible bound: each relation except the first must be read at
    /// least once as a build input, and the final result must be written
    /// at full width.
    fn lower_bound(&self, query: &Query, component: &[RelId]) -> f64 {
        if component.len() < 2 {
            return 0.0;
        }
        let (final_size, cards) = bound_ingredients(query, component);
        let read_sum: f64 = cards.iter().map(|&c| self.pages(c)).sum();
        let read_max = cards.iter().map(|&c| self.pages(c)).fold(0.0, f64::max);
        self.io_weight * ((read_sum - read_max) + self.pages_wide(final_size, component.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;

    #[test]
    fn pages_round_up() {
        let m = DiskCostModel::default();
        // 32 tuples per page at the defaults.
        assert_eq!(m.pages(1.0), 1.0);
        assert_eq!(m.pages(32.0), 1.0);
        assert_eq!(m.pages(33.0), 2.0);
        assert_eq!(m.pages(0.0), 1.0);
    }

    #[test]
    fn grace_join_kicks_in_when_build_exceeds_memory() {
        let m = DiskCostModel::default();
        let small = m.join_cost(&JoinCtx {
            outer_card: 1000.0,
            inner_card: 1000.0, // 32 pages <= 64 -> in-memory
            output_card: 100.0,
            outer_rels: 1,
            is_cross_product: false,
        });
        let large = m.join_cost(&JoinCtx {
            outer_card: 1000.0,
            inner_card: 10_000.0, // 313 pages > 64 -> Grace
            output_card: 100.0,
            outer_rels: 1,
            is_cross_product: false,
        });
        // The large build should cost much more than 10x the small one's
        // inner contribution because of the 3x partitioning transfer.
        assert!(large > small * 3.0);
    }

    #[test]
    fn cross_product_io_scales_with_outer_loads() {
        let m = DiskCostModel {
            mem_pages: 2.0,
            ..DiskCostModel::default()
        };
        let c = m.join_cost(&JoinCtx {
            outer_card: 256.0, // 8 pages -> 4 loads of the inner
            inner_card: 64.0,  // 2 pages
            output_card: 256.0 * 64.0,
            outer_rels: 1,
            is_cross_product: true,
        });
        assert!(c > 0.0);
        // Outer: 8 pages (width 1) -> 4 memory loads of the inner (2
        // pages); output is width 2: 16384·128·2/4096 = 1024 pages.
        // IO = 8 + 4·2 + 1024 = 1040 pages.
        let io_expected = 1040.0 * m.io_weight;
        let cpu_expected = (256.0 + 64.0 + 16384.0) * m.cpu_weight;
        assert!((c - (io_expected + cpu_expected)).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_admissible() {
        let q = QueryBuilder::new()
            .relation("a", 5000)
            .relation("b", 20000)
            .relation("c", 100)
            .join("a", "b", 0.0001)
            .join("b", "c", 0.001)
            .build()
            .unwrap();
        let m = DiskCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let lb = m.lower_bound(&q, &comp);
        assert!(lb > 0.0);
        for perm in [[0u32, 1, 2], [1, 0, 2], [2, 1, 0], [1, 2, 0]] {
            let o: Vec<RelId> = perm.iter().map(|&i| RelId(i)).collect();
            let c = m.order_cost(&q, &o);
            assert!(lb <= c + 1e-9, "bound {lb} > cost {c} for {perm:?}");
        }
    }
}
