//! Boundary-size differential suite for the multi-word bitset kernels.
//!
//! Every kernel in the large-N path dispatches on the mask stride
//! (1 word / one 4-word block / general blocked), and the dispatch
//! boundaries sit exactly at N = 64 (last single-word size) and
//! N = 256 (last single-block size), with further word boundaries at
//! every multiple of 64. These tests pin the sizes on *both sides* of
//! each word boundary up to three words —
//! N ∈ {63, 64, 65, 127, 128, 129, 191, 192, 193} — plus a few sizes
//! past the block capacity to reach the general tier, and assert that
//! at every one of them the multi-word kernels are **bit-identical**
//! with the scalar reference scan:
//!
//! * full validity ([`BitsetChecker::is_valid`]) vs the adjacency-list
//!   scan ([`ljqo_plan::validity::is_valid`]),
//! * windowed revalidation (`window_valid`, `window_valid_primed`) vs
//!   a full re-scan after raw (unfiltered) window permutations,
//! * move filtering: the compiled generator proposes the *same stream*
//!   as the legacy scalar generator under the same seed,
//! * costing: the blocked tree walk reproduces `order_cost` bit for
//!   bit, under every cost model, on 1–4-component catalogs.
//!
//! Offline property-test idiom: seeded-RNG loops, one derived seed per
//! case, failures reproduce exactly.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{bitset, CompiledQuery, Query, QueryBuilder};
use ljqo_cost::{
    sanitize_cost, CostModel, DiskCostModel, MemoryCostModel, MultiMethodCostModel, TreeEvaluator,
};
use ljqo_plan::validity::{is_valid, BitsetChecker, ValidityChecker};
use ljqo_plan::{random_valid_order, Move, MoveGenerator, MoveSet, TreePlan};

/// Sizes straddling every 64-bit word boundary up to three words. All
/// are ≤ 256, so they exercise the single-word and single-block tiers.
const BOUNDARY_NS: [usize; 9] = [63, 64, 65, 127, 128, 129, 191, 192, 193];

/// Sizes straddling the block-capacity boundary: the general (heap
/// stride) tier starts at 257.
const GENERAL_NS: [usize; 3] = [256, 257, 320];

fn models() -> Vec<Box<dyn CostModel>> {
    vec![
        Box::new(MemoryCostModel::default()),
        Box::new(DiskCostModel::default()),
        Box::new(MultiMethodCostModel::default()),
    ]
}

fn all_kinds() -> MoveSet {
    MoveSet {
        adjacent_swap: 0.25,
        swap: 0.35,
        three_cycle: 0.2,
        reinsert: 0.2,
    }
}

/// A catalog of exactly `n_total` relations split across `n_components`
/// connected components (random spanning trees plus a few chords), so
/// the *global* relation count pins the mask stride while each
/// component's own size varies.
fn boundary_catalog(rng: &mut SmallRng, n_total: usize, n_components: usize) -> Query {
    let n_components = n_components.min(n_total / 2).max(1);
    // Sizes: every component gets at least 2 relations, the remainder is
    // dealt out randomly.
    let mut sizes = vec![2usize; n_components];
    for _ in 0..n_total - 2 * n_components {
        sizes[rng.gen_range(0..n_components)] += 1;
    }

    let mut b = QueryBuilder::new();
    let mut start = 0usize;
    let mut spans = Vec::new();
    for &size in &sizes {
        for i in 0..size {
            b = b.relation(format!("r{}", start + i), rng.gen_range(1u64..100_000));
        }
        // Random spanning tree over this component's contiguous block.
        for i in 1..size {
            let j = rng.gen_range(0..i);
            b = b.join(
                &format!("r{}", start + j),
                &format!("r{}", start + i),
                10f64.powf(rng.gen_range(-4.0..0.0)),
            );
        }
        // A few chords so neighbor rows have more than tree-degree bits.
        for _ in 0..size / 8 {
            let a = rng.gen_range(0..size);
            let c = rng.gen_range(0..size);
            if a != c {
                b = b.join(
                    &format!("r{}", start + a),
                    &format!("r{}", start + c),
                    10f64.powf(rng.gen_range(-4.0..0.0)),
                );
            }
        }
        spans.push((start, size));
        start += size;
    }
    b.build().unwrap()
}

/// The boundary grid: for each pinned N, a case per component count.
fn boundary_cases(base_seed: u64) -> impl Iterator<Item = (usize, usize, SmallRng)> {
    BOUNDARY_NS.into_iter().flat_map(move |n| {
        (1usize..=4).map(move |comps| {
            let seed = base_seed ^ ((n as u64) << 16) ^ (comps as u64);
            (n, comps, SmallRng::seed_from_u64(seed))
        })
    })
}

/// The three validity backends must agree on every order, valid or not:
/// the compiled multi-word kernel, the scalar marker array, and the
/// adjacency-list reference scan.
#[test]
fn bitset_validity_matches_scalar_scan_at_word_boundaries() {
    for (n, comps, mut rng) in boundary_cases(0x1a6e_0001) {
        let q = boundary_catalog(&mut rng, n, comps);
        let cq = CompiledQuery::new(&q);
        assert_eq!(
            cq.mask_stride(),
            bitset::stride_for_relations(n),
            "N={n}: compiled stride disagrees with the layout rule"
        );
        let mut bits = BitsetChecker::new(q.n_relations());
        let mut scalar = ValidityChecker::new(q.n_relations());
        for comp in q.graph().components() {
            let mut order = random_valid_order(q.graph(), &comp, &mut rng);
            // The untouched valid order first.
            assert!(
                bits.is_valid(&cq, order.rels()),
                "N={n}/{comps}: valid order rejected"
            );
            // Then raw corruptions: swap arbitrary positions without any
            // validity filtering, so both verdicts occur.
            for _ in 0..48 {
                if order.len() >= 2 {
                    let i = rng.gen_range(0..order.len());
                    let j = rng.gen_range(0..order.len());
                    order.rels_mut().swap(i, j);
                }
                let want = is_valid(q.graph(), order.rels());
                assert_eq!(
                    bits.is_valid(&cq, order.rels()),
                    want,
                    "N={n}/{comps}: multi-word verdict diverged on {:?}",
                    order.rels()
                );
                assert_eq!(
                    scalar.is_valid(q.graph(), order.rels()),
                    want,
                    "N={n}/{comps}: scalar checker diverged on {:?}",
                    order.rels()
                );
            }
        }
    }
}

/// Windowed revalidation after a raw window permutation of a valid
/// order returns exactly the full-scan verdict, through both the
/// uncached (`window_valid`) and prefix-cached (`window_valid_primed`)
/// entry points.
#[test]
fn windowed_revalidation_matches_full_scan_at_word_boundaries() {
    for (n, comps, mut rng) in boundary_cases(0x1a6e_0002) {
        let q = boundary_catalog(&mut rng, n, comps);
        let cq = CompiledQuery::new(&q);
        let mut plain = BitsetChecker::new(q.n_relations());
        let mut primed = BitsetChecker::new(q.n_relations());
        for comp in q.graph().components() {
            let mut order = random_valid_order(q.graph(), &comp, &mut rng);
            if order.len() < 2 {
                continue;
            }
            primed.reset_prefix();
            for _ in 0..48 {
                // A raw swap permutes the window i..=j of an order that
                // was valid beforehand — exactly the windowed-check
                // precondition — without any filtering, so rejection
                // paths are exercised too.
                let i = rng.gen_range(0..order.len());
                let j = rng.gen_range(0..order.len());
                let mv = Move::Swap {
                    i: i.min(j),
                    j: i.max(j),
                };
                mv.apply(&mut order);
                let (lo, hi) = (mv.first_touched(), mv.last_touched());
                let want = is_valid(q.graph(), order.rels());
                assert_eq!(
                    plain.window_valid(&cq, order.rels(), lo, hi),
                    want,
                    "N={n}/{comps}: window verdict diverged for {mv:?}"
                );
                assert_eq!(
                    primed.window_valid_primed(&cq, order.rels(), lo, hi),
                    want,
                    "N={n}/{comps}: primed window verdict diverged for {mv:?}"
                );
                if want {
                    // Accepted: prefix entries past lo are stale.
                    primed.truncate_prefix(lo);
                } else {
                    // Rejected: restore the valid base order; the cached
                    // prefix (≤ lo) is untouched by the undone window.
                    mv.undo(&mut order);
                    primed.truncate_prefix(lo);
                }
            }
        }
    }
}

/// The compiled (multi-word, prefix-cached) move generator and the
/// legacy scalar generator propose the *same move stream* from the same
/// seed — filtering decisions are bit-identical, so distributions are
/// too.
#[test]
fn move_filtering_matches_legacy_generator_at_word_boundaries() {
    for (n, comps, mut rng) in boundary_cases(0x1a6e_0003) {
        let q = boundary_catalog(&mut rng, n, comps);
        let cq = Arc::new(CompiledQuery::new(&q));
        for comp in q.graph().components() {
            let order = random_valid_order(q.graph(), &comp, &mut rng);
            if order.len() < 3 {
                continue;
            }
            let seed = rng.gen::<u64>();
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let mut order_a = order.clone();
            let mut order_b = order;
            let mut legacy = MoveGenerator::new(q.n_relations(), all_kinds());
            let mut compiled = MoveGenerator::with_compiled(Arc::clone(&cq), all_kinds());
            for step in 0..300 {
                let a = legacy.propose_counted(q.graph(), &mut order_a, &mut rng_a);
                let b = compiled.propose_counted(q.graph(), &mut order_b, &mut rng_b);
                assert_eq!(a, b, "N={n}/{comps} step {step}: proposal streams diverged");
                assert_eq!(
                    order_a, order_b,
                    "N={n}/{comps} step {step}: orders diverged"
                );
                if a.is_some() {
                    assert!(
                        is_valid(q.graph(), order_a.rels()),
                        "N={n}/{comps} step {step}: generator left an invalid order"
                    );
                }
            }
        }
    }
}

/// The blocked tree walk prices a left-deep embedding of an order
/// exactly as the linear walk prices the order — bit for bit, under
/// every model, at every boundary size (all ≤ the 256-relation arena
/// capacity).
#[test]
fn tree_walk_matches_linear_walk_bit_for_bit_at_word_boundaries() {
    for (n, comps, mut rng) in boundary_cases(0x1a6e_0004) {
        let q = boundary_catalog(&mut rng, n, comps);
        let cq = Arc::new(CompiledQuery::new(&q));
        for model in models() {
            for comp in q.graph().components() {
                let order = random_valid_order(q.graph(), &comp, &mut rng);
                if order.len() < 2 {
                    continue;
                }
                let plan = TreePlan::from_order(&cq, order.rels());
                let tree = TreeEvaluator::new(model.as_ref(), Arc::clone(&cq), plan).current_cost();
                let linear = sanitize_cost(model.order_cost(&q, order.rels()));
                assert_eq!(
                    tree.to_bits(),
                    linear.to_bits(),
                    "N={n}/{comps} {}: tree walk {tree} != linear walk {linear}",
                    model.name()
                );
            }
        }
    }
}

/// Past the 256-relation block capacity the general (heap-strided) tier
/// takes over for validity, windowed checks, and move filtering; it
/// must agree with the reference scan and the legacy generator exactly
/// like the block tier does.
#[test]
fn general_tier_matches_reference_past_block_capacity() {
    for &n in &GENERAL_NS {
        let mut rng = SmallRng::seed_from_u64(0x1a6e_0005 ^ (n as u64));
        let q = boundary_catalog(&mut rng, n, 2);
        let cq = Arc::new(CompiledQuery::new(&q));
        assert_eq!(cq.mask_stride(), bitset::stride_for_relations(n));
        let mut bits = BitsetChecker::new(q.n_relations());
        for comp in q.graph().components() {
            let mut order = random_valid_order(q.graph(), &comp, &mut rng);
            if order.len() < 3 {
                continue;
            }
            for _ in 0..32 {
                let i = rng.gen_range(0..order.len());
                let j = rng.gen_range(0..order.len());
                let mv = Move::Swap {
                    i: i.min(j),
                    j: i.max(j),
                };
                mv.apply(&mut order);
                let want = is_valid(q.graph(), order.rels());
                assert_eq!(
                    bits.is_valid(&cq, order.rels()),
                    want,
                    "N={n}: general-tier full verdict diverged"
                );
                assert_eq!(
                    bits.window_valid(&cq, order.rels(), mv.first_touched(), mv.last_touched()),
                    want,
                    "N={n}: general-tier window verdict diverged"
                );
                if !want {
                    mv.undo(&mut order);
                }
            }

            // Same-seed generator differential on the general tier.
            let seed = rng.gen::<u64>();
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            let mut order_a = order.clone();
            let mut order_b = order;
            let mut legacy = MoveGenerator::new(q.n_relations(), all_kinds());
            let mut compiled = MoveGenerator::with_compiled(Arc::clone(&cq), all_kinds());
            for step in 0..200 {
                let a = legacy.propose_counted(q.graph(), &mut order_a, &mut rng_a);
                let b = compiled.propose_counted(q.graph(), &mut order_b, &mut rng_b);
                assert_eq!(a, b, "N={n} step {step}: proposal streams diverged");
                assert_eq!(order_a, order_b, "N={n} step {step}: orders diverged");
            }
        }
    }
}

/// Padding discipline: the neighbor rows of a compiled boundary-size
/// catalog never set bits at or above `n_relations`, so kernels may
/// OR whole words without masking.
#[test]
fn neighbor_rows_keep_padding_words_zero() {
    for &n in &[63usize, 64, 65, 127, 128, 129, 191, 192, 193, 256, 257, 320] {
        let mut rng = SmallRng::seed_from_u64(0x1a6e_0006 ^ (n as u64));
        let q = boundary_catalog(&mut rng, n, 1 + n % 4);
        let cq = CompiledQuery::new(&q);
        let stride = cq.mask_stride();
        for r in q.rel_ids() {
            let row = cq.neighbor_blocks(r);
            assert_eq!(row.len(), stride, "N={n}: row stride mismatch");
            for (w, &word) in row.iter().enumerate() {
                let base = w * 64;
                if base >= n {
                    assert_eq!(word, 0, "N={n}: padding word {w} nonzero for {r:?}");
                } else if base + 64 > n {
                    let live = n - base;
                    assert_eq!(
                        word & !((1u64 << live) - 1),
                        0,
                        "N={n}: tail word {w} has bits past relation {n} for {r:?}"
                    );
                }
            }
        }
    }
}
