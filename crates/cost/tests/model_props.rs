//! Property tests on the cost models: monotonicity, positivity, and
//! lower-bound admissibility over random chain queries. Implemented as
//! seeded-RNG loops: the build is offline, so no proptest — every case
//! is reproducible from its printed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{Query, QueryBuilder, RelId};
use ljqo_cost::propagate::order_cost_propagated;
use ljqo_cost::{
    costs_agree, CostModel, DiskCostModel, Estimator, IncrementalEvaluator, JoinCtx,
    MemoryCostModel, MultiMethodCostModel,
};
use ljqo_plan::Move;

const CASES: u64 = 64;

fn models() -> [Box<dyn CostModel>; 3] {
    [
        Box::new(MemoryCostModel::default()),
        Box::new(DiskCostModel::default()),
        Box::new(MultiMethodCostModel::default()),
    ]
}

/// A random chain query of 3..8 relations.
fn arb_chain(rng: &mut SmallRng) -> Query {
    let len = rng.gen_range(3usize..8);
    let mut b = QueryBuilder::new();
    let mut sels = Vec::with_capacity(len);
    for i in 0..len {
        b = b.relation(format!("r{i}"), rng.gen_range(10u64..50_000));
        sels.push(rng.gen_range(0.001f64..1.0));
    }
    for (i, sel) in sels.iter().enumerate().skip(1) {
        b = b.join(&format!("r{}", i - 1), &format!("r{i}"), *sel);
    }
    b.build().unwrap()
}

/// A random connected catalog: a chain spine of 4..9 relations plus
/// random extra join edges (so moves hit cross products, cycles, and
/// star-ish fragments, not just chains).
fn arb_catalog(rng: &mut SmallRng) -> Query {
    let len = rng.gen_range(4usize..9);
    let mut b = QueryBuilder::new();
    for i in 0..len {
        b = b.relation(format!("r{i}"), rng.gen_range(10u64..50_000));
    }
    for i in 1..len {
        b = b.join(
            &format!("r{}", i - 1),
            &format!("r{i}"),
            rng.gen_range(0.001f64..1.0),
        );
    }
    for i in 0..len {
        for j in (i + 2)..len {
            if rng.gen_bool(0.15) {
                b = b.join(
                    &format!("r{i}"),
                    &format!("r{j}"),
                    rng.gen_range(0.001f64..1.0),
                );
            }
        }
    }
    b.build().unwrap()
}

/// A batch of random moves covering all four kinds the local-search
/// methods generate: adjacent swap, arbitrary swap, 3-cycle, reinsert.
fn arb_moves(n: usize, rng: &mut SmallRng) -> Vec<Move> {
    let mut mvs = Vec::new();
    for _ in 0..4 {
        let i = rng.gen_range(0..n - 1);
        mvs.push(Move::Swap { i, j: i + 1 });

        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        mvs.push(Move::Swap { i, j });

        let mut k = rng.gen_range(0..n - 2);
        for taken in [i.min(j), i.max(j)] {
            if k >= taken {
                k += 1;
            }
        }
        mvs.push(Move::ThreeCycle { i, j, k });

        let from = rng.gen_range(0..n);
        let mut to = rng.gen_range(0..n - 1);
        if to >= from {
            to += 1;
        }
        mvs.push(Move::Reinsert { from, to });
    }
    mvs
}

/// Incremental (delta) move evaluation agrees with a from-scratch walk
/// for every move kind on random catalogs, under every cost model; after
/// a commit the memoized state is bit-identical to a fresh walk.
#[test]
fn incremental_matches_full_for_all_move_kinds() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc057_0005 ^ case);
        let q = arb_catalog(&mut rng);
        let comp: Vec<RelId> = q.rel_ids().collect();
        for model in models() {
            let order = ljqo_plan::random_valid_order(q.graph(), &comp, &mut rng);
            let mut inc = IncrementalEvaluator::new(&q, model.as_ref(), Estimator::Static, order);
            for mv in arb_moves(q.n_relations(), &mut rng) {
                let got = inc.eval_move(&mv);
                let want = inc.full_eval();
                assert!(
                    costs_agree(got, want),
                    "case {case}: {} {mv:?}: incremental {got} vs full {want}",
                    model.name()
                );
                if rng.gen_bool(0.5) {
                    inc.commit();
                    assert_eq!(
                        inc.current_cost(),
                        inc.full_eval(),
                        "case {case}: {} {mv:?}: committed state not bit-exact",
                        model.name()
                    );
                } else {
                    inc.rollback();
                    assert_eq!(
                        inc.current_cost(),
                        inc.full_eval(),
                        "case {case}: {} {mv:?}: rollback corrupted state",
                        model.name()
                    );
                }
            }
        }
    }
}

/// With the propagated (distinct-value) estimator the incremental path
/// re-walks the suffix with the exact reference operation sequence, so
/// evaluations are bit-identical to [`order_cost_propagated`].
#[test]
fn incremental_propagated_matches_reference() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc057_0006 ^ case);
        let q = arb_catalog(&mut rng);
        let comp: Vec<RelId> = q.rel_ids().collect();
        for model in models() {
            let order = ljqo_plan::random_valid_order(q.graph(), &comp, &mut rng);
            let mut inc =
                IncrementalEvaluator::new(&q, model.as_ref(), Estimator::Propagated, order);
            for mv in arb_moves(q.n_relations(), &mut rng) {
                let got = inc.eval_move(&mv);
                let want = order_cost_propagated(&q, model.as_ref(), inc.order().rels());
                assert_eq!(got, want, "case {case}: {} {mv:?}", model.name());
                if rng.gen_bool(0.5) {
                    inc.commit();
                    assert_eq!(inc.current_cost(), inc.full_eval(), "case {case}");
                } else {
                    inc.rollback();
                }
            }
        }
    }
}

/// Join costs are positive, finite, and monotone in every cardinality.
#[test]
fn join_cost_is_monotone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc057_0001 ^ case);
        let outer = rng.gen_range(1.0f64..1e8);
        let inner = rng.gen_range(1.0f64..1e8);
        let output = rng.gen_range(1.0f64..1e10);
        let rels = rng.gen_range(1usize..20);
        let bump = rng.gen_range(1.1f64..4.0);
        let ctx = JoinCtx {
            outer_card: outer,
            inner_card: inner,
            output_card: output,
            outer_rels: rels,
            is_cross_product: false,
        };
        for model in models() {
            let base = model.join_cost(&ctx);
            assert!(
                base.is_finite() && base > 0.0,
                "case {case}: {}",
                model.name()
            );
            for grown in [
                JoinCtx {
                    outer_card: outer * bump,
                    ..ctx
                },
                JoinCtx {
                    inner_card: inner * bump,
                    ..ctx
                },
                JoinCtx {
                    output_card: output * bump,
                    ..ctx
                },
            ] {
                assert!(
                    model.join_cost(&grown) >= base - base * 1e-12,
                    "case {case}: {} not monotone",
                    model.name()
                );
            }
        }
    }
}

/// Lower bounds are admissible for every valid order of a chain.
#[test]
fn lower_bound_admissible_on_chains() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc057_0002 ^ case);
        let q = arb_chain(&mut rng);
        let comp: Vec<RelId> = q.rel_ids().collect();
        for model in models() {
            let lb = model.lower_bound(&q, &comp);
            assert!(lb >= 0.0 && lb.is_finite(), "case {case}");
            for _ in 0..5 {
                let o = ljqo_plan::random_valid_order(q.graph(), &comp, &mut rng);
                let c = model.order_cost(&q, o.rels());
                assert!(
                    lb <= c * (1.0 + 1e-12),
                    "case {case}: {}: {lb} > {c}",
                    model.name()
                );
            }
        }
    }
}

/// Order costs only accumulate: the cost of a prefix never exceeds the
/// cost of the whole order.
#[test]
fn prefix_costs_are_monotone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc057_0003 ^ case);
        let q = arb_chain(&mut rng);
        let order: Vec<RelId> = q.rel_ids().collect();
        for model in models() {
            let mut prev = 0.0;
            for k in 1..=order.len() {
                let c = model.order_cost(&q, &order[..k]);
                assert!(c >= prev - prev * 1e-12, "case {case}: {}", model.name());
                prev = c;
            }
        }
    }
}

/// The multi-method model never costs more than the pure hash model
/// with matching hash parameters on joins (it takes a min that
/// includes hash).
#[test]
fn multi_method_dominates_hash() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc057_0004 ^ case);
        let hash = MemoryCostModel {
            c_copy: 0.0,
            ..MemoryCostModel::default()
        };
        let multi = MultiMethodCostModel::default();
        let ctx = JoinCtx {
            outer_card: rng.gen_range(1.0f64..1e7),
            inner_card: rng.gen_range(1.0f64..1e7),
            output_card: rng.gen_range(1.0f64..1e8),
            outer_rels: rng.gen_range(1usize..10),
            is_cross_product: false,
        };
        assert!(
            multi.join_cost(&ctx) <= hash.join_cost(&ctx) + 1e-9,
            "case {case}"
        );
    }
}
