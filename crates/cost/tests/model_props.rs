//! Property tests on the cost models: monotonicity, positivity, and
//! lower-bound admissibility over random chain queries.

use proptest::prelude::*;

use ljqo_catalog::{Query, QueryBuilder, RelId};
use ljqo_cost::{
    CostModel, DiskCostModel, JoinCtx, MemoryCostModel, MultiMethodCostModel,
};

fn models() -> [Box<dyn CostModel>; 3] {
    [
        Box::new(MemoryCostModel::default()),
        Box::new(DiskCostModel::default()),
        Box::new(MultiMethodCostModel::default()),
    ]
}

/// Strategy: a random chain query of 3..8 relations.
fn arb_chain() -> impl Strategy<Value = Query> {
    prop::collection::vec((10u64..50_000, 0.001f64..1.0), 3..8).prop_map(|specs| {
        let mut b = QueryBuilder::new();
        for (i, (card, _)) in specs.iter().enumerate() {
            b = b.relation(format!("r{i}"), *card);
        }
        for (i, (_, sel)) in specs.iter().enumerate().skip(1) {
            b = b.join(&format!("r{}", i - 1), &format!("r{i}"), *sel);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Join costs are positive, finite, and monotone in every cardinality.
    #[test]
    fn join_cost_is_monotone(outer in 1.0f64..1e8, inner in 1.0f64..1e8,
                             output in 1.0f64..1e10, rels in 1usize..20,
                             bump in 1.1f64..4.0) {
        let ctx = JoinCtx {
            outer_card: outer,
            inner_card: inner,
            output_card: output,
            outer_rels: rels,
            is_cross_product: false,
        };
        for model in models() {
            let base = model.join_cost(&ctx);
            prop_assert!(base.is_finite() && base > 0.0, "{}", model.name());
            for grown in [
                JoinCtx { outer_card: outer * bump, ..ctx },
                JoinCtx { inner_card: inner * bump, ..ctx },
                JoinCtx { output_card: output * bump, ..ctx },
            ] {
                prop_assert!(
                    model.join_cost(&grown) >= base - base * 1e-12,
                    "{} not monotone",
                    model.name()
                );
            }
        }
    }

    /// Lower bounds are admissible for every valid order of a chain.
    #[test]
    fn lower_bound_admissible_on_chains(q in arb_chain(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for model in models() {
            let lb = model.lower_bound(&q, &comp);
            prop_assert!(lb >= 0.0 && lb.is_finite());
            for _ in 0..5 {
                let o = ljqo_plan::random_valid_order(q.graph(), &comp, &mut rng);
                let c = model.order_cost(&q, o.rels());
                prop_assert!(lb <= c * (1.0 + 1e-12), "{}: {lb} > {c}", model.name());
            }
        }
    }

    /// Order costs only accumulate: the cost of a prefix never exceeds the
    /// cost of the whole order.
    #[test]
    fn prefix_costs_are_monotone(q in arb_chain()) {
        let order: Vec<RelId> = q.rel_ids().collect();
        for model in models() {
            let mut prev = 0.0;
            for k in 1..=order.len() {
                let c = model.order_cost(&q, &order[..k]);
                prop_assert!(c >= prev - prev * 1e-12, "{}", model.name());
                prev = c;
            }
        }
    }

    /// The multi-method model never costs more than the pure hash model
    /// with matching hash parameters on joins (it takes a min that
    /// includes hash).
    #[test]
    fn multi_method_dominates_hash(outer in 1.0f64..1e7, inner in 1.0f64..1e7,
                                   output in 1.0f64..1e8, rels in 1usize..10) {
        let hash = MemoryCostModel { c_copy: 0.0, ..MemoryCostModel::default() };
        let multi = MultiMethodCostModel::default();
        let ctx = JoinCtx {
            outer_card: outer,
            inner_card: inner,
            output_card: output,
            outer_rels: rels,
            is_cross_product: false,
        };
        prop_assert!(multi.join_cost(&ctx) <= hash.join_cost(&ctx) + 1e-9);
    }
}
