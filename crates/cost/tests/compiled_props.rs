//! Differential property tests for the compiled fast paths.
//!
//! Every hot-loop shortcut introduced by the compiled query snapshot has a
//! slow reference implementation it must match **bit for bit** (not just
//! approximately): the bitset validity checker against the edge-chasing
//! scan of `ljqo_plan::validity`, the compiled incremental cost paths
//! against the from-scratch walks, and the sparse present-set
//! [`DistinctState`] against the dense scan of [`DenseDistinctState`].
//! Random catalogs with 1–4 connected components, all three cost models
//! and all four move kinds, as seeded-RNG loops (offline build, so no
//! proptest — every case reproduces from its printed seed).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo_catalog::{CompiledQuery, EdgeId, Query, QueryBuilder, RelId};
use ljqo_cost::propagate::{order_cost_propagated, DenseDistinctState, DistinctState};
use ljqo_cost::{
    costs_agree, CostModel, DiskCostModel, Estimator, IncrementalEvaluator, MemoryCostModel,
    MultiMethodCostModel,
};
use ljqo_plan::validity::is_valid;
use ljqo_plan::{random_valid_order, BitsetChecker, MoveGenerator, MoveSet};

const CASES: u64 = 64;

fn models() -> [Box<dyn CostModel>; 3] {
    [
        Box::new(MemoryCostModel::default()),
        Box::new(DiskCostModel::default()),
        Box::new(MultiMethodCostModel::default()),
    ]
}

/// A random catalog of 1..=4 connected components; each component is a
/// chain spine of 4..8 relations plus random extra edges (cycles, star-ish
/// hubs), with no edges between components.
fn arb_catalog(rng: &mut SmallRng) -> Query {
    let n_components = rng.gen_range(1usize..=4);
    let mut b = QueryBuilder::new();
    let mut next = 0usize;
    for _ in 0..n_components {
        let len = rng.gen_range(4usize..8);
        for i in next..next + len {
            b = b.relation(format!("r{i}"), rng.gen_range(10u64..50_000));
        }
        for i in next + 1..next + len {
            b = b.join(
                &format!("r{}", i - 1),
                &format!("r{i}"),
                rng.gen_range(0.001f64..1.0),
            );
        }
        for i in next..next + len {
            for j in (i + 2)..next + len {
                if rng.gen_bool(0.15) {
                    b = b.join(
                        &format!("r{i}"),
                        &format!("r{j}"),
                        rng.gen_range(0.001f64..1.0),
                    );
                }
            }
        }
        next += len;
    }
    b.build().unwrap()
}

fn all_kinds() -> MoveSet {
    MoveSet {
        adjacent_swap: 0.25,
        swap: 0.35,
        three_cycle: 0.2,
        reinsert: 0.2,
    }
}

/// In-place Fisher–Yates (the vendored rand has no `SliceRandom`).
fn shuffle(rels: &mut [RelId], rng: &mut SmallRng) {
    for i in (1..rels.len()).rev() {
        let j = rng.gen_range(0..=i);
        rels.swap(i, j);
    }
}

/// The bitset checker agrees with the reference edge-chasing scan on both
/// valid orders and arbitrary (mostly invalid) permutations, including
/// multi-component catalogs where an order covers only one component.
#[test]
fn bitset_validity_matches_reference() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc09d_0001 ^ case);
        let q = arb_catalog(&mut rng);
        let cq = CompiledQuery::new(&q);
        let mut checker = BitsetChecker::new(q.n_relations());
        for comp in q.graph().components() {
            for _ in 0..8 {
                let order = random_valid_order(q.graph(), &comp, &mut rng);
                assert!(
                    checker.is_valid(&cq, order.rels()),
                    "case {case}: bitset checker rejected a valid order"
                );
                let mut scrambled: Vec<RelId> = order.rels().to_vec();
                shuffle(&mut scrambled, &mut rng);
                assert_eq!(
                    checker.is_valid(&cq, &scrambled),
                    is_valid(q.graph(), &scrambled),
                    "case {case}: bitset and reference disagree on {scrambled:?}"
                );
            }
        }
    }
}

/// Windowed revalidation after a move is exact: on orders that were valid
/// before the move, `window_valid` over the move's touched window gives
/// the same verdict as the full reference scan of the perturbed order.
#[test]
fn windowed_validity_matches_full_scan_after_moves() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc09d_0002 ^ case);
        let q = arb_catalog(&mut rng);
        let cq = CompiledQuery::new(&q);
        let mut checker = BitsetChecker::new(q.n_relations());
        let mut gen = MoveGenerator::new(q.n_relations(), all_kinds());
        for comp in q.graph().components() {
            let mut order = random_valid_order(q.graph(), &comp, &mut rng);
            for _ in 0..32 {
                // Sample a raw (unfiltered) move by proposing through the
                // legacy generator and undoing its filtering: propose
                // returns the applied, already-valid move, so to also hit
                // invalid windows we additionally scramble two positions.
                if let Some((mv, _)) = gen.propose_counted(q.graph(), &mut order, &mut rng) {
                    let got = checker.window_valid(
                        &cq,
                        order.rels(),
                        mv.first_touched(),
                        mv.last_touched(),
                    );
                    assert_eq!(
                        got,
                        is_valid(q.graph(), order.rels()),
                        "case {case}: window verdict diverged for {mv:?}"
                    );
                    if !got {
                        mv.undo(&mut order);
                    }
                }
                if order.len() >= 2 {
                    // A raw swap, not validity-filtered: exercise rejection.
                    let i = rng.gen_range(0..order.len());
                    let j = rng.gen_range(0..order.len());
                    let mv = ljqo_plan::Move::Swap {
                        i: i.min(j),
                        j: i.max(j),
                    };
                    mv.apply(&mut order);
                    let got = checker.window_valid(
                        &cq,
                        order.rels(),
                        mv.first_touched(),
                        mv.last_touched(),
                    );
                    assert_eq!(
                        got,
                        is_valid(q.graph(), order.rels()),
                        "case {case}: raw-swap window verdict diverged for {mv:?}"
                    );
                    if !got {
                        mv.undo(&mut order);
                    }
                }
            }
        }
    }
}

/// The compiled incremental static path reproduces the from-scratch
/// `order_cost` walk (within re-association tolerance per evaluation,
/// bit-exactly after every commit), on multi-component catalogs, under
/// every cost model, with compiled-filtered moves of all four kinds.
#[test]
fn compiled_incremental_matches_order_cost() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc09d_0003 ^ case);
        let q = arb_catalog(&mut rng);
        let compiled = Arc::new(CompiledQuery::new(&q));
        for model in models() {
            for comp in q.graph().components() {
                let order = random_valid_order(q.graph(), &comp, &mut rng);
                let mut inc = IncrementalEvaluator::with_compiled(
                    &q,
                    model.as_ref(),
                    Estimator::Static,
                    order,
                    Arc::clone(&compiled),
                );
                let mut gen = MoveGenerator::with_compiled(Arc::clone(&compiled), all_kinds());
                for _ in 0..16 {
                    let Some((mv, _)) = gen.propose_counted(q.graph(), inc.order_mut(), &mut rng)
                    else {
                        break;
                    };
                    let got = inc.eval_applied(&mv);
                    let want = inc.full_eval();
                    assert!(
                        costs_agree(got, want),
                        "case {case}: {} {mv:?}: compiled incremental {got} vs full {want}",
                        model.name()
                    );
                    if rng.gen_bool(0.5) {
                        inc.commit();
                        assert_eq!(
                            inc.current_cost(),
                            inc.full_eval(),
                            "case {case}: {} {mv:?}: committed state not bit-exact",
                            model.name()
                        );
                    } else {
                        inc.rollback();
                    }
                }
            }
        }
    }
}

/// Same contract for the propagated estimator: evaluations are
/// bit-identical to [`order_cost_propagated`] (the suffix re-walk uses the
/// exact reference operation sequence, so there is no tolerance at all).
#[test]
fn compiled_incremental_matches_propagated_reference() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc09d_0004 ^ case);
        let q = arb_catalog(&mut rng);
        let compiled = Arc::new(CompiledQuery::new(&q));
        for model in models() {
            for comp in q.graph().components() {
                let order = random_valid_order(q.graph(), &comp, &mut rng);
                let mut inc = IncrementalEvaluator::with_compiled(
                    &q,
                    model.as_ref(),
                    Estimator::Propagated,
                    order,
                    Arc::clone(&compiled),
                );
                let mut gen = MoveGenerator::with_compiled(Arc::clone(&compiled), all_kinds());
                for _ in 0..16 {
                    let Some((mv, _)) = gen.propose_counted(q.graph(), inc.order_mut(), &mut rng)
                    else {
                        break;
                    };
                    let got = inc.eval_applied(&mv);
                    let want = order_cost_propagated(&q, model.as_ref(), inc.order().rels());
                    assert_eq!(got, want, "case {case}: {} {mv:?}", model.name());
                    if rng.gen_bool(0.5) {
                        inc.commit();
                        assert_eq!(inc.current_cost(), inc.full_eval(), "case {case}");
                    } else {
                        inc.rollback();
                    }
                }
            }
        }
    }
}

/// The sparse present-set [`DistinctState`] is bit-for-bit equivalent to
/// the dense reference scan when driven through identical
/// `admit_first`/`join_selectivity`/`place` sequences — including after a
/// `reset` and a `copy_from` round trip.
#[test]
fn sparse_distinct_state_matches_dense() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xc09d_0005 ^ case);
        let q = arb_catalog(&mut rng);
        let mut sparse = DistinctState::new(&q);
        for comp in q.graph().components() {
            let order = random_valid_order(q.graph(), &comp, &mut rng);
            sparse.reset();
            let mut dense = DenseDistinctState::new(&q); // no reset: fresh build
            walk_both(&q, order.rels(), &mut sparse, &mut dense, case);

            // A copy of the sparse state must expose the same columns.
            let mut copied = DistinctState::new(&q);
            copied.copy_from(&sparse);
            assert_states_match(&q, &copied, &dense, case);
        }
    }
}

/// Drive both states through the same walk, asserting selectivity and
/// per-column agreement (bitwise, NaN-aware) after every step.
fn walk_both(
    q: &Query,
    order: &[RelId],
    sparse: &mut DistinctState,
    dense: &mut DenseDistinctState,
    case: u64,
) {
    let mut joined_s: Vec<(EdgeId, f64, f64)> = Vec::new();
    let mut joined_d: Vec<(EdgeId, f64, f64)> = Vec::new();
    sparse.admit_first(q, order[0]);
    dense.admit_first(q, order[0]);
    let mut card = q.cardinality(order[0]);
    for &inner in &order[1..] {
        joined_s.clear();
        joined_d.clear();
        let sel_s = sparse.join_selectivity(q, inner, &mut joined_s);
        let sel_d = dense.join_selectivity(q, inner, &mut joined_d);
        assert_eq!(
            sel_s.map(f64::to_bits),
            sel_d.map(f64::to_bits),
            "case {case}: join selectivity diverged at {inner:?}"
        );
        assert_eq!(
            joined_s, joined_d,
            "case {case}: joined-edge lists diverged"
        );
        card *= q.cardinality(inner) * sel_s.unwrap_or(1.0);
        sparse.place(q, inner, card, &joined_s);
        dense.place(q, inner, card, &joined_d);
        assert_states_match(q, sparse, dense, case);
    }
}

fn assert_states_match(q: &Query, sparse: &DistinctState, dense: &DenseDistinctState, case: u64) {
    for eid in 0..q.graph().edges().len() {
        for side in 0..2 {
            let s = sparse.distinct(EdgeId(eid as u32), side);
            let d = dense.distinct(EdgeId(eid as u32), side);
            assert_eq!(
                s.to_bits(),
                d.to_bits(),
                "case {case}: edge {eid} side {side}: sparse {s} vs dense {d}"
            );
        }
    }
}
