//! # ljqo-json — dependency-free JSON for the LJQO workspace
//!
//! The build environment is fully offline, so instead of `serde` +
//! `serde_json` this workspace carries its own small JSON layer: a
//! [`Value`] tree, a strict parser ([`parse`]), compact and pretty
//! printers, and a [`json!`] constructor macro. It covers exactly what
//! the CLI input format and the experiment reports need — objects keep
//! insertion order so emitted reports are stable across runs.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; integral values print without a
    /// fractional part). Non-finite values print as `null`, mirroring the
    /// robustness rule that NaN must never leak into output.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the `serde_json`
    /// convention the checked-in `results/*.json` files follow).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

from_number!(f64, f32, u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Build a [`Value`] from a literal: `json!(null)`, `json!(3.5)`,
/// `json!([a, b])`, or `json!({ "key": expr, ... })`. Values inside
/// objects and arrays are arbitrary expressions converted via
/// `Into<Value>`; nest objects by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($value)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; emit null rather than invalid output.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.abs() >= 1e16 || n.abs() < 1e-5 {
        // Rust's `{}` never uses scientific notation; huge magnitudes
        // would print hundreds of digits.
        out.push_str(&format!("{n:e}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (newline, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&pad);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(newline);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(newline);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, val, indent, depth + 1);
            }
            out.push_str(newline);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are not combined; out of scope here.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_sample_document() {
        let text = r#"{
            "relations": [
                { "name": "a", "cardinality": 1000, "selections": [0.5, 0.2] },
                { "name": "b", "cardinality": 200 }
            ],
            "joins": [
                { "left": "a", "right": "b", "selectivity": 0.01 }
            ]
        }"#;
        let v = parse(text).unwrap();
        let rels = v.get("relations").unwrap().as_array().unwrap();
        assert_eq!(rels.len(), 2);
        assert_eq!(rels[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(rels[0].get("cardinality").unwrap().as_u64(), Some(1000));
        let again = parse(&v.to_string_pretty()).unwrap();
        assert_eq!(v, again);
        let again = parse(&v.to_string_compact()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn numbers_print_like_serde_json() {
        assert_eq!(json!(3.0).to_string_compact(), "3");
        assert_eq!(json!(3.25).to_string_compact(), "3.25");
        assert_eq!(json!(-7).to_string_compact(), "-7");
        assert_eq!(json!(1e300).to_string_compact(), "1e300");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(json!(f64::NAN).to_string_compact(), "null");
        assert_eq!(json!(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn json_macro_builds_objects_and_arrays() {
        let rows = vec![json!({ "n": 10, "cost": 1.5 })];
        let v = json!({
            "experiment": "unit",
            "rows": rows,
            "ok": true,
            "nothing": json!(null),
        });
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("unit"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("nothing"), Some(&Value::Null));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("n").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn escapes_round_trip() {
        let v = json!("line\nbreak \"quoted\" back\\slash");
        let parsed = parse(&v.to_string_compact()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("{ \"a\": }").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] x").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1, "b": vec![json!(2)] });
        let s = v.to_string_pretty();
        assert!(s.contains("\n  \"a\": 1"));
        assert!(s.contains("\n  \"b\": [\n    2\n  ]"));
    }
}
