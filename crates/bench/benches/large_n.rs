//! The large-N regime: optimizer throughput and certified plan quality
//! on a grid of N ∈ {100 … 1000} relations × {II, SA, CARDFREE}.
//!
//! Two questions, answered per cell:
//!
//! * **throughput** — budget units consumed per second of wall clock,
//!   under the `nlogn:256` [`BudgetSchedule`] (quadratic up to 256
//!   relations, `N·log N` growth past it — the schedule that keeps
//!   planning time sane at N = 1000);
//! * **quality** — `cost / lower_bound`, where the lower bound is the
//!   LP-style certifier of `ljqo::bound`. A ratio near 1 *proves* the
//!   search landed near the optimum; the certificate needs no DP and so
//!   works at sizes where no exact reference exists.
//!
//! The bench also pins the kernel claim the regime rests on: at
//! N = 256, filtering a move through the primed multi-word window
//! kernel (`BitsetChecker::window_valid_primed`, `O(window)` with a
//! one-block placed set) must be **≥ 2.5× faster** than the general
//! path it replaced (an `O(lo)` word-by-word placed-mask refill per
//! check, replicated here verbatim). The assertion runs in smoke mode
//! too, so CI re-verifies it on every push.
//!
//! Writes the snapshot consumed by EXPERIMENTS.md to
//! `BENCH_largeN.json` at the workspace root (override the location
//! with `BENCH_LARGEN_OUT`; set `LARGE_N_SMOKE=1` for a seconds-long
//! CI smoke run: the N = 256 cell and the kernel assertion only).

use std::io::Write as _;
use std::time::Instant;

use ljqo_bench::timing::{bench_ns, black_box};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

use ljqo::bound::{bound_report, BoundReport};
use ljqo::{try_optimize, Method, OptimizerConfig};
use ljqo_catalog::{CompiledQuery, Query, RelId};
use ljqo_cost::{BudgetSchedule, CostModel, MemoryCostModel};
use ljqo_plan::{random_valid_order, BitsetChecker, Move};
use ljqo_workload::{generate_query, Benchmark};

const MOVE_POOL: usize = 256;

fn json_num(x: f64) -> ljqo_json::Value {
    ljqo_json::Value::Number((x * 1000.0).round() / 1000.0)
}

/// One optimizer run: wall clock, units consumed, and the certified
/// quality ratio against the linear lower bound.
fn run_cell(
    query: &Query,
    model: &dyn CostModel,
    method: Method,
    schedule: BudgetSchedule,
    tau: f64,
) -> ljqo_json::Value {
    let config = OptimizerConfig::new(method)
        .with_time_limit(tau)
        .with_schedule(schedule)
        .with_seed(17);
    let start = Instant::now();
    let result = try_optimize(query, model, &config).expect("optimizer must produce a plan");
    let elapsed = start.elapsed().as_secs_f64();
    let bound = bound_report(query, model);
    let ratio = BoundReport::ratio(bound.linear, result.cost).unwrap_or(0.0);
    println!(
        "grid/{}/{}: {:>9.1} ms, {:>12} units, cost/bound {:.3}",
        method.name(),
        query.n_relations(),
        elapsed * 1e3,
        result.units_used,
        ratio
    );
    ljqo_json::json!({
        "method": method.name(),
        "n_relations": query.n_relations() as u64,
        "budget_allotted": config.budget_units(query.n_joins().max(1)),
        "units_used": result.units_used,
        "elapsed_ms": json_num(elapsed * 1e3),
        "units_per_sec": json_num(if elapsed > 0.0 { result.units_used as f64 / elapsed } else { 0.0 }),
        "cost_over_lower_bound": json_num(ratio),
    })
}

/// Time one arm of the filter comparison over a raw move pool.
fn filter_arm(label: &str, pool: &[Move], mut check: impl FnMut(&Move) -> bool) -> f64 {
    let mut k = 0usize;
    bench_ns(label, || {
        let mv = pool[k % pool.len()];
        k += 1;
        black_box(check(&mv))
    })
}

/// The kernel claim: primed multi-word window filtering vs the general
/// path it replaced, at N = 256.
///
/// Two pools tell the story:
///
/// * **adjacent swaps** (window = 2, the canonical local-search move):
///   here the general path's `O(lo)` refill *is* the cost, and the
///   primed kernel's `O(1)` prefix lookup removes it entirely — this is
///   the asserted ≥ 2.5× cell;
/// * **arbitrary swaps** (window ≈ N/3): both paths spend their time in
///   the shared window scan, so the refill win shrinks toward 1× —
///   reported for honesty, not asserted.
fn bench_filter_speedup() -> ljqo_json::Value {
    const N: usize = 256;
    let query = generate_query(&Benchmark::Default.spec(), N, 3);
    let compiled = CompiledQuery::new(&query);
    let comp: Vec<RelId> = query.rel_ids().collect();
    let mut rng = SmallRng::seed_from_u64(0x1a6e);
    let order = random_valid_order(query.graph(), &comp, &mut rng);
    let n = order.len();

    let adjacent_pool: Vec<Move> = (0..MOVE_POOL)
        .map(|_| {
            let i = rng.gen_range(0..n - 1);
            Move::Swap { i, j: i + 1 }
        })
        .collect();
    let arbitrary_pool: Vec<Move> = (0..MOVE_POOL)
        .map(|_| {
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            Move::Swap {
                i: i.min(j),
                j: i.max(j),
            }
        })
        .collect();

    let mut rows = Vec::new();
    let mut asserted_speedup = 0.0f64;
    for (pool_name, pool) in [("adjacent", &adjacent_pool), ("arbitrary", &arbitrary_pool)] {
        // The replaced general path, replicated verbatim: refill a
        // words_per_rel placed mask word-by-word from position 0, then
        // scan the window through the unblocked `connects` word loop.
        // Cost per check: O(lo + window), no dispatch specialization.
        let mut placed = vec![0u64; compiled.words_per_rel()];
        let mut old_order = order.clone();
        let old_ns = filter_arm(&format!("filter/general/{pool_name}/{N}"), pool, |mv| {
            mv.apply(&mut old_order);
            let (lo, hi) = (mv.first_touched(), mv.last_touched());
            let start = lo.max(1);
            placed.fill(0);
            let rels = old_order.rels();
            for &r in &rels[..start] {
                compiled.set_placed(&mut placed, r);
            }
            let mut ok = true;
            for &r in &rels[start..=hi] {
                if !compiled.connects(r, &placed) {
                    ok = false;
                    break;
                }
                compiled.set_placed(&mut placed, r);
            }
            mv.undo(&mut old_order);
            ok
        });

        // The primed multi-word kernel: the prefix-mask cache makes the
        // placed set at `lo` an O(1) lookup, and the window scans
        // through the one-block branch-free kernel. Applied moves are
        // undone, so the base order never changes and the cache stays
        // warm — the steady state the proposal loop runs in.
        let mut checker = BitsetChecker::new(query.n_relations());
        let mut new_order = order.clone();
        let new_ns = filter_arm(&format!("filter/primed/{pool_name}/{N}"), pool, |mv| {
            mv.apply(&mut new_order);
            let ok = checker.window_valid_primed(
                &compiled,
                new_order.rels(),
                mv.first_touched(),
                mv.last_touched(),
            );
            mv.undo(&mut new_order);
            ok
        });

        let speedup = old_ns / new_ns;
        println!("filter/speedup/{pool_name}/{N}{:>30.2}x", speedup);
        if pool_name == "adjacent" {
            asserted_speedup = speedup;
        }
        rows.push(ljqo_json::json!({
            "pool": pool_name,
            "n": N as u64,
            "general_ns_per_move": json_num(old_ns),
            "primed_ns_per_move": json_num(new_ns),
            "speedup": json_num(speedup),
        }));
    }

    assert!(
        asserted_speedup >= 2.5,
        "primed multi-word filtering must be >= 2.5x the general path on the \
         adjacent-swap pool at N={N}, got {asserted_speedup:.2}x"
    );
    ljqo_json::json!({
        "asserted_pool": "adjacent",
        "asserted_floor": 2.5,
        "rows": ljqo_json::Value::Array(rows),
    })
}

fn main() {
    let smoke = std::env::var("LARGE_N_SMOKE").is_ok();
    let (sizes, tau): (Vec<usize>, f64) = if smoke {
        (vec![256], 0.1)
    } else {
        (vec![100, 200, 400, 700, 1000], 1.0)
    };
    let schedule = BudgetSchedule::NlogN { threshold: 256 };
    let model = MemoryCostModel::default();

    let filter = bench_filter_speedup();

    let mut grid: Vec<ljqo_json::Value> = Vec::new();
    for &n in &sizes {
        let query = generate_query(&Benchmark::Default.spec(), n, 11);
        for method in [Method::Ii, Method::Sa, Method::Cardfree] {
            grid.push(run_cell(&query, &model, method, schedule, tau));
        }
    }

    let report = ljqo_json::json!({
        "bench": "large_n",
        "description": "Optimizer grid N=100..1000 x {II, SA, CARDFREE}: throughput under the nlogn:256 budget schedule and certified cost/lower_bound quality, plus the primed multi-word filter kernel vs the replaced general path",
        "model": "memory",
        "workload": "Benchmark::Default (random graphs)",
        "schedule": schedule.to_string(),
        "tau": tau,
        "smoke": smoke,
        "move_filtering": filter,
        "grid": ljqo_json::Value::Array(grid),
    });

    let out = std::env::var("BENCH_LARGEN_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_largeN.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_largeN.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_largeN.json");
    println!("wrote {out}");
}
