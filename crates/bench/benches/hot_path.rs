//! Compiled hot-path microbenchmarks: the gains of the `CompiledQuery`
//! snapshot over the pointer-chasing slow paths it replaces.
//!
//! Measures, per query size N ∈ {20, 50, 100}:
//!
//! * **validity** — one full validity check of a valid order: the
//!   edge-chasing [`ValidityChecker`] scan vs the [`BitsetChecker`]'s
//!   neighbor-bitset walk over the compiled snapshot.
//! * **move filtering** — one `propose_counted` (sample + apply +
//!   validity-filter + undo): the legacy full-scan filter vs the compiled
//!   windowed filter, which revalidates only the move's touched window.
//! * **move evaluation** — apply a pre-sampled valid move, cost it, undo:
//!   a from-scratch `order_cost` walk vs the compiled incremental
//!   evaluator (`eval_move` + `rollback`).
//! * **end-to-end II** (largest N only) — a complete
//!   `IterativeImprovement::run` at a fixed unit budget: full evaluation,
//!   incremental evaluation with legacy move filtering, and the default
//!   compiled configuration.
//!
//! Writes the snapshot consumed by EXPERIMENTS.md to
//! `BENCH_compiled.json` at the workspace root (override the location
//! with `BENCH_COMPILED_OUT`; set `HOT_PATH_SMOKE=1` for a seconds-long
//! CI smoke run).

use std::io::Write as _;
use std::sync::Arc;

use ljqo_bench::timing::{bench_ns, black_box};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::IterativeImprovement;
use ljqo_catalog::CompiledQuery;
use ljqo_cost::estimate::SizeWalker;
use ljqo_cost::{CostModel, Estimator, Evaluator, IncrementalEvaluator, MemoryCostModel};
use ljqo_plan::validity::ValidityChecker;
use ljqo_plan::{random_valid_order, BitsetChecker, Move, MoveGenerator, MoveSet};
use ljqo_workload::{generate_query, Benchmark};

const MOVE_POOL: usize = 256;

fn json_num(x: f64) -> ljqo_json::Value {
    ljqo_json::Value::Number((x * 1000.0).round() / 1000.0)
}

fn main() {
    let smoke = std::env::var("HOT_PATH_SMOKE").is_ok();
    let (sizes, ii_budget): (Vec<usize>, u64) = if smoke {
        (vec![12], 2_000)
    } else {
        (vec![20, 50, 100], 40_000)
    };

    let model = MemoryCostModel::default();
    let mut validity_rows: Vec<ljqo_json::Value> = Vec::new();
    let mut filter_rows: Vec<ljqo_json::Value> = Vec::new();
    let mut eval_rows: Vec<ljqo_json::Value> = Vec::new();
    let mut e2e_rows: Vec<ljqo_json::Value> = Vec::new();

    for &n in &sizes {
        let query = generate_query(&Benchmark::Default.spec(), n, 3);
        let compiled = Arc::new(CompiledQuery::new(&query));
        let comp: Vec<_> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(21);
        let order = random_valid_order(query.graph(), &comp, &mut rng);

        // --- Validity: full check, scalar scan vs compiled bitsets -----
        let mut scalar = ValidityChecker::new(query.n_relations());
        let scalar_ns = bench_ns(&format!("validity/scalar/{n}"), || {
            black_box(scalar.is_valid(query.graph(), order.rels()))
        });
        let mut bitset = BitsetChecker::new(query.n_relations());
        let bitset_ns = bench_ns(&format!("validity/bitset/{n}"), || {
            black_box(bitset.is_valid(&compiled, order.rels()))
        });
        let validity_speedup = scalar_ns / bitset_ns;
        println!("validity/speedup/{n}{:>38.2}x", validity_speedup);
        validity_rows.push(ljqo_json::json!({
            "n": n,
            "scalar_ns_per_check": json_num(scalar_ns),
            "bitset_ns_per_check": json_num(bitset_ns),
            "speedup": json_num(validity_speedup),
        }));

        // --- Move filtering: full-scan vs windowed revalidation --------
        // The work `propose_counted` does per sampled move: apply it, test
        // the perturbed order, undo. Raw (unfiltered) moves from the II/SA
        // swap distribution, so the pool mixes valid and invalid
        // perturbations exactly like the proposal loop sees them. Both
        // arms filter the *same* pool against the *same* valid base order,
        // which is the windowed filter's precondition.
        let mut raw_rng = SmallRng::seed_from_u64(33);
        let raw_pool: Vec<Move> = (0..MOVE_POOL)
            .map(|_| {
                use rand::Rng as _;
                let i = raw_rng.gen_range(0..n);
                let mut j = raw_rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                Move::Swap {
                    i: i.min(j),
                    j: i.max(j),
                }
            })
            .collect();
        let mut legacy_checker = ValidityChecker::new(query.n_relations());
        let mut legacy_order = order.clone();
        let mut k = 0usize;
        let legacy_ns = bench_ns(&format!("filter/legacy/{n}"), || {
            let mv = raw_pool[k % MOVE_POOL];
            k += 1;
            mv.apply(&mut legacy_order);
            let ok = legacy_checker.is_valid(query.graph(), legacy_order.rels());
            mv.undo(&mut legacy_order);
            black_box(ok)
        });
        let mut window_checker = BitsetChecker::new(query.n_relations());
        let mut window_order = order.clone();
        let mut l = 0usize;
        let compiled_ns = bench_ns(&format!("filter/compiled/{n}"), || {
            let mv = raw_pool[l % MOVE_POOL];
            l += 1;
            mv.apply(&mut window_order);
            let ok = window_checker.window_valid(
                &compiled,
                window_order.rels(),
                mv.first_touched(),
                mv.last_touched(),
            );
            mv.undo(&mut window_order);
            black_box(ok)
        });
        let filter_speedup = legacy_ns / compiled_ns;
        println!("filter/speedup/{n}{:>40.2}x", filter_speedup);
        filter_rows.push(ljqo_json::json!({
            "n": n,
            "legacy_ns_per_move": json_num(legacy_ns),
            "windowed_ns_per_move": json_num(compiled_ns),
            "speedup": json_num(filter_speedup),
        }));

        // --- Move evaluation: full walk vs compiled incremental --------
        let mut pool_order = order.clone();
        let mut gen = MoveGenerator::new(query.n_relations(), MoveSet::default());
        let mut pool: Vec<Move> = Vec::with_capacity(MOVE_POOL);
        while pool.len() < MOVE_POOL {
            if let Some((mv, _)) = gen.propose_counted(query.graph(), &mut pool_order, &mut rng) {
                mv.undo(&mut pool_order);
                pool.push(mv);
            }
        }
        let mut walker = SizeWalker::new(query.n_relations());
        let mut i = 0usize;
        let mut full_order = order.clone();
        let full_ns = bench_ns(&format!("move_eval/full/{n}"), || {
            let mv = pool[i % MOVE_POOL];
            i += 1;
            mv.apply(&mut full_order);
            let c = model.order_cost_with(&query, full_order.rels(), &mut walker);
            mv.undo(&mut full_order);
            black_box(c)
        });
        let mut inc = IncrementalEvaluator::with_compiled(
            &query,
            &model,
            Estimator::Static,
            order.clone(),
            Arc::clone(&compiled),
        );
        let mut j = 0usize;
        let inc_ns = bench_ns(&format!("move_eval/compiled/{n}"), || {
            let mv = pool[j % MOVE_POOL];
            j += 1;
            let c = inc.eval_move(&mv);
            inc.rollback();
            black_box(c)
        });
        let eval_speedup = full_ns / inc_ns;
        println!("move_eval/speedup/{n}{:>37.2}x", eval_speedup);
        eval_rows.push(ljqo_json::json!({
            "n": n,
            "full_ns_per_move": json_num(full_ns),
            "compiled_ns_per_move": json_num(inc_ns),
            "speedup": json_num(eval_speedup),
        }));
    }

    // --- End-to-end II: same seeds and unit charges at every size, only
    // the hot-path configuration differs --------------------------------
    for &n in &sizes {
        let query = generate_query(&Benchmark::Default.spec(), n, 3);
        let comp: Vec<_> = query.rel_ids().collect();
        let configs: [(&str, bool, bool); 3] = [
            ("full", true, false),
            ("incremental", false, false),
            ("compiled", false, true),
        ];
        let mut e2e_ns = [0.0f64; 3];
        for (slot, &(label, full_eval, compiled_moves)) in configs.iter().enumerate() {
            let ii = IterativeImprovement {
                full_eval,
                compiled_moves,
                ..IterativeImprovement::default()
            };
            e2e_ns[slot] = bench_ns(&format!("ii_run/{label}/{n}"), || {
                let mut ev = Evaluator::with_budget(&query, &model, ii_budget);
                let mut run_rng = SmallRng::seed_from_u64(7);
                ii.run(&mut ev, &comp, &mut run_rng);
                black_box(ev.best_cost())
            });
        }
        println!("ii_run/speedup_vs_full/{n}{:>33.2}x", e2e_ns[0] / e2e_ns[2]);
        println!(
            "ii_run/speedup_vs_incremental/{n}{:>26.2}x",
            e2e_ns[1] / e2e_ns[2]
        );
        e2e_rows.push(ljqo_json::json!({
            "n": n,
            "budget_units": ii_budget,
            "full_ns_per_run": json_num(e2e_ns[0]),
            "incremental_ns_per_run": json_num(e2e_ns[1]),
            "compiled_ns_per_run": json_num(e2e_ns[2]),
            "speedup_vs_full": json_num(e2e_ns[0] / e2e_ns[2]),
            "speedup_vs_incremental": json_num(e2e_ns[1] / e2e_ns[2]),
        }));
    }

    let report = ljqo_json::json!({
        "bench": "hot_path",
        "description": "Compiled query snapshot vs the slow paths it replaces: validity checks, move filtering, move evaluation, end-to-end II",
        "model": "memory",
        "workload": "Benchmark::Default (random graphs), MoveSet::default()",
        "units": "ns (mean over the timing shim's batches)",
        "smoke": smoke,
        "validity": ljqo_json::Value::Array(validity_rows),
        "move_filtering": ljqo_json::Value::Array(filter_rows),
        "move_evaluation": ljqo_json::Value::Array(eval_rows),
        "end_to_end_ii": ljqo_json::Value::Array(e2e_rows),
    });

    let out = std::env::var("BENCH_COMPILED_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_compiled.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_compiled.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_compiled.json");
    println!("wrote {out}");
}
