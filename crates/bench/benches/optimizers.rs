//! Microbenchmarks of the optimizers at fixed small budgets, plus the
//! System-R dynamic-programming baseline — showing concretely why the
//! paper rules DP out beyond ~14 joins (its time doubles per relation)
//! while the randomized methods scale by the budget alone.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::dp::optimal_order_dp;
use ljqo::{IterativeImprovement, Method, MethodRunner, SimulatedAnnealing};
use ljqo_cost::{Evaluator, MemoryCostModel};
use ljqo_workload::{generate_query, Benchmark};

fn bench_descent(c: &mut Criterion) {
    let mut group = c.benchmark_group("ii_budgeted_run");
    group.sample_size(20);
    let model = MemoryCostModel::default();
    for &n in &[10usize, 50] {
        let query = generate_query(&Benchmark::Default.spec(), n, 31);
        let comp: Vec<_> = query.rel_ids().collect();
        let ii = IterativeImprovement::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ev = Evaluator::with_budget(&query, &model, 2_000);
                let mut rng = SmallRng::seed_from_u64(3);
                ii.run(&mut ev, &comp, &mut rng);
                black_box(ev.best_cost())
            })
        });
    }
    group.finish();
}

fn bench_sa_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_budgeted_run");
    group.sample_size(20);
    let model = MemoryCostModel::default();
    let query = generate_query(&Benchmark::Default.spec(), 50, 37);
    let comp: Vec<_> = query.rel_ids().collect();
    let sa = SimulatedAnnealing::default();
    group.bench_function("n50_2000units", |b| {
        b.iter(|| {
            let mut ev = Evaluator::with_budget(&query, &model, 2_000);
            let mut rng = SmallRng::seed_from_u64(5);
            sa.run(&mut ev, &comp, &mut rng);
            black_box(ev.best_cost())
        })
    });
    group.finish();
}

fn bench_methods_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("method_9n2_n20");
    group.sample_size(10);
    let model = MemoryCostModel::default();
    let query = generate_query(&Benchmark::Default.spec(), 20, 41);
    let comp: Vec<_> = query.rel_ids().collect();
    let runner = MethodRunner::default();
    for m in [Method::Iai, Method::Agi, Method::Ii, Method::Sa] {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                // 9N²·κ at N=20, κ=5.
                let mut ev = Evaluator::with_budget(&query, &model, 18_000);
                let mut rng = SmallRng::seed_from_u64(7);
                runner.run(m, &mut ev, &comp, &mut rng);
                black_box(ev.best_cost())
            })
        });
    }
    group.finish();
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_exact");
    group.sample_size(10);
    let model = MemoryCostModel::default();
    for &n in &[10usize, 14, 18] {
        let query = generate_query(&Benchmark::Default.spec(), n, 43);
        let comp: Vec<_> = query.rel_ids().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(optimal_order_dp(&query, &comp, &model)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_descent,
    bench_sa_chain,
    bench_methods_end_to_end,
    bench_dp
);
criterion_main!(benches);
