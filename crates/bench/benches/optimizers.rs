//! Microbenchmarks of the optimizers at fixed small budgets, plus the
//! System-R dynamic-programming baseline — showing concretely why the
//! paper rules DP out beyond ~14 joins (its time doubles per relation)
//! while the randomized methods scale by the budget alone.

use ljqo_bench::timing::bench;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::dp::optimal_order_dp;
use ljqo::{IterativeImprovement, Method, MethodRunner, SimulatedAnnealing};
use ljqo_cost::{Evaluator, MemoryCostModel};
use ljqo_workload::{generate_query, Benchmark};

fn bench_descent() {
    let model = MemoryCostModel::default();
    for &n in &[10usize, 50] {
        let query = generate_query(&Benchmark::Default.spec(), n, 31);
        let comp: Vec<_> = query.rel_ids().collect();
        let ii = IterativeImprovement::default();
        bench(&format!("ii_budgeted_run/{n}"), || {
            let mut ev = Evaluator::with_budget(&query, &model, 2_000);
            let mut rng = SmallRng::seed_from_u64(3);
            ii.run(&mut ev, &comp, &mut rng);
            ev.best_cost()
        });
    }
}

fn bench_sa_chain() {
    let model = MemoryCostModel::default();
    let query = generate_query(&Benchmark::Default.spec(), 50, 37);
    let comp: Vec<_> = query.rel_ids().collect();
    let sa = SimulatedAnnealing::default();
    bench("sa_budgeted_run/n50_2000units", || {
        let mut ev = Evaluator::with_budget(&query, &model, 2_000);
        let mut rng = SmallRng::seed_from_u64(5);
        sa.run(&mut ev, &comp, &mut rng);
        ev.best_cost()
    });
}

fn bench_methods_end_to_end() {
    let model = MemoryCostModel::default();
    let query = generate_query(&Benchmark::Default.spec(), 20, 41);
    let comp: Vec<_> = query.rel_ids().collect();
    let runner = MethodRunner::default();
    for m in [Method::Iai, Method::Agi, Method::Ii, Method::Sa] {
        bench(&format!("method_9n2_n20/{}", m.name()), || {
            // 9N²·κ at N=20, κ=5.
            let mut ev = Evaluator::with_budget(&query, &model, 18_000);
            let mut rng = SmallRng::seed_from_u64(7);
            runner.run(m, &mut ev, &comp, &mut rng);
            ev.best_cost()
        });
    }
}

fn bench_dp() {
    let model = MemoryCostModel::default();
    for &n in &[10usize, 14, 18] {
        let query = generate_query(&Benchmark::Default.spec(), n, 43);
        let comp: Vec<_> = query.rel_ids().collect();
        bench(&format!("dp_exact/{n}"), || {
            optimal_order_dp(&query, &comp, &model)
        });
    }
}

fn main() {
    bench_descent();
    bench_sa_chain();
    bench_methods_end_to_end();
    bench_dp();
}
