//! Learned portfolio routing: cost at equal budget and budget-to-match
//! versus the uniform portfolio.
//!
//! The harness mimics a serving deployment's life cycle. For each of
//! ten workload classes (JOB shapes plus Table 3 benchmark variations,
//! at fixed query sizes) it trains a fresh [`BanditRouter`] *online
//! through the routed driver itself* on a stream of 20 training
//! queries — 200 across the grid — then measures on held-out queries
//! of the same class:
//!
//! * **cost at equal budget** — mean plan cost of the routed portfolio
//!   vs the uniform portfolio at the same total budget (τ = 5); and
//! * **budget to match** — the smallest swept τ at which the routed
//!   portfolio's mean cost already beats or ties the uniform
//!   portfolio's full-budget mean, as a fraction of the full budget.
//!
//! Two contracts are asserted in-run, so a regression fails the bench
//! rather than silently shipping a worse report: the routed mean is
//! **never worse** than the uniform mean on any learned class, and it
//! is **strictly better on at least half** of them. The workload is
//! seeded and deterministic, so these hold reproducibly; classes whose
//! winner is a budget-insensitive heuristic tie bit-for-bit (both
//! portfolios converge to the same plan), which is exactly the
//! never-worse contract's tie case.
//!
//! Writes `BENCH_routing.json` at the workspace root (override with
//! `BENCH_ROUTING_OUT`; set `ROUTING_SMOKE=1` for a seconds-long
//! CI-sized run over a three-class subset of the same cells).

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use ljqo::cache::{classify, BanditRouter, RouterConfig};
use ljqo::parallel::PORTFOLIO;
use ljqo::prelude::*;
use ljqo_workload::{generate_job_query, generate_query, Benchmark, JobShape, JobSpec};

/// Full budget (τ) at which both portfolios are compared.
const FULL_TAU: f64 = 5.0;
/// Budgets swept (low to high) to find the routed budget-to-match.
const TAU_SWEEP: [f64; 5] = [1.0, 2.0, 3.0, 4.0, FULL_TAU];
/// Training queries per class (the learning phase).
const TRAIN_PER_CLASS: u64 = 20;
/// Held-out evaluation queries per class.
const EVALS: u64 = 3;

/// One workload class: a seeded generator family at a fixed size.
#[derive(Clone, Copy)]
enum ClassSpec {
    /// JOB-shaped query (`generate_job_query`).
    Job(JobShape, usize),
    /// Paper Table 3 benchmark distribution (`generate_query`).
    Paper(Benchmark, usize),
}

impl ClassSpec {
    fn name(self) -> String {
        match self {
            ClassSpec::Job(shape, n) => format!("job-{}/{n}j", shape.name()),
            ClassSpec::Paper(bench, n) => format!("{}/{n}j", bench.name()),
        }
    }

    /// Deterministic per-class seed base; `generate` derives training
    /// and evaluation seeds from it so the two pools never overlap.
    fn cell(self) -> u64 {
        match self {
            ClassSpec::Job(shape, n) => 0x0b5e_000b ^ ((n as u64) << 32) ^ ((shape as u64) << 16),
            ClassSpec::Paper(bench, n) => {
                0x0b5e_000d ^ ((n as u64) << 32) ^ ((bench.number() as u64) << 16)
            }
        }
    }

    fn generate(self, seed: u64) -> Query {
        match self {
            ClassSpec::Job(shape, n) => generate_job_query(&JobSpec::new(shape), n, seed),
            ClassSpec::Paper(bench, n) => generate_query(&bench.spec(), n, seed),
        }
    }
}

fn json_num(x: f64) -> ljqo_json::Value {
    if x.is_finite() {
        ljqo_json::Value::Number((x * 10_000.0).round() / 10_000.0)
    } else {
        ljqo_json::Value::Number(f64::MAX)
    }
}

fn config(seed: u64, tau: f64) -> OptimizerConfig {
    OptimizerConfig::new(Method::Ii)
        .with_seed(seed)
        .with_time_limit(tau)
}

fn main() {
    let smoke = std::env::var("ROUTING_SMOKE").is_ok();
    // Ten classes mixing the JOB shapes with Table 3 variations whose
    // statistics make the portfolio arms genuinely disagree. Smoke runs
    // a three-class subset of the same cells (same seeds, same
    // protocol), so it checks the identical contract, faster.
    let classes: Vec<ClassSpec> = if smoke {
        vec![
            ClassSpec::Job(JobShape::Cyclic, 16),
            ClassSpec::Job(JobShape::Cyclic, 22),
            ClassSpec::Job(JobShape::Star, 14),
        ]
    } else {
        vec![
            ClassSpec::Job(JobShape::Star, 14),
            ClassSpec::Job(JobShape::Snowflake, 14),
            ClassSpec::Job(JobShape::Cyclic, 16),
            ClassSpec::Job(JobShape::Cyclic, 22),
            ClassSpec::Paper(Benchmark::Default, 20),
            ClassSpec::Paper(Benchmark::CardWideRange, 20),
            ClassSpec::Paper(Benchmark::CardUniformWide, 30),
            ClassSpec::Paper(Benchmark::DistinctMore, 30),
            ClassSpec::Paper(Benchmark::DistinctBoth, 30),
            ClassSpec::Paper(Benchmark::GraphChain, 30),
        ]
    };
    let model = MemoryCostModel::default();
    let arms: Vec<&str> = PORTFOLIO.iter().map(|m| m.name()).collect();
    let started = Instant::now();

    let mut rows: Vec<ljqo_json::Value> = Vec::new();
    let mut strictly_better = 0usize;
    for &spec in &classes {
        let cell = spec.cell();

        // --- Learn: train a fresh router through the routed driver ---
        let router = Arc::new(BanditRouter::new(&arms, RouterConfig::default()));
        let routed_par = Parallelism::portfolio(PORTFOLIO.len()).with_router(Arc::clone(&router));
        for t in 0..TRAIN_PER_CLASS {
            let q = spec.generate(cell ^ (0xa000 + t));
            try_optimize_parallel(&q, &model, &config(t, FULL_TAU), &routed_par)
                .expect("training solve");
        }
        let class_label = classify(&spec.generate(cell)).label();
        let shares = router.shares(&classify(&spec.generate(cell)));

        // --- Measure on held-out queries of the same class ----------
        let mut uniform_costs = Vec::new();
        let mut routed_at: Vec<Vec<f64>> = vec![Vec::new(); TAU_SWEEP.len()];
        for e in 0..EVALS {
            let q = spec.generate(cell ^ (0xe000 + e));
            let uniform = try_optimize_parallel(
                &q,
                &model,
                &config(e, FULL_TAU),
                &Parallelism::portfolio(PORTFOLIO.len()),
            )
            .expect("uniform solve");
            uniform_costs.push(uniform.cost);
            for (i, &tau) in TAU_SWEEP.iter().enumerate() {
                let routed = try_optimize_parallel(&q, &model, &config(e, tau), &routed_par)
                    .expect("routed solve");
                routed_at[i].push(routed.cost);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let uniform_mean = mean(&uniform_costs);
        let routed_mean = mean(routed_at.last().unwrap());
        // Budget-to-match: smallest swept τ whose routed mean already
        // ties or beats the uniform mean at full budget.
        let tau_match = TAU_SWEEP
            .iter()
            .enumerate()
            .find(|(i, _)| mean(&routed_at[*i]) <= uniform_mean)
            .map(|(_, &tau)| tau)
            .unwrap_or(f64::INFINITY);

        // Contract 1: never worse at equal budget, on every class.
        assert!(
            routed_mean <= uniform_mean,
            "{}: routed mean {routed_mean} > uniform mean {uniform_mean}",
            spec.name()
        );
        let better = routed_mean < uniform_mean * (1.0 - 1e-6);
        if better {
            strictly_better += 1;
        }
        println!(
            "{} [{class_label}]: uniform {uniform_mean:.3e}, routed {routed_mean:.3e} ({}), \
             budget-to-match {:.2}x",
            spec.name(),
            if better { "better" } else { "tied" },
            tau_match / FULL_TAU
        );
        rows.push(ljqo_json::json!({
            "class": spec.name(),
            "router_class": class_label.clone(),
            "train_queries": TRAIN_PER_CLASS,
            "evals": EVALS,
            "shares": ljqo_json::Value::Array(shares.iter().map(|&s| json_num(s)).collect()),
            "uniform_mean_cost": json_num(uniform_mean),
            "routed_mean_cost": json_num(routed_mean),
            "improvement": json_num(1.0 - routed_mean / uniform_mean),
            "budget_to_match_ratio": json_num(tau_match / FULL_TAU),
            "strictly_better": better,
        }));
    }

    // Contract 2: learning must pay off on at least half the classes.
    assert!(
        2 * strictly_better >= classes.len(),
        "routing strictly better on only {strictly_better}/{} classes",
        classes.len()
    );

    let report = ljqo_json::json!({
        "bench": "routing",
        "description": "Learned portfolio routing vs the uniform portfolio: cost at equal budget and budget-to-match, per workload class",
        "model": "memory",
        "workload": "JOB-shaped generators plus paper Table 3 variations",
        "arms": ljqo_json::Value::Array(arms.iter().map(|&a| ljqo_json::Value::from(a)).collect()),
        "full_tau": json_num(FULL_TAU),
        "tau_sweep": ljqo_json::Value::Array(TAU_SWEEP.iter().map(|&t| json_num(t)).collect()),
        "train_per_class": TRAIN_PER_CLASS,
        "smoke": smoke,
        "wall_s": json_num(started.elapsed().as_secs_f64()),
        "classes_total": classes.len() as u64,
        "classes_strictly_better": strictly_better as u64,
        "never_worse": true,
        "class_grid": ljqo_json::Value::Array(rows),
    });

    let out = std::env::var("BENCH_ROUTING_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_routing.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_routing.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_routing.json");
    println!("wrote {out}");
}
