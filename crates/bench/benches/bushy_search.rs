//! Bushy local search vs the paper's linear restriction — quality at
//! equal budget.
//!
//! For every cell of {shape × query size × budget τ × tree method}, the
//! harness solves the same query twice at the same unit budget
//! `τ·N²·κ`: once with the linear driver (the matching paper method)
//! and once with the bushy-tree local search ([`try_optimize_bushy`],
//! tree moves + path-to-root incremental re-costing). Shapes cover the
//! JOB-shaped star / snowflake / cyclic generators, the paper's
//! chain-biased benchmark, and the hub-and-chains family built so that
//! the bushy optimum strictly beats *any* linear order.
//!
//! In-run assertions pin the quality claims, at the largest budget of
//! the sweep, on every exactly-solvable instance (N ≤ 14 relations):
//!
//! * on hub-and-chains shapes the bushy DP optimum is strictly below
//!   the linear DP optimum, **and** the bushy search lands strictly
//!   below the linear optimum too — no linear plan, however found, can
//!   match it;
//! * on every shape, BUSHYII's optimality gap against the exact bushy
//!   DP ([`bushy_gap_vs_dp`]) is at most [`MAX_GAP_AT_FULL_BUDGET`];
//! * budget parity holds: the bushy solve consumes no more units than
//!   the linear solve's ceiling for the same τ.
//!
//! Writes `BENCH_bushy.json` at the workspace root (override with
//! `BENCH_BUSHY_OUT`; set `BUSHY_SEARCH_SMOKE=1` for a seconds-long
//! CI-sized run).

use std::io::Write as _;
use std::time::Instant;

use ljqo::prelude::*;
use ljqo_workload::{
    generate_hub_chains_query, generate_job_query, generate_query, Benchmark, JobShape, JobSpec,
};

/// Asserted ceiling on BUSHYII's optimality gap vs the exact bushy DP
/// at the largest budget of the sweep (N ≤ 14 relations only, where the
/// DP is feasible). `0.0` would demand the certified optimum on every
/// seed; the II descent with random restarts is not that strong on
/// every star instance, but it must stay within a small constant.
const MAX_GAP_AT_FULL_BUDGET: f64 = 0.5;

/// The benchmark shapes: three JOB-shaped generators, the paper's
/// chain-biased variation, and the hub-and-chains family.
#[derive(Clone, Copy)]
enum Shape {
    Job(JobShape),
    Chain,
    HubChains,
}

impl Shape {
    const ALL: [Shape; 5] = [
        Shape::Job(JobShape::Star),
        Shape::Job(JobShape::Snowflake),
        Shape::Job(JobShape::Cyclic),
        Shape::Chain,
        Shape::HubChains,
    ];

    fn name(self) -> &'static str {
        match self {
            Shape::Job(s) => s.name(),
            Shape::Chain => "chain",
            Shape::HubChains => "hub_chains",
        }
    }

    fn generate(self, n_joins: usize, seed: u64) -> Query {
        match self {
            Shape::Job(s) => generate_job_query(&JobSpec::new(s), n_joins, seed),
            Shape::Chain => generate_query(&Benchmark::GraphChain.spec(), n_joins, seed),
            Shape::HubChains => generate_hub_chains_query(n_joins, seed),
        }
    }
}

fn json_num(x: f64) -> ljqo_json::Value {
    if x.is_finite() {
        ljqo_json::Value::Number((x * 10_000.0).round() / 10_000.0)
    } else {
        ljqo_json::Value::Number(f64::MAX)
    }
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let smoke = std::env::var("BUSHY_SEARCH_SMOKE").is_ok();
    let (sizes, taus, seeds): (&[usize], &[f64], u64) = if smoke {
        (&[7, 13], &[9.0], 2)
    } else {
        (&[7, 13, 30, 50], &[1.0, 3.0, 9.0], 3)
    };
    let full_tau = taus.last().copied().unwrap();
    let model = MemoryCostModel::default();
    let started = Instant::now();

    let mut rows: Vec<ljqo_json::Value> = Vec::new();
    let mut hub_assertions = 0u64;
    let mut gap_assertions = 0u64;
    for shape in Shape::ALL {
        for &n_joins in sizes {
            for &tau in taus {
                for (tree_method, linear_method) in
                    [(Method::BushyIi, Method::Ii), (Method::BushySa, Method::Sa)]
                {
                    let mut ratios = Vec::new();
                    let mut gaps = Vec::new();
                    let mut bushy_wins = 0u64;
                    let mut genuinely_bushy = 0u64;
                    for seed in 0..seeds {
                        let query =
                            shape.generate(n_joins, 0xb0_5c0 ^ ((n_joins as u64) << 24) ^ seed);
                        let n = query.n_relations();
                        let linear = try_optimize(
                            &query,
                            &model,
                            &OptimizerConfig::new(linear_method)
                                .with_time_limit(tau)
                                .with_seed(seed),
                        )
                        .expect("linear driver plans every instance");
                        let bushy = try_optimize_bushy(
                            &query,
                            &model,
                            &OptimizerConfig::new(tree_method)
                                .with_time_limit(tau)
                                .with_seed(seed),
                        )
                        .expect("bushy driver plans every instance");
                        // Budget parity: both solves draw from the same
                        // τ·N²·κ pool (small per-restart slack aside).
                        let ceiling = (tau * 5.0 * (n * n) as f64) as u64 + 64 + 4 * n as u64;
                        assert!(
                            bushy.units_used <= ceiling,
                            "bushy overspent: {} > {ceiling} ({}/{n_joins}j/τ{tau}/{seed})",
                            bushy.units_used,
                            shape.name()
                        );
                        if bushy.cost < linear.cost * (1.0 - 1e-12) {
                            bushy_wins += 1;
                        }
                        if bushy.is_bushy() {
                            genuinely_bushy += 1;
                        }
                        ratios.push(linear.cost / bushy.cost);

                        // Exactly solvable instances: compare against the
                        // certified optima.
                        if n <= 14 && tau == full_tau {
                            let comp: Vec<RelId> = query.rel_ids().collect();
                            let gap = bushy_gap_vs_dp(&query, &model, &comp, bushy.cost)
                                .expect("small connected components fit the bushy DP")
                                .expect("benchmarks have at least two relations");
                            if tree_method == Method::BushyIi {
                                assert!(
                                    gap <= MAX_GAP_AT_FULL_BUDGET,
                                    "BUSHYII gap {gap:.4} above {MAX_GAP_AT_FULL_BUDGET} \
                                     ({}/{n_joins}j/τ{tau}/{seed})",
                                    shape.name()
                                );
                                gap_assertions += 1;
                            }
                            gaps.push(gap);

                            if matches!(shape, Shape::HubChains) {
                                let (_, linear_opt) =
                                    optimal_order_dp(&query, &comp, &model).unwrap();
                                let (tree, bushy_opt) = optimal_bushy_dp(&query, &comp, &model)
                                    .expect("hub-chains queries fit the bushy DP")
                                    .expect("hub-chains queries are not singletons");
                                // The shape exists to make this pair of
                                // strict inequalities true: no linear
                                // order can match the bushy optimum, and
                                // the search actually cashes that in.
                                assert!(
                                    !tree.is_linear() && bushy_opt < linear_opt,
                                    "hub-chains linear opt {linear_opt:e} does not dominate \
                                     bushy opt {bushy_opt:e} ({n_joins}j/{seed})"
                                );
                                assert!(
                                    bushy.cost < linear_opt,
                                    "bushy search {:e} lost to the linear optimum {linear_opt:e} \
                                     ({n_joins}j/τ{tau}/{seed})",
                                    bushy.cost
                                );
                                hub_assertions += 1;
                            }
                        }
                    }
                    println!(
                        "{}/{n_joins}j/τ{tau}/{}: linear-vs-bushy cost ratio {:.4}, \
                         bushy wins {bushy_wins}/{seeds}, genuinely bushy {genuinely_bushy}/{seeds}",
                        shape.name(),
                        tree_method.name(),
                        mean(&ratios)
                    );
                    rows.push(ljqo_json::json!({
                        "shape": shape.name(),
                        "n_joins": n_joins as u64,
                        "tau": tau,
                        "method": tree_method.name(),
                        "linear_method": linear_method.name(),
                        "mean_cost_ratio_linear_over_bushy": json_num(mean(&ratios)),
                        "bushy_wins": bushy_wins,
                        "genuinely_bushy": genuinely_bushy,
                        "mean_gap_vs_bushy_dp": if gaps.is_empty() {
                            ljqo_json::Value::Null
                        } else {
                            json_num(mean(&gaps))
                        },
                        "max_gap_vs_bushy_dp": if gaps.is_empty() {
                            ljqo_json::Value::Null
                        } else {
                            json_num(gaps.iter().cloned().fold(0.0f64, f64::max))
                        },
                        "seeds": seeds,
                    }));
                }
            }
        }
    }
    assert!(
        hub_assertions > 0 && gap_assertions > 0,
        "the quality assertions must actually fire (hub {hub_assertions}, gap {gap_assertions})"
    );

    let report = ljqo_json::json!({
        "bench": "bushy_search",
        "description": "Bushy-tree local search vs the linear drivers at equal unit budget, with DP-certified quality on small instances",
        "model": "memory",
        "workload": "JOB star/snowflake/cyclic, chain-biased paper benchmark, hub-and-chains",
        "max_gap_at_full_budget": MAX_GAP_AT_FULL_BUDGET,
        "hub_assertions": hub_assertions,
        "gap_assertions": gap_assertions,
        "smoke": smoke,
        "wall_s": json_num(started.elapsed().as_secs_f64()),
        "grid": ljqo_json::Value::Array(rows),
    });

    let out = std::env::var("BENCH_BUSHY_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_bushy.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_bushy.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_bushy.json");
    println!("wrote {out}");
}
