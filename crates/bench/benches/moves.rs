//! Microbenchmarks of move generation and validity checking, across the
//! graph shapes the paper's benchmark variations produce (random, star,
//! chain) — star graphs reject most proposals, chains reject many, so the
//! per-valid-move cost differs sharply by shape.

use ljqo_bench::timing::{bench, black_box};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_plan::validity::{is_valid, ValidityChecker};
use ljqo_plan::{random_valid_order, JoinOrder, MoveGenerator, MoveSet};
use ljqo_workload::{generate_query, Benchmark};

fn bench_validity() {
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 3);
        let order = JoinOrder::identity(&query);
        bench(&format!("validity/is_valid/{n}"), || {
            is_valid(query.graph(), black_box(order.rels()))
        });
        let mut checker = ValidityChecker::new(query.n_relations());
        bench(&format!("validity/checker/{n}"), || {
            checker.is_valid(query.graph(), black_box(order.rels()))
        });
    }
}

fn bench_propose() {
    for benchmark in [
        Benchmark::Default,
        Benchmark::GraphStar,
        Benchmark::GraphChain,
    ] {
        let query = generate_query(&benchmark.spec(), 50, 11);
        let comp: Vec<_> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut order = random_valid_order(query.graph(), &comp, &mut rng);
        let mut gen = MoveGenerator::new(query.n_relations(), MoveSet::default());
        bench(
            &format!("propose_valid_move/n50/{}", benchmark.name()),
            || {
                if let Some((mv, attempts)) =
                    gen.propose_counted(query.graph(), &mut order, &mut rng)
                {
                    mv.undo(&mut order);
                    black_box(attempts);
                }
            },
        );
    }
}

fn bench_random_state() {
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 17);
        let comp: Vec<_> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(1);
        bench(&format!("random_valid_order/{n}"), || {
            random_valid_order(query.graph(), &comp, &mut rng)
        });
    }
}

fn main() {
    bench_validity();
    bench_propose();
    bench_random_state();
}
