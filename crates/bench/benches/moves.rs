//! Microbenchmarks of move generation and validity checking, across the
//! graph shapes the paper's benchmark variations produce (random, star,
//! chain) — star graphs reject most proposals, chains reject many, so the
//! per-valid-move cost differs sharply by shape.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_plan::validity::{is_valid, ValidityChecker};
use ljqo_plan::{random_valid_order, JoinOrder, MoveGenerator, MoveSet};
use ljqo_workload::{generate_query, Benchmark};

fn bench_validity(c: &mut Criterion) {
    let mut group = c.benchmark_group("validity");
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 3);
        let order = JoinOrder::identity(&query);
        group.bench_with_input(BenchmarkId::new("is_valid", n), &n, |b, _| {
            b.iter(|| black_box(is_valid(query.graph(), black_box(order.rels()))))
        });
        let mut checker = ValidityChecker::new(query.n_relations());
        group.bench_with_input(BenchmarkId::new("checker", n), &n, |b, _| {
            b.iter(|| black_box(checker.is_valid(query.graph(), black_box(order.rels()))))
        });
    }
    group.finish();
}

fn bench_propose(c: &mut Criterion) {
    let mut group = c.benchmark_group("propose_valid_move");
    for bench in [
        Benchmark::Default,
        Benchmark::GraphStar,
        Benchmark::GraphChain,
    ] {
        let query = generate_query(&bench.spec(), 50, 11);
        let comp: Vec<_> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut order = random_valid_order(query.graph(), &comp, &mut rng);
        let mut gen = MoveGenerator::new(query.n_relations(), MoveSet::default());
        group.bench_function(BenchmarkId::new("n50", bench.name()), |b| {
            b.iter(|| {
                if let Some((mv, attempts)) =
                    gen.propose_counted(query.graph(), &mut order, &mut rng)
                {
                    mv.undo(&mut order);
                    black_box(attempts);
                }
            })
        });
    }
    group.finish();
}

fn bench_random_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_valid_order");
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 17);
        let comp: Vec<_> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(random_valid_order(query.graph(), &comp, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validity, bench_propose, bench_random_state);
criterion_main!(benches);
