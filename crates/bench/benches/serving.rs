//! End-to-end serving latency and throughput through `ljqo-server`.
//!
//! For every cell of a {shape} x {workers} grid, an in-process server
//! is started on an ephemeral port and driven by `ljqo-loadgen`'s
//! closed-loop client twice:
//!
//! * **cold** — every request is structurally unique (`classes = 0`),
//!   so each one pays a full optimizer solve. This is the price of an
//!   empty (or defeated) plan cache.
//! * **warm** — requests rotate through a small pool of query classes
//!   after a cache-populating warmup, so the measurement window is
//!   served almost entirely from the shared [`PlanCache`].
//!
//! The report records client-observed p50/p95/p99 and throughput per
//! cell, and asserts the acceptance bar: the warm p50 must beat the
//! cold p50 in every cell (the serving layer's whole reason to exist).
//!
//! Writes `BENCH_serving.json` at the workspace root (override with
//! `BENCH_SERVING_OUT`; set `SERVING_SMOKE=1` for a seconds-long
//! CI-sized run).

use std::io::Write as _;
use std::time::Duration;

use ljqo_json::Value;
use ljqo_loadgen::{run_load, LoadReport, LoadSpec};
use ljqo_server::{Server, ServerConfig};
use ljqo_workload::JobShape;

fn json_num(x: f64) -> Value {
    Value::Number((x * 1000.0).round() / 1000.0)
}

/// Build a JSON object from computed values (the `json!` macro only
/// takes literals).
fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn report_json(r: &LoadReport) -> Value {
    obj(vec![
        ("completed", Value::from(r.completed)),
        ("throughput_qps", json_num(r.throughput)),
        ("latency_us_p50", Value::from(r.latency.p50_us)),
        ("latency_us_p95", Value::from(r.latency.p95_us)),
        ("latency_us_p99", Value::from(r.latency.p99_us)),
        ("latency_us_mean", json_num(r.latency.mean_us)),
        (
            "outcomes",
            Value::Object(
                r.outcomes
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let smoke = std::env::var("SERVING_SMOKE").is_ok();
    let (n_joins, connections, classes, cold_s, warmup_s, warm_s, worker_grid): (
        usize,
        usize,
        usize,
        f64,
        f64,
        f64,
        Vec<usize>,
    ) = if smoke {
        (8, 2, 8, 0.5, 0.4, 0.5, vec![1, 2])
    } else {
        (12, 4, 16, 1.5, 1.0, 1.5, vec![1, 2, 4])
    };
    let shapes = [JobShape::Star, JobShape::Snowflake, JobShape::Cyclic];

    let mut cells = Vec::new();
    for shape in shapes {
        for &workers in &worker_grid {
            let server = Server::bind(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                ..ServerConfig::default()
            })
            .expect("bind ephemeral serving port");
            let addr = server.local_addr().expect("bound address").to_string();
            let handle = server.handle();
            let running = std::thread::spawn(move || server.run());

            // Cold: unique query per request, no warmup, cache defeated.
            let cold = run_load(&LoadSpec {
                addr: addr.clone(),
                connections,
                duration: Duration::from_secs_f64(cold_s),
                warmup: Duration::ZERO,
                classes: 0,
                shape,
                n_joins,
                seed: 0xC01D,
                ..LoadSpec::default()
            })
            .expect("cold load run");
            assert!(cold.completed > 0, "cold run must complete requests");
            assert_eq!(cold.io_errors, 0, "cold run must not lose connections");

            // Warm: a small class pool, warmed up, then measured.
            let warm = run_load(&LoadSpec {
                addr: addr.clone(),
                connections,
                duration: Duration::from_secs_f64(warm_s),
                warmup: Duration::from_secs_f64(warmup_s),
                classes,
                shape,
                n_joins,
                seed: 0x3A97,
                ..LoadSpec::default()
            })
            .expect("warm load run");
            assert!(warm.completed > 0, "warm run must complete requests");
            assert_eq!(warm.io_errors, 0, "warm run must not lose connections");
            assert!(
                warm.latency.p50_us < cold.latency.p50_us,
                "acceptance: warm p50 ({} us) must beat cold p50 ({} us) \
                 for shape={} workers={workers}",
                warm.latency.p50_us,
                cold.latency.p50_us,
                shape.name(),
            );

            handle.shutdown();
            let final_stats = running.join().expect("server drains cleanly");
            let cold_solves = final_stats
                .get("serving")
                .and_then(|s| s.get("cold_solves"))
                .and_then(Value::as_u64)
                .unwrap_or(0);

            println!(
                "{}/w{}: cold p50 {} us ({:.0} qps) | warm p50 {} us ({:.0} qps) | {:.0}x",
                shape.name(),
                workers,
                cold.latency.p50_us,
                cold.throughput,
                warm.latency.p50_us,
                warm.throughput,
                cold.latency.p50_us as f64 / warm.latency.p50_us.max(1) as f64,
            );
            cells.push(obj(vec![
                ("shape", Value::from(shape.name())),
                ("workers", Value::from(workers as u64)),
                (
                    "p50_speedup",
                    json_num(cold.latency.p50_us as f64 / warm.latency.p50_us.max(1) as f64),
                ),
                ("server_cold_solves", Value::from(cold_solves)),
                ("cold", report_json(&cold)),
                ("warm", report_json(&warm)),
            ]));
        }
    }

    let report = obj(vec![
        ("bench", Value::from("serving")),
        (
            "description",
            Value::from(
                "End-to-end ljqo-server latency/throughput: cold (unique queries) vs \
                 warm (class pool through the shared plan cache), per shape and worker count",
            ),
        ),
        ("smoke", Value::Bool(smoke)),
        (
            "spec",
            obj(vec![
                ("n_joins", Value::from(n_joins as u64)),
                ("connections", Value::from(connections as u64)),
                ("warm_classes", Value::from(classes as u64)),
                ("cold_duration_s", json_num(cold_s)),
                ("warm_duration_s", json_num(warm_s)),
                ("warmup_s", json_num(warmup_s)),
                ("pacing", Value::from("closed-loop")),
            ]),
        ),
        ("cells", Value::Array(cells)),
    ]);

    let out = std::env::var("BENCH_SERVING_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serving.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_serving.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_serving.json");
    println!("wrote {out}");
}
