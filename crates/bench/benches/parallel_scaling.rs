//! Parallel search scaling: isolated fan-out, cooperative wind-down, and
//! batch throughput on an N = 50 workload.
//!
//! Three experiments, per worker count w ∈ {1, 2, 4, 8}:
//!
//! * **isolated scaling** — `run_parallel` at a fixed *total* budget.
//!   Sharding keeps total work constant, so wall-clock gains here come
//!   purely from hardware threads; the snapshot records
//!   `hardware_threads` so a single-core run (flat wall times) is
//!   distinguishable from a multicore one (≈ w× speedup).
//! * **cooperative wind-down** — the same run with a reachable stop
//!   threshold, [`Cooperation::Isolated`] vs [`Cooperation::SharedBest`].
//!   In isolated mode each worker must reach the bar (or its budget) on
//!   its own; in cooperative mode the first worker there winds everyone
//!   down. The saved units are a wall-clock win on *any* core count —
//!   this is the end-to-end speedup the snapshot's `speedup` column
//!   reports at 4 and 8 workers.
//! * **batch throughput** — [`optimize_batch`] over many smaller queries
//!   at 1 vs 4 pool threads.
//!
//! The run also asserts the quality-monotonicity contract on the grid:
//! at equal total budget, `SharedBest` never returns a worse cost than
//! `Isolated`.
//!
//! Writes `BENCH_parallel.json` at the workspace root (override with
//! `BENCH_PARALLEL_OUT`; set `PARALLEL_SCALING_SMOKE=1` for a
//! seconds-long CI-sized run).

use std::io::Write as _;
use std::time::Instant;

use ljqo_bench::timing::{bench_ns, black_box};

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn json_num(x: f64) -> ljqo_json::Value {
    ljqo_json::Value::Number((x * 1000.0).round() / 1000.0)
}

fn main() {
    let smoke = std::env::var("PARALLEL_SCALING_SMOKE").is_ok();
    let (n, budget, batch_n, batch_size) = if smoke {
        (12usize, 4_000u64, 8usize, 8usize)
    } else {
        (50usize, 60_000u64, 20usize, 32usize)
    };

    let hardware_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let model = MemoryCostModel::default();
    let runner = MethodRunner::default();
    let query = generate_query(&Benchmark::Default.spec(), n, 3);
    let comp: Vec<RelId> = query.rel_ids().collect();

    // --- Isolated scaling at a fixed total budget -----------------------
    let mut scaling_rows: Vec<ljqo_json::Value> = Vec::new();
    for &w in &WORKER_GRID {
        let mut cost = f64::NAN;
        let mut units = 0u64;
        let ns = bench_ns(&format!("isolated/N{n}/workers{w}"), || {
            let r = run_parallel(&query, &model, &runner, Method::Ii, &comp, budget, w, 9)
                .expect("budgeted run yields a state");
            cost = r.cost;
            units = r.units_used;
            black_box(r.cost)
        });
        scaling_rows.push(ljqo_json::json!({
            "workers": w as u64,
            "wall_ms": json_num(ns / 1e6),
            "cost": cost,
            "units_used": units,
        }));
    }

    // --- Quality grid: SharedBest is never worse at equal budget --------
    let mut quality_rows: Vec<ljqo_json::Value> = Vec::new();
    for &w in &WORKER_GRID {
        let base = ParallelOptions::new(budget, w, 9);
        let iso = run_portfolio(&query, &model, &runner, &[Method::Ii], &comp, &base).unwrap();
        let coop = run_portfolio(
            &query,
            &model,
            &runner,
            &[Method::Ii],
            &comp,
            &base.with_cooperation(Cooperation::SharedBest),
        )
        .unwrap();
        assert!(
            coop.cost <= iso.cost,
            "SharedBest must never be worse at equal budget: {} vs {} at {w} workers",
            coop.cost,
            iso.cost
        );
        quality_rows.push(ljqo_json::json!({
            "workers": w as u64,
            "isolated_cost": iso.cost,
            "shared_best_cost": coop.cost,
        }));
    }

    // --- Cooperative wind-down: the end-to-end wall-clock win -----------
    // Threshold from a cheap pilot: what a single II worker reaches with
    // 5% of the budget, with 10% slack. The full-budget searches reach it
    // comfortably, but from an unlucky random start only after a while —
    // exactly the case where the first finisher's publish saves the rest.
    let pilot = run_parallel(
        &query,
        &model,
        &runner,
        Method::Ii,
        &comp,
        (budget / 20).max(200),
        1,
        7,
    )
    .unwrap();
    let threshold = pilot.cost * 1.1;
    let mut winddown_rows: Vec<ljqo_json::Value> = Vec::new();
    for &w in &WORKER_GRID {
        let base = ParallelOptions::new(budget, w, 9).with_stop_threshold(threshold);
        let mut measured = Vec::new();
        for coop in [Cooperation::Isolated, Cooperation::SharedBest] {
            let opts = base.with_cooperation(coop);
            let mut cost = f64::NAN;
            let mut units = 0u64;
            let started = Instant::now();
            let reps = if smoke { 3 } else { 10 };
            for _ in 0..reps {
                let r =
                    run_portfolio(&query, &model, &runner, &[Method::Ii], &comp, &opts).unwrap();
                cost = r.cost;
                units = r.units_used;
                black_box(r.cost);
            }
            let wall_ms = started.elapsed().as_secs_f64() * 1e3 / reps as f64;
            println!("winddown/N{n}/workers{w}/{coop:?}: {wall_ms:.3} ms, {units} units");
            measured.push((wall_ms, cost, units));
        }
        let (iso, coop) = (&measured[0], &measured[1]);
        let speedup = iso.0 / coop.0;
        println!("winddown/N{n}/workers{w}/speedup: {speedup:.2}x");
        winddown_rows.push(ljqo_json::json!({
            "workers": w as u64,
            "isolated_wall_ms": json_num(iso.0),
            "cooperative_wall_ms": json_num(coop.0),
            "speedup": json_num(speedup),
            "isolated_units": iso.2,
            "cooperative_units": coop.2,
            "isolated_cost": iso.1,
            "cooperative_cost": coop.1,
        }));
    }

    // --- Batch throughput ------------------------------------------------
    let queries: Vec<Query> = (0..batch_size)
        .map(|i| generate_query(&Benchmark::Default.spec(), batch_n, 100 + i as u64))
        .collect();
    let cfg = OptimizerConfig::new(Method::Iai)
        .with_time_limit(1.0)
        .with_seed(17);
    let mut batch_rows: Vec<ljqo_json::Value> = Vec::new();
    for threads in [1usize, 4] {
        let opts = BatchOptions {
            threads,
            per_query_deadline: None,
        };
        let mut failed = usize::MAX;
        let ns = bench_ns(
            &format!("batch/{batch_size}xN{batch_n}/threads{threads}"),
            || {
                let report = optimize_batch(&queries, &model, &cfg, &opts);
                failed = report.n_failed;
                black_box(report.units_used)
            },
        );
        assert_eq!(failed, 0, "batch queries must all plan");
        batch_rows.push(ljqo_json::json!({
            "threads": threads as u64,
            "queries": batch_size as u64,
            "n_per_query": batch_n as u64,
            "wall_ms": json_num(ns / 1e6),
        }));
    }

    let report = ljqo_json::json!({
        "bench": "parallel_scaling",
        "description": "Isolated fan-out scaling, cooperative shared-best wind-down, and batch throughput",
        "model": "memory",
        "workload": "Benchmark::Default (random graphs)",
        "n_relations": n as u64,
        "total_budget_units": budget,
        "hardware_threads": hardware_threads as u64,
        "smoke": smoke,
        "stop_threshold": threshold,
        "isolated_scaling": ljqo_json::Value::Array(scaling_rows),
        "quality_grid": ljqo_json::Value::Array(quality_rows),
        "cooperative_winddown": ljqo_json::Value::Array(winddown_rows),
        "batch_throughput": ljqo_json::Value::Array(batch_rows),
    });

    let out = std::env::var("BENCH_PARALLEL_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_parallel.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_parallel.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_parallel.json");
    println!("wrote {out}");
}
