//! Estimation-error robustness: regret under controlled q-error.
//!
//! For every cell of {workload shape × query size × q-error × method},
//! the harness generates a JOB-shaped *true* catalog, distorts it with a
//! seeded correlated perturbation of maximum factor `q`, optimizes
//! against the distorted (*observed*) catalog, re-prices the resulting
//! plan under the truth via the plan cache's serving path, and reports
//! the **regret** — by how much estimation error inflated the plan the
//! user actually runs, relative to a perfect-information solve
//! (`max(0, true/reference − 1)`, averaged over seeds).
//!
//! A second grid compares the uniform II/SA/AGI/KBI portfolio with the
//! robust portfolio (the same rotation plus the cardinality-free
//! structural challenger) and asserts the never-worse contract on every
//! instance with material error (q ≥ 10): at equal budget, the robust
//! run's cost is never above the uniform run's.
//!
//! Two more in-run assertions pin the harness itself: regret is exactly
//! `0` at q = 1 (the perturbation is the identity there), and every
//! CARDFREE row reports an undegraded solve (the structural method
//! cannot be hurt by statistics).
//!
//! Writes `BENCH_robust_est.json` at the workspace root (override with
//! `BENCH_ROBUST_EST_OUT`; set `ROBUST_EST_SMOKE=1` for a seconds-long
//! CI-sized run).

use std::io::Write as _;
use std::time::Instant;

use ljqo::prelude::*;
use ljqo::robust::{regret_under, regret_under_parallel};
use ljqo_workload::{generate_job_query, JobShape, JobSpec, PerturbMode, Perturbation};

const METHODS: [Method; 5] = [
    Method::Ii,
    Method::Sa,
    Method::Agi,
    Method::Kbi,
    Method::Cardfree,
];

fn json_num(x: f64) -> ljqo_json::Value {
    if x.is_finite() {
        ljqo_json::Value::Number((x * 10_000.0).round() / 10_000.0)
    } else {
        ljqo_json::Value::Number(f64::MAX)
    }
}

fn main() {
    let smoke = std::env::var("ROBUST_EST_SMOKE").is_ok();
    let (sizes, qerrors, seeds): (&[usize], &[f64], u64) = if smoke {
        (&[10], &[1.0, 10.0], 2)
    } else {
        (&[10, 30], &[1.0, 2.0, 10.0, 100.0], 5)
    };
    let model = MemoryCostModel::default();
    let started = Instant::now();

    // --- Per-method regret grid -----------------------------------------
    let mut method_rows: Vec<ljqo_json::Value> = Vec::new();
    for shape in JobShape::ALL {
        for &n_joins in sizes {
            for &q in qerrors {
                for method in METHODS {
                    let mut regrets = Vec::new();
                    let mut replays_recosted = 0u64;
                    for seed in 0..seeds {
                        let truth = generate_job_query(
                            &JobSpec::new(shape),
                            n_joins,
                            0xe571_0000 ^ (n_joins as u64) << 32 ^ seed,
                        );
                        let observed =
                            Perturbation::new(q, PerturbMode::Correlated, seed).observed(&truth);
                        let config = OptimizerConfig::new(method).with_seed(seed);
                        let s = regret_under(&truth, &observed, &model, &config)
                            .expect("regret study plans every instance");
                        if q <= 1.0 {
                            assert_eq!(
                                s.regret, 0.0,
                                "q = 1 is the identity: {shape:?}/{n_joins}/{method:?}/{seed}"
                            );
                        }
                        if method == Method::Cardfree {
                            assert_eq!(
                                s.degradation,
                                Degradation::None,
                                "CARDFREE reads no statistics and cannot degrade"
                            );
                        }
                        if s.replay == CacheOutcome::HitRecosted {
                            replays_recosted += 1;
                        }
                        regrets.push(s.regret);
                    }
                    let mean = regrets.iter().sum::<f64>() / regrets.len() as f64;
                    let max = regrets.iter().cloned().fold(0.0f64, f64::max);
                    println!(
                        "{}/{n_joins}j/q{q}/{}: mean regret {mean:.4}, max {max:.4}",
                        shape.name(),
                        method.name()
                    );
                    method_rows.push(ljqo_json::json!({
                        "shape": shape.name(),
                        "n_joins": n_joins as u64,
                        "qerror": q,
                        "method": method.name(),
                        "mean_regret": json_num(mean),
                        "max_regret": json_num(max),
                        "replays_recosted": replays_recosted,
                        "seeds": seeds,
                    }));
                }
            }
        }
    }

    // --- Portfolio grid: uniform vs robust, never-worse asserted --------
    let mut portfolio_rows: Vec<ljqo_json::Value> = Vec::new();
    for shape in JobShape::ALL {
        for &n_joins in sizes {
            for &q in qerrors {
                let mut plain_regrets = Vec::new();
                let mut robust_regrets = Vec::new();
                for seed in 0..seeds {
                    let truth = generate_job_query(
                        &JobSpec::new(shape),
                        n_joins,
                        0xe571_0001 ^ (n_joins as u64) << 32 ^ seed,
                    );
                    let observed =
                        Perturbation::new(q, PerturbMode::Correlated, seed).observed(&truth);
                    let config = OptimizerConfig::new(Method::Ii).with_seed(seed);
                    let plain = regret_under_parallel(
                        &truth,
                        &observed,
                        &model,
                        &config,
                        &Parallelism::portfolio(4),
                    )
                    .expect("uniform portfolio plans every instance");
                    let robust = regret_under_parallel(
                        &truth,
                        &observed,
                        &model,
                        &config,
                        &Parallelism::robust_portfolio(4),
                    )
                    .expect("robust portfolio plans every instance");
                    // The acceptance contract: with material estimation
                    // error, the portfolio including the cardinality-free
                    // challenger is never worse than the uniform one at
                    // equal budget, on the catalog both optimized.
                    if q >= 10.0 {
                        assert!(
                            robust.observed_cost <= plain.observed_cost,
                            "never-worse violated: {shape:?}/{n_joins}/q{q}/{seed}: \
                             robust {} > uniform {}",
                            robust.observed_cost,
                            plain.observed_cost
                        );
                    }
                    plain_regrets.push(plain.regret);
                    robust_regrets.push(robust.regret);
                }
                let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
                println!(
                    "{}/{n_joins}j/q{q}/portfolio: uniform regret {:.4}, robust {:.4}",
                    shape.name(),
                    mean(&plain_regrets),
                    mean(&robust_regrets)
                );
                portfolio_rows.push(ljqo_json::json!({
                    "shape": shape.name(),
                    "n_joins": n_joins as u64,
                    "qerror": q,
                    "uniform_mean_regret": json_num(mean(&plain_regrets)),
                    "robust_mean_regret": json_num(mean(&robust_regrets)),
                    "never_worse_checked": q >= 10.0,
                    "seeds": seeds,
                }));
            }
        }
    }

    let report = ljqo_json::json!({
        "bench": "robust_est",
        "description": "Regret under controlled estimation error (q-error), per method and for the uniform vs robust portfolio",
        "model": "memory",
        "workload": "JOB-shaped generators (star / snowflake / cyclic), correlated perturbation",
        "perturb_mode": "correlated",
        "smoke": smoke,
        "wall_s": json_num(started.elapsed().as_secs_f64()),
        "methods": ljqo_json::Value::Array(
            METHODS.iter().map(|m| ljqo_json::Value::from(m.name())).collect()
        ),
        "method_grid": ljqo_json::Value::Array(method_rows),
        "portfolio_grid": ljqo_json::Value::Array(portfolio_rows),
    });

    let out = std::env::var("BENCH_ROBUST_EST_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_robust_est.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_robust_est.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_robust_est.json");
    println!("wrote {out}");
}
