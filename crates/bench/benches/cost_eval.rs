//! Microbenchmarks of the cost-evaluation hot path.
//!
//! One budget unit corresponds to one plan evaluation; these benches
//! measure what a unit costs in wall time for both models across query
//! sizes, plus the estimator on its own.

use ljqo_bench::timing::{bench, black_box};
use ljqo_cost::estimate::{intermediate_sizes, SizeWalker};
use ljqo_cost::{CostModel, DiskCostModel, MemoryCostModel};
use ljqo_plan::JoinOrder;
use ljqo_workload::{generate_query, Benchmark};

fn bench_order_cost() {
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 42);
        let order = JoinOrder::identity(&query);
        let memory = MemoryCostModel::default();
        let disk = DiskCostModel::default();
        let mut walker = SizeWalker::new(query.n_relations());

        bench(&format!("order_cost/memory/{n}"), || {
            memory.order_cost_with(&query, black_box(order.rels()), &mut walker)
        });
        bench(&format!("order_cost/disk/{n}"), || {
            disk.order_cost_with(&query, black_box(order.rels()), &mut walker)
        });
    }
}

fn bench_estimator() {
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 7);
        let order = JoinOrder::identity(&query);
        bench(&format!("estimator/intermediate_sizes/{n}"), || {
            intermediate_sizes(&query, black_box(order.rels()))
        });
    }
}

fn main() {
    bench_order_cost();
    bench_estimator();
}
