//! Microbenchmarks of the cost-evaluation hot path.
//!
//! One budget unit corresponds to one plan evaluation; these benches
//! measure what a unit costs in wall time for both models across query
//! sizes, plus the estimator on its own.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ljqo_cost::estimate::{intermediate_sizes, SizeWalker};
use ljqo_cost::{CostModel, DiskCostModel, MemoryCostModel};
use ljqo_plan::JoinOrder;
use ljqo_workload::{generate_query, Benchmark};

fn bench_order_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_cost");
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 42);
        let order = JoinOrder::identity(&query);
        let memory = MemoryCostModel::default();
        let disk = DiskCostModel::default();
        let mut walker = SizeWalker::new(query.n_relations());

        group.bench_with_input(BenchmarkId::new("memory", n), &n, |b, _| {
            b.iter(|| {
                black_box(memory.order_cost_with(&query, black_box(order.rels()), &mut walker))
            })
        });
        group.bench_with_input(BenchmarkId::new("disk", n), &n, |b, _| {
            b.iter(|| {
                black_box(disk.order_cost_with(&query, black_box(order.rels()), &mut walker))
            })
        });
    }
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator");
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 7);
        let order = JoinOrder::identity(&query);
        group.bench_with_input(BenchmarkId::new("intermediate_sizes", n), &n, |b, _| {
            b.iter(|| black_box(intermediate_sizes(&query, black_box(order.rels()))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_order_cost, bench_estimator);
criterion_main!(benches);
