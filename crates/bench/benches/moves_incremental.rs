//! Full vs incremental move evaluation, the hot path of II and SA.
//!
//! Measures, per query size N ∈ {10, 20, 50, 100}:
//!
//! * **move evaluation** — apply a pre-sampled valid move, cost the
//!   perturbed order, undo. `full` re-walks the whole order
//!   ([`CostModel::order_cost_with`]); `incremental` uses the memoized
//!   prefix state of [`IncrementalEvaluator`] (`eval_move` + `rollback`).
//!   This isolates exactly the work the delta path saves.
//! * **end-to-end II** — a complete `IterativeImprovement::run` at a fixed
//!   unit budget with `full_eval` on vs off. Smaller ratio than the
//!   eval-only numbers, since proposal validity checking (O(N) per
//!   proposal) and commit work are unchanged.
//!
//! Writes the snapshot consumed by EXPERIMENTS.md to
//! `BENCH_incremental.json` at the workspace root (override the location
//! with `BENCH_INCREMENTAL_OUT`).

use std::io::Write as _;

use ljqo_bench::timing::{bench_ns, black_box};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::IterativeImprovement;
use ljqo_cost::estimate::SizeWalker;
use ljqo_cost::{CostModel, Estimator, Evaluator, IncrementalEvaluator, MemoryCostModel};
use ljqo_plan::{random_valid_order, Move, MoveGenerator, MoveSet};
use ljqo_workload::{generate_query, Benchmark};

const SIZES: [usize; 4] = [10, 20, 50, 100];
const MOVE_POOL: usize = 256;
const II_BUDGET: u64 = 4_000;

fn json_num(x: f64) -> ljqo_json::Value {
    // Round to whole ns / 3 decimals so the snapshot stays readable.
    ljqo_json::Value::Number((x * 1000.0).round() / 1000.0)
}

fn main() {
    let model = MemoryCostModel::default();
    let mut eval_rows: Vec<ljqo_json::Value> = Vec::new();
    let mut e2e_rows: Vec<ljqo_json::Value> = Vec::new();

    for &n in &SIZES {
        let query = generate_query(&Benchmark::Default.spec(), n, 3);
        let comp: Vec<_> = query.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut order = random_valid_order(query.graph(), &comp, &mut rng);

        // Pre-sample a pool of valid moves w.r.t. `order` (the II/SA move
        // distribution), so the timed loops measure evaluation only — not
        // proposal sampling or validity checking.
        let mut gen = MoveGenerator::new(query.n_relations(), MoveSet::default());
        let mut pool: Vec<Move> = Vec::with_capacity(MOVE_POOL);
        while pool.len() < MOVE_POOL {
            if let Some((mv, _)) = gen.propose_counted(query.graph(), &mut order, &mut rng) {
                mv.undo(&mut order);
                pool.push(mv);
            }
        }

        let mut walker = SizeWalker::new(query.n_relations());
        let mut i = 0usize;
        let mut full_order = order.clone();
        let full_ns = bench_ns(&format!("move_eval/full/{n}"), || {
            let mv = pool[i % MOVE_POOL];
            i += 1;
            mv.apply(&mut full_order);
            let c = model.order_cost_with(&query, full_order.rels(), &mut walker);
            mv.undo(&mut full_order);
            black_box(c)
        });

        let mut inc = IncrementalEvaluator::new(&query, &model, Estimator::Static, order.clone());
        let mut j = 0usize;
        let inc_ns = bench_ns(&format!("move_eval/incremental/{n}"), || {
            let mv = pool[j % MOVE_POOL];
            j += 1;
            let c = inc.eval_move(&mv);
            inc.rollback();
            black_box(c)
        });

        let speedup = full_ns / inc_ns;
        println!("move_eval/speedup/{n}{:>37.2}x", speedup);
        eval_rows.push(ljqo_json::json!({
            "n": n,
            "full_ns_per_move": json_num(full_ns),
            "incremental_ns_per_move": json_num(inc_ns),
            "speedup": json_num(speedup),
        }));

        // End-to-end II at a fixed budget: same seeds, same unit charges,
        // only the evaluation strategy differs.
        let mut e2e = Vec::new();
        for full_eval in [true, false] {
            let ii = IterativeImprovement {
                full_eval,
                ..IterativeImprovement::default()
            };
            let label = if full_eval { "full" } else { "incremental" };
            let ns = bench_ns(&format!("ii_run/{label}/{n}"), || {
                let mut ev = Evaluator::with_budget(&query, &model, II_BUDGET);
                let mut run_rng = SmallRng::seed_from_u64(7);
                ii.run(&mut ev, &comp, &mut run_rng);
                black_box(ev.best_cost())
            });
            e2e.push(ns);
        }
        let e2e_speedup = e2e[0] / e2e[1];
        println!("ii_run/speedup/{n}{:>40.2}x", e2e_speedup);
        e2e_rows.push(ljqo_json::json!({
            "n": n,
            "budget_units": II_BUDGET,
            "full_ns_per_run": json_num(e2e[0]),
            "incremental_ns_per_run": json_num(e2e[1]),
            "speedup": json_num(e2e_speedup),
        }));
    }

    let report = ljqo_json::json!({
        "bench": "moves_incremental",
        "description": "Full vs incremental (delta) move evaluation for the II/SA hot path",
        "model": "memory",
        "workload": "Benchmark::Default (random graphs), MoveSet::default() move pool",
        "units": "ns (mean over the timing shim's batches)",
        "move_evaluation": ljqo_json::Value::Array(eval_rows),
        "end_to_end_ii": ljqo_json::Value::Array(e2e_rows),
    });

    let out = std::env::var("BENCH_INCREMENTAL_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_incremental.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let mut f = std::fs::File::create(&out).expect("create BENCH_incremental.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_incremental.json");
    println!("wrote {out}");
}
