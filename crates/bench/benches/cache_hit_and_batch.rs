//! Plan-cache serving latency and batch dedup throughput.
//!
//! Two experiments on the paper's default workload:
//!
//! * **warm vs cold** — a single N-relation query optimized cold
//!   ([`try_optimize`]) vs served warm from a populated [`PlanCache`]
//!   ([`optimize_cached`] hitting). Asserts the acceptance bar: a warm
//!   hit is at least 10× faster than the cold solve.
//! * **batch dedup** — a batch of `Q` queries drawn from `F` distinct
//!   fingerprint classes run through [`optimize_batch_cached`]. Asserts
//!   the counter contract (at most `F` cold solves; every other query a
//!   hit or dedup reuse) and records the wall-clock win over the plain
//!   [`optimize_batch`].
//!
//! Writes `BENCH_cache.json` at the workspace root (override with
//! `BENCH_CACHE_OUT`; set `CACHE_BENCH_SMOKE=1` for a seconds-long
//! CI-sized run).

use std::io::Write as _;
use std::time::Instant;

use ljqo_bench::timing::{bench_ns, black_box};

use ljqo::prelude::*;
use ljqo_workload::{generate_query, Benchmark};

fn json_num(x: f64) -> ljqo_json::Value {
    ljqo_json::Value::Number((x * 1000.0).round() / 1000.0)
}

fn main() {
    let smoke = std::env::var("CACHE_BENCH_SMOKE").is_ok();
    let (n, batch_classes, batch_repeats) = if smoke {
        (12usize, 5usize, 4usize)
    } else {
        (50usize, 10usize, 10usize)
    };

    let model = MemoryCostModel::default();
    let fp_cfg = FingerprintConfig::default();

    // --- Warm hit vs cold solve on one N-relation query -----------------
    let query = generate_query(&Benchmark::Default.spec(), n, 42);
    let config = OptimizerConfig::new(Method::Iai).with_seed(7);

    let mut cold_cost = f64::NAN;
    let cold_ns = bench_ns(&format!("cold/N{n}"), || {
        let r = try_optimize(&query, &model, &config).expect("cold solve");
        cold_cost = r.cost;
        black_box(r.cost)
    });

    let cache = PlanCache::new(PlanCacheConfig::default());
    let (first, outcome) = optimize_cached(&query, &model, &config, &cache, &fp_cfg).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    let mut warm_cost = f64::NAN;
    let warm_ns = bench_ns(&format!("warm/N{n}"), || {
        let (r, o) = optimize_cached(&query, &model, &config, &cache, &fp_cfg).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        warm_cost = r.cost;
        black_box(r.cost)
    });
    assert_eq!(
        warm_cost.to_bits(),
        first.cost.to_bits(),
        "warm hits must be bit-identical to the cold solve"
    );
    let hit_speedup = cold_ns / warm_ns;
    println!("hit/N{n}/speedup: {hit_speedup:.1}x");
    assert!(
        hit_speedup >= 10.0,
        "acceptance: a warm hit must be >= 10x faster than a cold solve, got {hit_speedup:.1}x"
    );

    // --- Batch dedup: F classes, Q = F * repeats queries -----------------
    let batch_n = if smoke { 10 } else { 20 };
    let bases: Vec<Query> = (0..batch_classes)
        .map(|i| generate_query(&Benchmark::Default.spec(), batch_n, 500 + i as u64))
        .collect();
    let queries: Vec<Query> = (0..batch_classes * batch_repeats)
        .map(|i| bases[i % batch_classes].clone())
        .collect();
    let cfg = OptimizerConfig::new(Method::Iai)
        .with_time_limit(1.0)
        .with_seed(17);
    let opts = BatchOptions {
        threads: 4,
        per_query_deadline: None,
    };

    let started = Instant::now();
    let plain = optimize_batch(&queries, &model, &cfg, &opts);
    let plain_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(plain.n_failed, 0);

    let cache = PlanCache::new(PlanCacheConfig::default());
    let started = Instant::now();
    let deduped = optimize_batch_cached(&queries, &model, &cfg, &opts, &cache, &fp_cfg);
    let dedup_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(deduped.n_failed, 0);
    assert!(
        deduped.n_cold_solves <= batch_classes,
        "acceptance: {} classes must need at most {} cold solves, got {}",
        batch_classes,
        batch_classes,
        deduped.n_cold_solves
    );
    assert_eq!(
        deduped.n_cold_solves + deduped.n_cache_hits + deduped.n_dedup_reuses,
        queries.len(),
        "every query is solved cold, served from cache, or deduped"
    );
    let batch_speedup = plain_ms / dedup_ms;
    println!(
        "batch/{}x{}/cold_solves: {} (plain {:.1} ms, deduped {:.1} ms, {:.1}x)",
        batch_classes, batch_repeats, deduped.n_cold_solves, plain_ms, dedup_ms, batch_speedup
    );

    // A fully warm second pass over the same batch.
    let started = Instant::now();
    let second = optimize_batch_cached(&queries, &model, &cfg, &opts, &cache, &fp_cfg);
    let warm_batch_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(second.n_cold_solves, 0, "second pass must be fully warm");

    let stats = cache.stats();
    let warm_vs_cold = ljqo_json::json!({
        "n_relations": n as u64,
        "cold_ns_per_solve": json_num(cold_ns),
        "warm_ns_per_hit": json_num(warm_ns),
        "speedup": json_num(hit_speedup),
        "cost": cold_cost,
    });
    let batch_dedup = ljqo_json::json!({
        "queries": queries.len() as u64,
        "fingerprint_classes": batch_classes as u64,
        "n_per_query": batch_n as u64,
        "threads": 4u64,
        "plain_wall_ms": json_num(plain_ms),
        "deduped_wall_ms": json_num(dedup_ms),
        "speedup": json_num(batch_speedup),
        "cold_solves": deduped.n_cold_solves as u64,
        "cache_hits": deduped.n_cache_hits as u64,
        "dedup_reuses": deduped.n_dedup_reuses as u64,
        "warm_second_pass_ms": json_num(warm_batch_ms),
    });
    let cache_stats = ljqo_json::json!({
        "hits": stats.hits,
        "misses": stats.misses,
        "inserts": stats.inserts,
        "evictions": stats.evictions,
        "resident_entries": stats.entries as u64,
        "resident_bytes": stats.bytes as u64,
    });
    let report = ljqo_json::json!({
        "bench": "cache_hit_and_batch",
        "description": "Plan-cache warm-hit latency vs cold solve, and batch fingerprint dedup",
        "model": "memory",
        "workload": "Benchmark::Default (random graphs)",
        "smoke": smoke,
        "warm_vs_cold": warm_vs_cold,
        "batch_dedup": batch_dedup,
        "cache_stats": cache_stats,
    });

    let out = std::env::var("BENCH_CACHE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_cache.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out).expect("create BENCH_cache.json");
    f.write_all(report.to_string_pretty().as_bytes())
        .and_then(|_| f.write_all(b"\n"))
        .expect("write BENCH_cache.json");
    println!("wrote {out}");
}
