//! Microbenchmarks of the constructive heuristics: one augmentation state,
//! one full KBZ run (all roots), and one local-improvement pass — the
//! real-time counterpart of the budget units the optimizer charges them
//! (`N` per augmentation state, `~N²` per KBZ state).

use ljqo_bench::timing::bench;
use ljqo_cost::{Evaluator, MemoryCostModel};
use ljqo_heuristics::{
    AugmentationCriterion, AugmentationHeuristic, KbzHeuristic, LocalImprovement,
};
use ljqo_plan::JoinOrder;
use ljqo_workload::{generate_query, Benchmark};

fn bench_augmentation() {
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 21);
        let comp: Vec<_> = query.rel_ids().collect();
        let first = AugmentationHeuristic::first_relations(&query, &comp)[0];
        for criterion in [
            AugmentationCriterion::MinSelectivity,
            AugmentationCriterion::MinRank,
        ] {
            let h = AugmentationHeuristic::new(criterion);
            bench(
                &format!("augmentation_generate/crit{}/{n}", criterion.number()),
                || h.generate(&query, &comp, first),
            );
        }
    }
}

fn bench_kbz() {
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 23);
        let comp: Vec<_> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let kbz = KbzHeuristic::default();
        bench(&format!("kbz_generate/{n}"), || {
            let mut ev = Evaluator::new(&query, &model);
            kbz.generate(&mut ev, &comp)
        });
    }
}

fn bench_local_improvement() {
    let query = generate_query(&Benchmark::Default.spec(), 30, 29);
    let model = MemoryCostModel::default();
    for (cl, ov) in [(2usize, 1usize), (3, 2), (4, 3)] {
        let strategy = LocalImprovement::new(cl, ov);
        bench(&format!("local_improvement_pass/c{cl}o{ov}"), || {
            let mut ev = Evaluator::new(&query, &model);
            let mut order = JoinOrder::identity(&query);
            strategy.pass(&mut ev, &mut order)
        });
    }
}

fn main() {
    bench_augmentation();
    bench_kbz();
    bench_local_improvement();
}
