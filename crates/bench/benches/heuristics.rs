//! Microbenchmarks of the constructive heuristics: one augmentation state,
//! one full KBZ run (all roots), and one local-improvement pass — the
//! real-time counterpart of the budget units the optimizer charges them
//! (`N` per augmentation state, `~N²` per KBZ state).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ljqo_cost::{Evaluator, MemoryCostModel};
use ljqo_heuristics::{
    AugmentationCriterion, AugmentationHeuristic, KbzHeuristic, LocalImprovement,
};
use ljqo_plan::JoinOrder;
use ljqo_workload::{generate_query, Benchmark};

fn bench_augmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("augmentation_generate");
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 21);
        let comp: Vec<_> = query.rel_ids().collect();
        let first = AugmentationHeuristic::first_relations(&query, &comp)[0];
        for criterion in [
            AugmentationCriterion::MinSelectivity,
            AugmentationCriterion::MinRank,
        ] {
            let h = AugmentationHeuristic::new(criterion);
            group.bench_function(
                BenchmarkId::new(format!("crit{}", criterion.number()), n),
                |b| b.iter(|| black_box(h.generate(&query, &comp, first))),
            );
        }
    }
    group.finish();
}

fn bench_kbz(c: &mut Criterion) {
    let mut group = c.benchmark_group("kbz_generate");
    group.sample_size(30);
    for &n in &[10usize, 50, 100] {
        let query = generate_query(&Benchmark::Default.spec(), n, 23);
        let comp: Vec<_> = query.rel_ids().collect();
        let model = MemoryCostModel::default();
        let kbz = KbzHeuristic::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ev = Evaluator::new(&query, &model);
                black_box(kbz.generate(&mut ev, &comp))
            })
        });
    }
    group.finish();
}

fn bench_local_improvement(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_improvement_pass");
    group.sample_size(20);
    let query = generate_query(&Benchmark::Default.spec(), 30, 29);
    let model = MemoryCostModel::default();
    for (cl, ov) in [(2usize, 1usize), (3, 2), (4, 3)] {
        let strategy = LocalImprovement::new(cl, ov);
        group.bench_function(BenchmarkId::from_parameter(format!("c{cl}o{ov}")), |b| {
            b.iter(|| {
                let mut ev = Evaluator::new(&query, &model);
                let mut order = JoinOrder::identity(&query);
                black_box(strategy.pass(&mut ev, &mut order))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_augmentation, bench_kbz, bench_local_improvement);
criterion_main!(benches);
