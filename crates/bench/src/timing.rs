//! Minimal wall-clock timing harness for the `harness = false` benches.
//!
//! The build runs fully offline, so instead of criterion the benches use
//! this shim: warm up, double the batch size until a batch takes long
//! enough to measure, then report mean ns/iter. Good enough to compare
//! hot paths release-to-release; not a statistics suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time `f` and print one line: `name  <mean> ns/iter (<iters> iters)`.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) {
    bench_ns(name, f);
}

/// As [`bench`](fn@bench), additionally returning the measured mean
/// ns/iter (for
/// benches that persist snapshots, e.g. `moves_incremental` writing
/// `BENCH_incremental.json`).
pub fn bench_ns<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..3 {
        black_box(f());
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(40) || iters >= (1 << 22) {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<44} {per:>14.0} ns/iter ({iters} iters)");
            return per;
        }
        iters = iters.saturating_mul(2);
    }
}
