//! Rendering experiment results as text tables and JSON.

use std::io::Write as _;
use std::path::Path;

use crate::grid::CostMatrix;

/// A complete experiment report, serializable for `results/*.json`.
#[derive(Debug)]
pub struct Report {
    /// Experiment id, e.g. `"table1"` or `"fig4"`.
    pub experiment: String,
    /// Human description.
    pub description: String,
    /// Mean scaled costs, `rows[label][tau]`.
    pub mean_scaled: Vec<Vec<f64>>,
    /// Column labels (methods / criteria).
    pub labels: Vec<String>,
    /// Time-limit multipliers.
    pub taus: Vec<f64>,
    /// Number of queries aggregated.
    pub n_queries: usize,
    /// The full cost matrix for downstream analysis.
    pub matrix: CostMatrix,
}

impl Report {
    /// Build a report from a cost matrix.
    pub fn new(experiment: &str, description: &str, matrix: CostMatrix) -> Self {
        Report {
            experiment: experiment.to_string(),
            description: description.to_string(),
            mean_scaled: matrix.mean_scaled_table(),
            labels: matrix.labels.clone(),
            taus: matrix.taus.clone(),
            n_queries: matrix.reference.len(),
            matrix,
        }
    }

    /// The JSON shape written under `results/`.
    pub fn to_json(&self) -> ljqo_json::Value {
        use ljqo_json::Value;
        let nested = |rows: &Vec<Vec<f64>>| -> Value {
            Value::Array(rows.iter().map(|r| Value::from(r.clone())).collect())
        };
        let costs: Vec<Value> = self.matrix.costs.iter().map(&nested).collect();
        ljqo_json::json!({
            "experiment": self.experiment.as_str(),
            "description": self.description.as_str(),
            "mean_scaled": nested(&self.mean_scaled),
            "labels": self.labels.clone(),
            "taus": self.taus.clone(),
            "n_queries": self.n_queries,
            "matrix": ljqo_json::json!({
                "labels": self.matrix.labels.clone(),
                "taus": self.matrix.taus.clone(),
                "query_ns": self.matrix.query_ns.clone(),
                "costs": costs,
                "reference": self.matrix.reference.clone(),
            }),
        })
    }
}

/// Render the classic paper layout: one row per time limit, one column per
/// method/criterion, mean scaled costs in the cells.
pub fn render_curve_table(report: &Report) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{} — {} ({} queries)",
        report.experiment, report.description, report.n_queries
    );
    let _ = write!(out, "{:>10} |", "Time");
    for l in &report.labels {
        let _ = write!(out, " {l:>8}");
    }
    let _ = writeln!(out);
    let width = 12 + 9 * report.labels.len();
    let _ = writeln!(out, "{}", "-".repeat(width));
    for (t, &tau) in report.taus.iter().enumerate() {
        let _ = write!(out, "{:>9.2}N² |", tau);
        for row in &report.mean_scaled {
            let _ = write!(out, " {:>8.2}", row[t]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Write the report as pretty JSON under `results/`.
pub fn write_json(report: &Report, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.experiment));
    let mut f = std::fs::File::create(&path)?;
    let json = report.to_json().to_string_pretty();
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_matrix() -> CostMatrix {
        CostMatrix {
            labels: vec!["IAI".into(), "II".into()],
            taus: vec![1.5, 9.0],
            query_ns: vec![10, 10],
            costs: vec![
                vec![vec![20.0, 10.0], vec![30.0, 12.0]],
                vec![vec![40.0, 15.0], vec![90.0, 12.0]],
            ],
            reference: vec![10.0, 12.0],
        }
    }

    #[test]
    fn render_contains_labels_and_taus() {
        let r = Report::new("test", "unit test", dummy_matrix());
        let s = render_curve_table(&r);
        assert!(s.contains("IAI"));
        assert!(s.contains("9.00N²"));
        assert!(s.contains("test — unit test (2 queries)"));
    }

    #[test]
    fn mean_scaled_rows_match_matrix() {
        let m = dummy_matrix();
        let r = Report::new("t", "d", m);
        // IAI at tau=9: scaled (10/10 + 12/12)/2 = 1.
        assert!((r.mean_scaled[0][1] - 1.0).abs() < 1e-12);
        // II at tau=1.5: (4 + 7.5)/2 = 5.75.
        assert!((r.mean_scaled[1][0] - 5.75).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("ljqo-report-test");
        let r = Report::new("unit", "d", dummy_matrix());
        let path = write_json(&r, &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"unit\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
