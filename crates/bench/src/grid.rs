//! The experiment grid: queries × methods × time limits, run in parallel.

use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::eval::{mean_scaled_cost, per_query_best};
use ljqo::{Method, MethodRunner};
use ljqo_cost::{CostModel, DiskCostModel, Evaluator, MemoryCostModel, TimeLimit};
use ljqo_heuristics::{AugmentationCriterion, AugmentationHeuristic, KbzHeuristic, MstWeight};
use ljqo_workload::{generate_query, Benchmark};

/// Which cost model to evaluate under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Main-memory hash-join model (the paper's default).
    Memory,
    /// Disk-based hash-join model (paper §6.2).
    Disk,
}

impl ModelKind {
    /// Instantiate the model with default parameters.
    pub fn model(self) -> Box<dyn CostModel + Send + Sync> {
        match self {
            ModelKind::Memory => Box::new(MemoryCostModel::default()),
            ModelKind::Disk => Box::new(DiskCostModel::default()),
        }
    }
}

/// A column of the experiment: either one of the paper's nine methods, or
/// a *pure heuristic* run repeatedly over its finite set of states (used
/// by Tables 1 and 2, which compare heuristic variations in isolation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeuristicKind {
    /// One of the nine composite methods.
    Method(Method),
    /// Pure augmentation with the given `chooseNext` criterion.
    Augmentation(AugmentationCriterion),
    /// Pure KBZ with the given spanning-tree weight.
    Kbz(MstWeight),
}

impl HeuristicKind {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            HeuristicKind::Method(m) => m.name().to_string(),
            HeuristicKind::Augmentation(c) => format!("aug-{}", c.number()),
            HeuristicKind::Kbz(w) => format!("kbz-{}", w.criterion_number()),
        }
    }
}

/// Specification of one experiment grid.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Columns to compare.
    pub columns: Vec<HeuristicKind>,
    /// Join counts; each gets `queries_per_n` distinct queries.
    pub ns: Vec<usize>,
    /// Queries per join count (paper: 50).
    pub queries_per_n: usize,
    /// Replicates per query, averaged (paper: 2).
    pub replicates: usize,
    /// Time-limit multipliers `τ`, ascending; the last is the scaling
    /// reference (paper: 9).
    pub taus: Vec<f64>,
    /// Budget units per `N²`.
    pub kappa: f64,
    /// Benchmark generating the queries.
    pub benchmark: Benchmark,
    /// Cost model.
    pub model: ModelKind,
    /// Base RNG seed; every (query, replicate) derives its own.
    pub base_seed: u64,
    /// Method parameters.
    pub runner: MethodRunner,
    /// Extra columns (run at the final τ only) folded into the scaling
    /// reference but not reported — Tables 1 and 2 scale heuristic results
    /// against the best the *methods* can do.
    pub reference_methods: Vec<Method>,
}

impl GridSpec {
    /// A spec with the paper's Figure 4 defaults (except scaled-down query
    /// counts; see [`GridSpec::paper_scale`]).
    pub fn new(columns: Vec<HeuristicKind>) -> Self {
        GridSpec {
            columns,
            ns: vec![10, 20, 30, 40, 50],
            queries_per_n: 5,
            replicates: 1,
            taus: vec![0.3, 0.6, 0.9, 1.5, 3.0, 6.0, 9.0],
            kappa: 5.0,
            benchmark: Benchmark::Default,
            model: ModelKind::Memory,
            base_seed: 0x5eed,
            runner: MethodRunner::default(),
            reference_methods: Vec::new(),
        }
    }

    /// Upgrade to the paper's full scale: 50 queries per N, 2 replicates.
    #[must_use]
    pub fn paper_scale(mut self) -> Self {
        self.queries_per_n = 50;
        self.replicates = 2;
        self
    }

    /// Total number of queries in the grid.
    pub fn n_queries(&self) -> usize {
        self.ns.len() * self.queries_per_n
    }
}

/// Results: `costs[col][query][tau]` = best cost found by column `col` on
/// query `query` within time limit `taus[tau]` (replicates already
/// averaged), plus the per-query scaling reference.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    /// Column labels.
    pub labels: Vec<String>,
    /// Time-limit multipliers.
    pub taus: Vec<f64>,
    /// Join count of each query.
    pub query_ns: Vec<usize>,
    /// Raw best costs per column/query/tau.
    pub costs: Vec<Vec<Vec<f64>>>,
    /// Per-query scaling reference (best cost at the final tau across all
    /// columns and reference methods).
    pub reference: Vec<f64>,
}

impl CostMatrix {
    /// Mean scaled cost of column `col` at tau index `t` (outliers coerced
    /// to 10), the paper's reported statistic.
    pub fn mean_scaled(&self, col: usize, t: usize) -> f64 {
        let costs: Vec<f64> = self.costs[col].iter().map(|q| q[t]).collect();
        mean_scaled_cost(&costs, &self.reference)
    }

    /// The full mean-scaled table: `[col][tau]`.
    pub fn mean_scaled_table(&self) -> Vec<Vec<f64>> {
        (0..self.labels.len())
            .map(|c| {
                (0..self.taus.len())
                    .map(|t| self.mean_scaled(c, t))
                    .collect()
            })
            .collect()
    }

    /// Standard error of the mean scaled cost of column `col` at tau
    /// index `t` — the statistic SG88's methodology companion reports
    /// alongside the mean. NaN with fewer than two queries.
    pub fn scaled_stderr(&self, col: usize, t: usize) -> f64 {
        let scaled: Vec<f64> = self.costs[col]
            .iter()
            .zip(&self.reference)
            .map(|(q, &r)| ljqo::eval::scaled_cost(q[t], r))
            .collect();
        let n = scaled.len() as f64;
        if n < 2.0 {
            return f64::NAN;
        }
        let mean = scaled.iter().sum::<f64>() / n;
        let var = scaled.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
        (var / n).sqrt()
    }

    /// Mean scaled cost of column `col` at tau index `t`, broken down by
    /// join count: `(n, mean over that n's queries)`, ascending in `n`.
    /// Exposes whether an aggregate ranking is driven by the easy small-N
    /// queries or holds across sizes.
    pub fn mean_scaled_by_n(&self, col: usize, t: usize) -> Vec<(usize, f64)> {
        let mut ns: Vec<usize> = self.query_ns.clone();
        ns.sort_unstable();
        ns.dedup();
        ns.into_iter()
            .map(|n| {
                let mut sum = 0.0;
                let mut count = 0usize;
                for (qi, &qn) in self.query_ns.iter().enumerate() {
                    if qn == n {
                        sum += ljqo::eval::scaled_cost(self.costs[col][qi][t], self.reference[qi]);
                        count += 1;
                    }
                }
                (n, sum / count as f64)
            })
            .collect()
    }
}

/// One run: a column on one query with checkpoints at every tau.
/// Returns the best cost at each tau.
fn run_curve(
    column: HeuristicKind,
    query: &ljqo_catalog::Query,
    model: &dyn CostModel,
    runner: &MethodRunner,
    taus: &[f64],
    kappa: f64,
    seed: u64,
) -> Vec<f64> {
    let n = query.n_joins().max(1);
    let components = query.graph().components();
    assert_eq!(
        components.len(),
        1,
        "benchmark queries are connected by construction"
    );
    let component = &components[0];
    let checkpoints: Vec<u64> = taus
        .iter()
        .map(|&t| TimeLimit::of(t).units(n, kappa))
        .collect();
    let budget = *checkpoints.last().unwrap();
    let mut ev = Evaluator::with_budget(query, model, budget);
    ev.set_checkpoints(checkpoints);
    let mut rng = SmallRng::seed_from_u64(seed);

    match column {
        HeuristicKind::Method(m) => runner.run(m, &mut ev, component, &mut rng),
        HeuristicKind::Augmentation(criterion) => {
            // Pure augmentation: generate one state per first relation (in
            // increasing-size order) until states or budget run out. The
            // heuristic "cannot take advantage of additional time".
            let aug = AugmentationHeuristic::new(criterion);
            for first in AugmentationHeuristic::first_relations(query, component) {
                if ev.exhausted() {
                    break;
                }
                ev.charge(component.len() as u64);
                let order = aug.generate(query, component, first);
                ev.cost(&order);
            }
        }
        HeuristicKind::Kbz(weight) => {
            let kbz = KbzHeuristic::new(weight);
            let _ = kbz.generate(&mut ev, component);
        }
    }
    let (_, final_best, snaps) = ev.finish();
    let mut out: Vec<f64> = snaps.iter().map(|s| s.best_cost).collect();
    if let Some(last) = out.last_mut() {
        // The final checkpoint equals the budget; prefer the true final
        // best over the off-by-one-eval snapshot.
        *last = (*last).min(final_best);
    }
    out
}

/// Run a full grid, parallelized over queries with scoped threads.
pub fn run_grid(spec: &GridSpec) -> CostMatrix {
    // Synthesize the query list.
    let mut queries = Vec::with_capacity(spec.n_queries());
    let mut query_ns = Vec::with_capacity(spec.n_queries());
    let bench_spec = spec.benchmark.spec();
    for &n in &spec.ns {
        for qi in 0..spec.queries_per_n {
            let seed = spec
                .base_seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((n as u64) << 32 | qi as u64);
            queries.push(generate_query(&bench_spec, n, seed));
            query_ns.push(n);
        }
    }

    let model = spec.model.model();
    let n_cols = spec.columns.len();
    let n_taus = spec.taus.len();
    let n_queries = queries.len();

    // costs[col][query][tau]; reference extras [query].
    let costs = Mutex::new(vec![vec![vec![f64::INFINITY; n_taus]; n_queries]; n_cols]);
    let ref_extra = Mutex::new(vec![f64::INFINITY; n_queries]);

    let n_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n_queries.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let qi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if qi >= n_queries {
                    break;
                }
                let query = &queries[qi];
                for (ci, &column) in spec.columns.iter().enumerate() {
                    let mut acc = vec![0.0f64; n_taus];
                    for rep in 0..spec.replicates {
                        let seed = spec
                            .base_seed
                            .wrapping_add(0xabcd)
                            .wrapping_mul(1 + qi as u64)
                            .wrapping_add(((ci as u64) << 20) | rep as u64);
                        let curve = run_curve(
                            column,
                            query,
                            model.as_ref(),
                            &spec.runner,
                            &spec.taus,
                            spec.kappa,
                            seed,
                        );
                        for (a, c) in acc.iter_mut().zip(&curve) {
                            *a += c / spec.replicates as f64;
                        }
                    }
                    let mut lock = costs.lock().unwrap();
                    lock[ci][qi] = acc;
                }
                // Reference-only methods run at the final tau.
                for (mi, &m) in spec.reference_methods.iter().enumerate() {
                    let seed = spec
                        .base_seed
                        .wrapping_add(0xdead)
                        .wrapping_mul(1 + qi as u64)
                        .wrapping_add(mi as u64);
                    let curve = run_curve(
                        HeuristicKind::Method(m),
                        query,
                        model.as_ref(),
                        &spec.runner,
                        &spec.taus[spec.taus.len() - 1..],
                        spec.kappa,
                        seed,
                    );
                    let mut lock = ref_extra.lock().unwrap();
                    lock[qi] = lock[qi].min(curve[0]);
                }
            });
        }
    });

    let costs = costs.into_inner().expect("worker thread panicked");
    let ref_extra = ref_extra.into_inner().expect("worker thread panicked");

    // Reference: best at the final tau across columns, folded with the
    // reference-only methods.
    let final_rows: Vec<Vec<f64>> = costs
        .iter()
        .map(|col| col.iter().map(|q| q[n_taus - 1]).collect())
        .collect();
    let mut reference = per_query_best(&final_rows);
    for (r, &e) in reference.iter_mut().zip(&ref_extra) {
        if e < *r {
            *r = e;
        }
    }

    CostMatrix {
        labels: spec.columns.iter().map(HeuristicKind::label).collect(),
        taus: spec.taus.clone(),
        query_ns,
        costs,
        reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(columns: Vec<HeuristicKind>) -> GridSpec {
        let mut s = GridSpec::new(columns);
        s.ns = vec![10];
        s.queries_per_n = 2;
        s.taus = vec![1.0, 3.0];
        s.kappa = 5.0;
        s
    }

    #[test]
    fn grid_produces_finite_monotone_curves() {
        let spec = tiny_spec(vec![
            HeuristicKind::Method(Method::Ii),
            HeuristicKind::Method(Method::Iai),
        ]);
        let m = run_grid(&spec);
        assert_eq!(m.labels, vec!["II", "IAI"]);
        for col in &m.costs {
            for q in col {
                assert_eq!(q.len(), 2);
                assert!(q.iter().all(|c| c.is_finite()));
                assert!(q[1] <= q[0], "more budget cannot hurt: {q:?}");
            }
        }
        // Scaled costs are >= 1 - epsilon by construction and capped at 10.
        for c in 0..2 {
            for t in 0..2 {
                let s = m.mean_scaled(c, t);
                assert!((1.0..=10.0).contains(&s), "scaled {s}");
            }
        }
    }

    #[test]
    fn reference_is_per_query_min_at_final_tau() {
        let spec = tiny_spec(vec![
            HeuristicKind::Method(Method::Ii),
            HeuristicKind::Method(Method::Agi),
        ]);
        let m = run_grid(&spec);
        for qi in 0..m.reference.len() {
            let min = m
                .costs
                .iter()
                .map(|c| c[qi][1])
                .fold(f64::INFINITY, f64::min);
            assert_eq!(m.reference[qi], min);
        }
    }

    #[test]
    fn heuristic_columns_run() {
        let spec = tiny_spec(vec![
            HeuristicKind::Augmentation(AugmentationCriterion::MinSelectivity),
            HeuristicKind::Kbz(MstWeight::Selectivity),
        ]);
        let m = run_grid(&spec);
        assert_eq!(m.labels, vec!["aug-3", "kbz-3"]);
        assert!(m.costs.iter().flatten().flatten().all(|c| c.is_finite()));
    }

    #[test]
    fn reference_methods_tighten_the_reference() {
        let mut spec = tiny_spec(vec![HeuristicKind::Augmentation(
            AugmentationCriterion::MinCardinality,
        )]);
        spec.reference_methods = vec![Method::Iai];
        let with_ref = run_grid(&spec);
        let mut spec2 = spec.clone();
        spec2.reference_methods.clear();
        let without = run_grid(&spec2);
        for qi in 0..with_ref.reference.len() {
            assert!(with_ref.reference[qi] <= without.reference[qi] + 1e-9);
        }
    }

    #[test]
    fn stderr_and_per_n_breakdown() {
        let mut spec = tiny_spec(vec![HeuristicKind::Method(Method::Ii)]);
        spec.ns = vec![10, 15];
        let m = run_grid(&spec);
        let se = m.scaled_stderr(0, 1);
        assert!(se.is_finite() && se >= 0.0);
        let by_n = m.mean_scaled_by_n(0, 1);
        assert_eq!(by_n.len(), 2);
        assert_eq!(by_n[0].0, 10);
        assert_eq!(by_n[1].0, 15);
        // The overall mean is the query-weighted mean of the per-N means
        // (equal counts per N here).
        let overall = m.mean_scaled(0, 1);
        let avg = (by_n[0].1 + by_n[1].1) / 2.0;
        assert!((overall - avg).abs() < 1e-12);
        for (_, v) in by_n {
            assert!((1.0..=10.0).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        let spec = tiny_spec(vec![HeuristicKind::Method(Method::Sa)]);
        let a = run_grid(&spec);
        let b = run_grid(&spec);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.reference, b.reference);
    }
}
