//! # ljqo-bench — the paper's experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§6):
//!
//! | binary   | artifact | what it reproduces |
//! |----------|----------|--------------------|
//! | `table1` | Table 1  | augmentation `chooseNext` criteria 1–5 vs time limit |
//! | `table2` | Table 2  | KBZ spanning-tree weight criteria 3–5 vs time limit |
//! | `fig4`   | Figure 4 | all nine methods, default benchmark, N = 10..50 |
//! | `fig5`   | Figure 5 | top five methods, larger benchmark, N = 10..100 |
//! | `fig6`   | Figure 6 | small time limits (0.3N²..1.8N²) for IAI/AGI/II |
//! | `fig7`   | Figure 7 | five methods under the disk cost model |
//! | `table3` | Table 3  | five methods across the nine benchmark variations |
//!
//! plus ablation binaries (`ablation_moves`, `ablation_kappa`,
//! `ablation_sa`, `ablation_local`, `baseline_dp`) for the design choices
//! called out in `DESIGN.md`.
//!
//! All binaries share the same methodology (paper §6.1): queries are
//! synthesized per benchmark; each method runs **once** per (query,
//! replicate) with the full `9N²` budget while the evaluator snapshots the
//! best cost at every intermediate time limit; costs are scaled by the
//! per-query best at `9N²`, outliers coerced to 10, and averaged.
//!
//! Defaults are scaled down for laptop runtimes; pass `--paper-scale` for
//! the full 50-queries-per-N, 2-replicate configuration.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;
pub mod grid;
pub mod report;
pub mod timing;

pub use cli::Args;
pub use grid::{run_grid, CostMatrix, GridSpec, HeuristicKind, ModelKind};
pub use report::{render_curve_table, write_json, Report};
