//! Minimal argument parsing shared by the experiment binaries.
//!
//! Flags (all optional):
//!
//! * `--queries <k>` — queries per join count (default depends on binary)
//! * `--replicates <k>` — replicates per query
//! * `--joins <k>` — join count, for binaries that run one fixed `N`
//! * `--kappa <f>` — budget units per `N²`
//! * `--seed <u64>` — base seed
//! * `--paper-scale` — the paper's 50-queries/2-replicate configuration
//! * `--out <dir>` — results directory (default `results/`)

use std::path::PathBuf;

use crate::grid::GridSpec;

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Queries per join count, if overridden.
    pub queries_per_n: Option<usize>,
    /// Replicates per query, if overridden.
    pub replicates: Option<usize>,
    /// Join count for single-`N` binaries (`ext_bushy`), if overridden.
    pub joins: Option<usize>,
    /// Budget calibration, if overridden.
    pub kappa: Option<f64>,
    /// Base seed, if overridden.
    pub seed: Option<u64>,
    /// Use the paper's full scale.
    pub paper_scale: bool,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl Args {
    /// Parse `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args {
            queries_per_n: None,
            replicates: None,
            joins: None,
            kappa: None,
            seed: None,
            paper_scale: false,
            out_dir: PathBuf::from("results"),
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| die(&format!("{name} requires a value")))
            };
            match arg.as_str() {
                "--queries" => {
                    out.queries_per_n = Some(
                        value("--queries")
                            .parse()
                            .unwrap_or_else(|_| die("--queries must be an integer")),
                    )
                }
                "--replicates" => {
                    out.replicates = Some(
                        value("--replicates")
                            .parse()
                            .unwrap_or_else(|_| die("--replicates must be an integer")),
                    )
                }
                "--joins" => {
                    out.joins = Some(
                        value("--joins")
                            .parse()
                            .unwrap_or_else(|_| die("--joins must be an integer")),
                    )
                }
                "--kappa" => {
                    out.kappa = Some(
                        value("--kappa")
                            .parse()
                            .unwrap_or_else(|_| die("--kappa must be a number")),
                    )
                }
                "--seed" => {
                    out.seed = Some(
                        value("--seed")
                            .parse()
                            .unwrap_or_else(|_| die("--seed must be a u64")),
                    )
                }
                "--paper-scale" => out.paper_scale = true,
                "--out" => out.out_dir = PathBuf::from(value("--out")),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --queries <k> --replicates <k> --joins <k> --kappa <f> \
                         --seed <u64> --paper-scale --out <dir>"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// Apply the overrides to a grid spec.
    pub fn apply(&self, mut spec: GridSpec) -> GridSpec {
        if self.paper_scale {
            spec = spec.paper_scale();
        }
        if let Some(q) = self.queries_per_n {
            spec.queries_per_n = q;
        }
        if let Some(r) = self.replicates {
            spec.replicates = r;
        }
        if let Some(k) = self.kappa {
            spec.kappa = k;
        }
        if let Some(s) = self.seed {
            spec.base_seed = s;
        }
        spec
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::HeuristicKind;
    use ljqo::Method;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_and_apply() {
        let a = Args::parse_from(strs(&[
            "--queries",
            "7",
            "--kappa",
            "2.5",
            "--seed",
            "99",
            "--out",
            "/tmp/x",
        ]));
        assert_eq!(a.queries_per_n, Some(7));
        assert_eq!(a.kappa, Some(2.5));
        assert_eq!(a.out_dir, PathBuf::from("/tmp/x"));
        let spec = a.apply(GridSpec::new(vec![HeuristicKind::Method(Method::Ii)]));
        assert_eq!(spec.queries_per_n, 7);
        assert_eq!(spec.kappa, 2.5);
        assert_eq!(spec.base_seed, 99);
    }

    #[test]
    fn paper_scale_sets_counts() {
        let a = Args::parse_from(strs(&["--paper-scale"]));
        let spec = a.apply(GridSpec::new(vec![HeuristicKind::Method(Method::Ii)]));
        assert_eq!(spec.queries_per_n, 50);
        assert_eq!(spec.replicates, 2);
    }

    #[test]
    fn explicit_queries_override_paper_scale() {
        let a = Args::parse_from(strs(&["--paper-scale", "--queries", "3"]));
        let spec = a.apply(GridSpec::new(vec![HeuristicKind::Method(Method::Ii)]));
        assert_eq!(spec.queries_per_n, 3);
        assert_eq!(spec.replicates, 2);
    }

    #[test]
    fn defaults() {
        let a = Args::parse_from(strs(&[]));
        assert!(!a.paper_scale);
        assert!(a.joins.is_none());
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn joins_flag_parses() {
        let a = Args::parse_from(strs(&["--joins", "14"]));
        assert_eq!(a.joins, Some(14));
    }
}
