//! Figure 5: the five surviving methods on the larger benchmark
//! (N = 10..100), mean scaled cost vs time limit.
//!
//! Paper's finding: the ordering from Figure 4 is unchanged — IAI first,
//! with AGI and II better only at small limits.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};

fn main() {
    let args = Args::parse();
    let mut spec = GridSpec::new(
        Method::TOP_FIVE
            .into_iter()
            .map(HeuristicKind::Method)
            .collect(),
    );
    spec.ns = (1..=10).map(|i| i * 10).collect();
    spec.queries_per_n = 3; // larger default grid, smaller default count
    let spec = args.apply(spec);

    let matrix = run_grid(&spec);
    let report = Report::new(
        "fig5",
        "top five methods, larger benchmark, memory cost model, N=10..100",
        matrix,
    );
    print!("{}", ljqo_bench::render_curve_table(&report));
    match ljqo_bench::write_json(&report, &args.out_dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
