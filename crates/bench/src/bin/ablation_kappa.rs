//! Ablation: sensitivity of the method ranking to the budget calibration
//! constant κ (work units per N²).
//!
//! The deterministic budget replaces the paper's CPU-seconds; the claim
//! that matters is that the *ranking* of methods is insensitive to the
//! exact κ, since every method draws from the same budget. This ablation
//! sweeps κ and prints the mean scaled costs of IAI/AGI/II at 1.5N² and
//! 9N² under each.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};

fn main() {
    let args = Args::parse();
    for kappa in [2.0, 5.0, 10.0, 20.0] {
        let mut spec = GridSpec::new(vec![
            HeuristicKind::Method(Method::Iai),
            HeuristicKind::Method(Method::Agi),
            HeuristicKind::Method(Method::Ii),
        ]);
        spec.taus = vec![0.3, 1.5, 9.0];
        spec.kappa = kappa;
        let mut spec = args.apply(spec);
        spec.kappa = args.kappa.unwrap_or(kappa); // --kappa overrides all rows

        let matrix = run_grid(&spec);
        let report = Report::new(
            &format!("ablation_kappa_{kappa}"),
            &format!("IAI/AGI/II at kappa = {kappa} units per N²"),
            matrix,
        );
        print!("{}", ljqo_bench::render_curve_table(&report));
        println!();
        if let Err(e) = ljqo_bench::write_json(&report, &args.out_dir) {
            eprintln!("could not write results: {e}");
        }
    }
}
