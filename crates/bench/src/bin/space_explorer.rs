//! Solution-space exploration — the paper's §7 "distribution of solution
//! costs in the space of valid solutions is of interest and is being
//! investigated".
//!
//! For each benchmark, sample the valid-plan space of several queries and
//! census the local minima reached by steepest descent, testing the §6.4
//! speculation that the space has "a large number of local minima, with a
//! small but significant fraction of them being deep".

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::analysis::{census_local_minima, sample_space};
use ljqo_bench::Args;
use ljqo_cost::MemoryCostModel;
use ljqo_workload::{generate_query, Benchmark};

fn main() {
    let args = Args::parse();
    let queries_per_bench = args.queries_per_n.unwrap_or(3);
    let n = 15; // steepest descent is O(N³) per step; keep N moderate
    let samples = 400;
    let descents = 30;
    let model = MemoryCostModel::default();

    println!(
        "space_explorer — N={n}, {samples} space samples and {descents} steepest descents per query"
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>7} {:>8} {:>7}",
        "benchmark", "median/", "p90/", "max/", "good%", "minima", "deep%"
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>7} {:>8} {:>7}",
        "", "min", "min", "min", "", "found", ""
    );

    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let mut med = 0.0;
        let mut p90 = 0.0;
        let mut maxr = 0.0;
        let mut good = 0.0;
        let mut minima = 0.0;
        let mut deep = 0.0;
        for qi in 0..queries_per_bench {
            let seed = args.seed.unwrap_or(0x5ace) + qi as u64;
            let query = generate_query(&bench.spec(), n, seed);
            let comp: Vec<_> = query.rel_ids().collect();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xf00);
            let s = sample_space(&query, &model, &comp, samples, &mut rng);
            let c = census_local_minima(&query, &model, &comp, descents, &mut rng);
            med += s.median / s.min / queries_per_bench as f64;
            p90 += s.p90 / s.min / queries_per_bench as f64;
            maxr += (s.max / s.min).min(1e6) / queries_per_bench as f64;
            good += s.good_fraction * 100.0 / queries_per_bench as f64;
            minima += c.distinct_minima as f64 / queries_per_bench as f64;
            deep += c.deep_fraction * 100.0 / queries_per_bench as f64;
        }
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>9.1} {:>6.1}% {:>8.1} {:>6.1}%",
            bench.name(),
            med,
            p90,
            maxr,
            good,
            minima,
            deep
        );
        rows.push(ljqo_json::json!({
            "benchmark": bench.name(),
            "median_over_min": med,
            "p90_over_min": p90,
            "max_over_min": maxr,
            "good_fraction_pct": good,
            "distinct_minima": minima,
            "deep_fraction_pct": deep,
        }));
    }

    let out = ljqo_json::json!({ "experiment": "space_explorer", "n": n, "rows": rows });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("space_explorer.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
