//! Figure 6: the small-time-limit region (0.3N² .. 3N²) for IAI, AGI and
//! II on the larger benchmark.
//!
//! Paper's finding: AGI is the method of choice until about 1.8N²; beyond
//! that IAI takes over. The crossover happens because AGI spends its early
//! budget generating *all* augmentation states while IAI sinks time into
//! iterative-improvement descents from the first few.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};

fn main() {
    let args = Args::parse();
    let mut spec = GridSpec::new(vec![
        HeuristicKind::Method(Method::Iai),
        HeuristicKind::Method(Method::Agi),
        HeuristicKind::Method(Method::Ii),
    ]);
    spec.ns = (1..=10).map(|i| i * 10).collect();
    spec.queries_per_n = 3;
    spec.taus = vec![0.3, 0.45, 0.6, 0.9, 1.2, 1.5, 1.8, 2.4, 3.0, 9.0];
    let spec = args.apply(spec);

    let matrix = run_grid(&spec);
    let report = Report::new(
        "fig6",
        "small time limits for IAI/AGI/II, larger benchmark (9N² row is the scaling anchor)",
        matrix,
    );
    print!("{}", ljqo_bench::render_curve_table(&report));
    match ljqo_bench::write_json(&report, &args.out_dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
