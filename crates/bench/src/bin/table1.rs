//! Table 1: comparison of the five `chooseNext` criteria in the
//! augmentation heuristic, at time limits 1.5/3/6/9 · N².
//!
//! Paper's finding: criterion 3 (minimum join selectivity) is clearly
//! best; criterion 1 (minimum cardinality) worst. Scaled costs are
//! referenced against the best the full methods (IAI/AGI/II) achieve at
//! 9N², as in the paper's method comparison.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};
use ljqo_heuristics::AugmentationCriterion;

fn main() {
    let args = Args::parse();
    let mut spec = GridSpec::new(
        AugmentationCriterion::ALL
            .into_iter()
            .map(HeuristicKind::Augmentation)
            .collect(),
    );
    spec.taus = vec![1.5, 3.0, 6.0, 9.0];
    spec.reference_methods = vec![Method::Iai, Method::Agi, Method::Ii];
    let spec = args.apply(spec);

    let matrix = run_grid(&spec);
    let report = Report::new(
        "table1",
        "augmentation chooseNext criteria (1=minCard 2=maxDeg 3=minSel 4=minSize 5=minRank)",
        matrix,
    );
    print!("{}", ljqo_bench::render_curve_table(&report));
    match ljqo_bench::write_json(&report, &args.out_dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
