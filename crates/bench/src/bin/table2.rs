//! Table 2: comparison of spanning-tree weight criteria (3 = selectivity,
//! 4 = intermediate size, 5 = rank) in the KBZ heuristic, at time limits
//! 1.5/3/6/9 · N².
//!
//! Paper's finding: join selectivity (criterion 3) is the best weighting,
//! as the original KBZ paper suggested.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};
use ljqo_heuristics::MstWeight;

fn main() {
    let args = Args::parse();
    let mut spec = GridSpec::new(vec![
        HeuristicKind::Kbz(MstWeight::Selectivity),
        HeuristicKind::Kbz(MstWeight::IntermediateSize),
        HeuristicKind::Kbz(MstWeight::Rank),
    ]);
    spec.taus = vec![1.5, 3.0, 6.0, 9.0];
    spec.reference_methods = vec![Method::Iai, Method::Agi, Method::Ii];
    let spec = args.apply(spec);

    let matrix = run_grid(&spec);
    let report = Report::new(
        "table2",
        "KBZ spanning-tree weight criteria (3=selectivity 4=intermediate-size 5=rank)",
        matrix,
    );
    print!("{}", ljqo_bench::render_curve_table(&report));
    match ljqo_bench::write_json(&report, &args.out_dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
