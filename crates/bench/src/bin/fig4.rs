//! Figure 4: all nine methods on the default benchmark (N = 10..50,
//! main-memory cost model), mean scaled cost vs time limit.
//!
//! Paper's findings: IAI is superior over almost the whole range; AGI and
//! II lead below ≈1.5N²; every combination involving simulated annealing
//! (SA, SAA, SAK) is clearly inferior.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};

fn main() {
    let args = Args::parse();
    let spec = args.apply(GridSpec::new(
        Method::ALL.into_iter().map(HeuristicKind::Method).collect(),
    ));
    let matrix = run_grid(&spec);
    let report = Report::new(
        "fig4",
        "all nine methods, default benchmark, memory cost model, N=10..50",
        matrix,
    );
    print!("{}", ljqo_bench::render_curve_table(&report));
    match ljqo_bench::write_json(&report, &args.out_dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
