//! Figure 7: the five methods under the **disk-based** cost model
//! (N = 10..50, default benchmark).
//!
//! Paper's finding: no alteration in the ordering among the methods — AGI
//! preferable at small limits, IAI beyond about 1.5N² — implying the
//! characteristics of the plan space do not change significantly with the
//! cost model.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, ModelKind, Report};

fn main() {
    let args = Args::parse();
    let mut spec = GridSpec::new(
        Method::TOP_FIVE
            .into_iter()
            .map(HeuristicKind::Method)
            .collect(),
    );
    spec.model = ModelKind::Disk;
    let spec = args.apply(spec);

    let matrix = run_grid(&spec);
    let report = Report::new(
        "fig7",
        "top five methods, default benchmark, DISK cost model, N=10..50",
        matrix,
    );
    print!("{}", ljqo_bench::render_curve_table(&report));
    match ljqo_bench::write_json(&report, &args.out_dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
