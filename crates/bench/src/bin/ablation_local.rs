//! Ablation: the local-improvement strategy grid (paper §4.3).
//!
//! For each (cluster, overlap) strategy on the paper's ladder, apply local
//! improvement to random valid start states and report the mean scaled
//! cost after improvement plus the evaluations a pass consumes — the data
//! behind the paper's conclusion that only small clusters are affordable
//! and that `(5,4) ≻ (4,3) ≻ (3,2) ≻ (2,1) ≻ (2,0)` given the budget.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::eval::scaled_cost;
use ljqo_bench::Args;
use ljqo_cost::{Evaluator, MemoryCostModel};
use ljqo_heuristics::local::STRATEGY_LADDER;
use ljqo_plan::random_valid_order;
use ljqo_workload::{generate_query, Benchmark};

fn main() {
    let args = Args::parse();
    let queries_per_n = args.queries_per_n.unwrap_or(5);
    let ns = [10usize, 20, 30];
    let model = MemoryCostModel::default();

    println!("ablation_local — local improvement strategies on random starts");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>14}",
        "(c,o)", "queries", "pass evals", "scaled before", "scaled after"
    );

    let mut rows = Vec::new();
    for strategy in STRATEGY_LADDER {
        let mut before_sum = 0.0;
        let mut after_sum = 0.0;
        let mut count = 0usize;
        let mut pass_evals = 0u64;
        for &n in &ns {
            pass_evals = pass_evals.max(strategy.pass_evaluations(n + 1));
            for qi in 0..queries_per_n {
                let seed = args.seed.unwrap_or(0x10ca1) + (n as u64) * 1000 + qi as u64;
                let query = generate_query(&Benchmark::Default.spec(), n, seed);
                let comp: Vec<_> = query.rel_ids().collect();
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xabc);

                // Reference: a strong IAI run.
                let reference = {
                    let cfg = ljqo::OptimizerConfig::new(ljqo::Method::Iai).with_seed(seed);
                    ljqo::optimize(&query, &model, &cfg).cost
                };

                let mut order = random_valid_order(query.graph(), &comp, &mut rng);
                let mut ev = Evaluator::new(&query, &model);
                let before = ev.cost(&order);
                strategy.improve(&mut ev, &mut order);
                let after = ev.cost_uncharged(&order);

                before_sum += scaled_cost(before, reference);
                after_sum += scaled_cost(after, reference);
                count += 1;
            }
        }
        println!(
            "{:>8} {:>10} {:>14} {:>14.2} {:>14.2}",
            format!("({},{})", strategy.cluster, strategy.overlap),
            count,
            pass_evals,
            before_sum / count as f64,
            after_sum / count as f64,
        );
        rows.push(ljqo_json::json!({
            "cluster": strategy.cluster,
            "overlap": strategy.overlap,
            "pass_evals_n30": pass_evals,
            "scaled_before": before_sum / count as f64,
            "scaled_after": after_sum / count as f64,
        }));
    }

    let out = ljqo_json::json!({ "experiment": "ablation_local", "rows": rows });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("ablation_local.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
