//! Ablation: simulated annealing schedule parameters.
//!
//! The paper adopts the JAMS87 schedule (chains of sizeFactor·N, geometric
//! cooling). This ablation sweeps the cooling rate and the chain-length
//! multiplier to check that SA's inferiority is not an artifact of one
//! parameter choice.

use ljqo::{Method, MethodRunner};
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};

fn main() {
    let args = Args::parse();
    let variants: [(&str, f64, usize); 4] = [
        ("fast-cool", 0.80, 16),
        ("default", 0.95, 16),
        ("slow-cool", 0.99, 16),
        ("short-chain", 0.95, 4),
    ];

    for (name, cooling, size_factor) in variants {
        let mut spec = GridSpec::new(vec![
            HeuristicKind::Method(Method::Sa),
            HeuristicKind::Method(Method::Ii),
        ]);
        let mut runner = MethodRunner::default();
        runner.sa.cooling = cooling;
        runner.sa.size_factor = size_factor;
        spec.runner = runner;
        spec.taus = vec![1.5, 9.0];
        let spec = args.apply(spec);

        let matrix = run_grid(&spec);
        let report = Report::new(
            &format!("ablation_sa_{name}"),
            &format!("SA (cooling={cooling}, sizeFactor={size_factor}) vs II"),
            matrix,
        );
        print!("{}", ljqo_bench::render_curve_table(&report));
        println!();
        if let Err(e) = ljqo_bench::write_json(&report, &args.out_dir) {
            eprintln!("could not write results: {e}");
        }
    }
}
