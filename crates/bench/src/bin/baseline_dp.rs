//! Baseline: how close do the methods get to the true optimum?
//!
//! For N small enough that System-R dynamic programming is feasible
//! (the regime the paper contrasts itself against), compute the exact
//! optimal left-deep order and report each method's cost ratio to it at
//! 9N². This validates that "scaled cost ≈ 1" in the main experiments
//! really means near-optimal, not merely "as good as the other methods".

use ljqo::dp::optimal_order_dp;
use ljqo::{Method, MethodRunner, RandomSampling};
use ljqo_bench::Args;
use ljqo_cost::{Evaluator, MemoryCostModel, TimeLimit};
use ljqo_workload::{generate_query, Benchmark};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let queries_per_n = args.queries_per_n.unwrap_or(10);
    let kappa = args.kappa.unwrap_or(5.0);
    let ns = [10usize, 12, 14];
    let model = MemoryCostModel::default();
    let runner = MethodRunner::default();

    println!("baseline_dp — method cost / DP optimum at 9N² (mean over queries)");
    print!("{:>4} |", "N");
    for m in Method::ALL {
        print!(" {:>6}", m.name());
    }
    print!(" {:>6}", "RAND");
    println!();
    println!("{}", "-".repeat(6 + 7 * (Method::ALL.len() + 1)));

    let mut rows = Vec::new();
    for &n in &ns {
        let mut ratios = vec![0.0f64; Method::ALL.len() + 1];
        for qi in 0..queries_per_n {
            let seed = args.seed.unwrap_or(0xd9) + (n as u64) * 7919 + qi as u64;
            let query = generate_query(&Benchmark::Default.spec(), n, seed);
            let comp: Vec<_> = query.rel_ids().collect();
            let (_, opt) = optimal_order_dp(&query, &comp, &model).expect("n >= 2");
            let budget = TimeLimit::of(9.0).units(n, kappa);
            for (mi, m) in Method::ALL.into_iter().enumerate() {
                let mut ev = Evaluator::with_budget(&query, &model, budget);
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
                runner.run(m, &mut ev, &comp, &mut rng);
                let cost = ev.best().map(|(_, c)| c).unwrap_or(f64::INFINITY);
                ratios[mi] += (cost / opt).min(10.0);
            }
            // The SG88 strawman at the same budget: random sampling.
            let mut ev = Evaluator::with_budget(&query, &model, budget);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            RandomSampling.run(&mut ev, &comp, &mut rng);
            let cost = ev.best().map(|(_, c)| c).unwrap_or(f64::INFINITY);
            ratios[Method::ALL.len()] += (cost / opt).min(10.0);
        }
        print!("{n:>4} |");
        let mut row = Vec::new();
        for r in &ratios {
            let mean = r / queries_per_n as f64;
            print!(" {mean:>6.3}");
            row.push(mean);
        }
        println!();
        rows.push(ljqo_json::json!({ "n": n, "ratio_to_optimum": row }));
    }

    let out = ljqo_json::json!({
        "experiment": "baseline_dp",
        "methods": Method::ALL.iter().map(|m| m.name()).chain(std::iter::once("RAND")).collect::<Vec<_>>(),
        "rows": rows,
    });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("baseline_dp.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
