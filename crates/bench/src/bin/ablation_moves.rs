//! Ablation: move-set composition.
//!
//! DESIGN.md calls out the move set as a load-bearing design choice: the
//! paper's SG88 search uses simple swap perturbations, while richer moves
//! (3-cycles, single-relation reinsertion) make iterative improvement
//! markedly stronger and *flatten* the differences between methods. This
//! ablation runs IAI, AGI and II under three compositions:
//!
//! * `swaps`    — the default (adjacent + arbitrary swaps),
//! * `composite`— swaps + 3-cycles + reinsertions,
//! * `adjacent` — adjacent swaps only (weakest connectivity).

use ljqo::{Method, MethodRunner};
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind, Report};
use ljqo_plan::MoveSet;

fn main() {
    let args = Args::parse();
    let compositions: [(&str, MoveSet); 3] = [
        ("swaps", MoveSet::swaps_only()),
        (
            "composite",
            MoveSet {
                adjacent_swap: 0.25,
                swap: 0.35,
                three_cycle: 0.2,
                reinsert: 0.2,
            },
        ),
        (
            "adjacent",
            MoveSet {
                adjacent_swap: 1.0,
                swap: 0.0,
                three_cycle: 0.0,
                reinsert: 0.0,
            },
        ),
    ];

    for (name, move_set) in compositions {
        let mut spec = GridSpec::new(vec![
            HeuristicKind::Method(Method::Iai),
            HeuristicKind::Method(Method::Agi),
            HeuristicKind::Method(Method::Ii),
        ]);
        let mut runner = MethodRunner::default();
        runner.ii.move_set = move_set;
        runner.sa.move_set = move_set;
        spec.runner = runner;
        spec.taus = vec![0.3, 1.5, 9.0];
        let spec = args.apply(spec);

        let matrix = run_grid(&spec);
        let report = Report::new(
            &format!("ablation_moves_{name}"),
            &format!("IAI/AGI/II under the '{name}' move set"),
            matrix,
        );
        print!("{}", ljqo_bench::render_curve_table(&report));
        println!();
        if let Err(e) = ljqo_bench::write_json(&report, &args.out_dir) {
            eprintln!("could not write results: {e}");
        }
    }
}
