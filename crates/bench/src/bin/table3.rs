//! Table 3: the five methods across the nine benchmark variations of §5,
//! at the time limit 9N² (memory cost model).
//!
//! Paper's finding: IAI is the method of choice irrespective of the
//! benchmark.

use ljqo::Method;
use ljqo_bench::{run_grid, Args, GridSpec, HeuristicKind};
use ljqo_workload::Benchmark;

fn main() {
    let args = Args::parse();
    let methods = [
        Method::Iai,
        Method::Ial,
        Method::Agi,
        Method::Kbi,
        Method::Ii,
    ];

    println!("table3 — five methods across benchmark variations, at 9N²");
    print!("{:>3} {:<18} |", "#", "benchmark");
    for m in methods {
        print!(" {:>6}", m.name());
    }
    println!();
    println!("{}", "-".repeat(24 + 7 * methods.len()));

    let mut rows = Vec::new();
    for bench in Benchmark::VARIATIONS {
        let mut spec = GridSpec::new(methods.into_iter().map(HeuristicKind::Method).collect());
        spec.benchmark = bench;
        spec.taus = vec![9.0];
        let spec = args.apply(spec);
        let matrix = run_grid(&spec);

        print!("{:>3} {:<18} |", bench.number(), bench.name());
        let mut row = Vec::new();
        for (ci, _) in methods.iter().enumerate() {
            let s = matrix.mean_scaled(ci, 0);
            print!(" {s:>6.2}");
            row.push(s);
        }
        println!();
        rows.push(ljqo_json::json!({
            "benchmark": bench.name(),
            "number": bench.number(),
            "mean_scaled": row,
        }));
    }

    let out = ljqo_json::json!({
        "experiment": "table3",
        "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
        "rows": rows,
    });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("table3.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
