//! Extension experiment: multiple join methods (paper §7 future work).
//!
//! Optimizes the same queries under the pure-hash memory model and under
//! the multi-method model (hash / nested-loop / sort-merge, cheapest per
//! join), then reports (a) how much the extra methods save, (b) the mix
//! of methods chosen in the winning plans, and (c) that the IAI-vs-SA
//! ranking is unchanged — the paper's cost-model-independence claim
//! extended to its own proposed extension.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo::{Method, MethodRunner};
use ljqo_bench::Args;
use ljqo_cost::{
    CostModel, Evaluator, JoinMethod, MemoryCostModel, MultiMethodCostModel, TimeLimit,
};
use ljqo_workload::{generate_query, Benchmark};

fn main() {
    let args = Args::parse();
    let queries_per_n = args.queries_per_n.unwrap_or(5);
    let kappa = args.kappa.unwrap_or(5.0);
    let runner = MethodRunner::default();
    let hash = MemoryCostModel::default();
    let multi = MultiMethodCostModel::default();

    println!("ext_multimethod — optimizing under hash-only vs multi-method cost models");
    println!(
        "{:>4} {:>14} {:>14} {:>8}   {:>6} {:>6} {:>6}   {:>9}",
        "N", "hash cost", "multi cost", "saving", "hash", "nl", "merge", "SA/IAI"
    );

    let mut rows = Vec::new();
    for n in [10usize, 30, 50] {
        let mut hash_sum = 0.0;
        let mut multi_sum = 0.0;
        let mut mix = [0usize; 3];
        let mut sa_over_iai = 0.0;
        for qi in 0..queries_per_n {
            let seed = args.seed.unwrap_or(0x3f) + (n as u64) * 131 + qi as u64;
            let query = generate_query(&Benchmark::Default.spec(), n, seed);
            let comp: Vec<_> = query.rel_ids().collect();
            let budget = TimeLimit::of(9.0).units(n, kappa);

            let optimize_under = |model: &dyn CostModel, method: Method| -> (f64, Vec<_>) {
                let mut ev = Evaluator::with_budget(&query, model, budget);
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xa1);
                runner.run(method, &mut ev, &comp, &mut rng);
                let (order, cost) = ev.best().expect("method produced a state");
                (cost, order.rels().to_vec())
            };

            let (hc, _) = optimize_under(&hash, Method::Iai);
            let (mc, morder) = optimize_under(&multi, Method::Iai);
            hash_sum += hc;
            multi_sum += mc;
            for (_, method) in multi.annotate(&query, &morder) {
                mix[match method {
                    JoinMethod::Hash => 0,
                    JoinMethod::NestedLoop => 1,
                    JoinMethod::SortMerge => 2,
                }] += 1;
            }

            let (sa_cost, _) = optimize_under(&multi, Method::Sa);
            sa_over_iai += (sa_cost / mc).clamp(0.1, 10.0) / queries_per_n as f64;
        }
        let total_joins: usize = mix.iter().sum();
        let pct = |k: usize| 100.0 * mix[k] as f64 / total_joins.max(1) as f64;
        println!(
            "{:>4} {:>14.4e} {:>14.4e} {:>7.1}%   {:>5.1}% {:>5.1}% {:>5.1}%   {:>9.3}",
            n,
            hash_sum / queries_per_n as f64,
            multi_sum / queries_per_n as f64,
            100.0 * (1.0 - multi_sum / hash_sum),
            pct(0),
            pct(1),
            pct(2),
            sa_over_iai,
        );
        rows.push(ljqo_json::json!({
            "n": n,
            "hash_mean_cost": hash_sum / queries_per_n as f64,
            "multi_mean_cost": multi_sum / queries_per_n as f64,
            "method_mix_pct": ljqo_json::json!({
                "hash": pct(0), "nested_loop": pct(1), "sort_merge": pct(2)
            }),
            "sa_over_iai": sa_over_iai,
        }));
    }
    println!(
        "\nSA/IAI > 1 under the multi-method model: the paper's ranking is cost-model-robust."
    );

    let out = ljqo_json::json!({ "experiment": "ext_multimethod", "rows": rows });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("ext_multimethod.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
