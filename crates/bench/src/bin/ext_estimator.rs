//! Extension experiment: static vs distinct-propagating cardinality
//! estimation, judged against executed ground truth.
//!
//! For each benchmark the mini engine executes random valid plans over
//! synthetic data and both estimators predict every intermediate size;
//! we report the geometric q-error (multiplicative estimation error) of
//! each. The propagating estimator should never be worse and should win
//! clearly on graphs where join columns are reused (star/dense).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_bench::Args;
use ljqo_cost::estimate::intermediate_sizes;
use ljqo_cost::propagate::intermediate_sizes_propagated;
use ljqo_exec::{generate_data, ExecutionEngine};
use ljqo_plan::random_valid_order;
use ljqo_workload::{generate_query, Benchmark, CardinalityDist, QuerySpec};

fn geo_q_error(estimates: &[f64], measured: &[usize]) -> (f64, usize) {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&e, &m) in estimates.iter().zip(measured) {
        if m >= 5 {
            sum += (e / m as f64).ln().abs();
            n += 1;
        }
    }
    (
        if n == 0 {
            f64::NAN
        } else {
            (sum / n as f64).exp()
        },
        n,
    )
}

fn main() {
    let args = Args::parse();
    let queries_per_bench = args.queries_per_n.unwrap_or(4);
    let plans_per_query = 4;
    let n_joins = 8; // execution must stay cheap

    println!("ext_estimator — geometric q-error vs executed ground truth (N={n_joins})");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>8}",
        "benchmark", "steps", "static", "propagated", "better?"
    );

    let mut rows = Vec::new();
    for bench in [
        Benchmark::Default,
        Benchmark::GraphDense,
        Benchmark::GraphStar,
        Benchmark::GraphChain,
    ] {
        // Shrink cardinalities so execution is fast but keep the
        // benchmark's graph shape and distinct distributions.
        let spec = QuerySpec {
            cardinalities: CardinalityDist::Uniform(50, 2_000),
            ..bench.spec()
        };
        let engine = ExecutionEngine {
            max_rows: 2_000_000,
        };
        let mut static_sum = 0.0;
        let mut prop_sum = 0.0;
        let mut steps = 0usize;
        let mut batches = 0usize;
        for qi in 0..queries_per_bench {
            let seed = args.seed.unwrap_or(0xe57) + qi as u64;
            let query = generate_query(&spec, n_joins, seed);
            let data = generate_data(&query, seed ^ 0xda7a);
            let comp: Vec<_> = query.rel_ids().collect();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x9);
            for _ in 0..plans_per_query {
                let order = random_valid_order(query.graph(), &comp, &mut rng);
                let Ok(stats) = engine.execute(&query, &data, order.rels()) else {
                    continue;
                };
                let s = intermediate_sizes(&query, order.rels());
                let p = intermediate_sizes_propagated(&query, order.rels());
                let (qs, ns) = geo_q_error(&s, &stats.intermediate_rows);
                let (qp, np) = geo_q_error(&p, &stats.intermediate_rows);
                if ns > 0 && np > 0 {
                    static_sum += qs.ln();
                    prop_sum += qp.ln();
                    steps += ns;
                    batches += 1;
                }
            }
        }
        let static_geo = (static_sum / batches.max(1) as f64).exp();
        let prop_geo = (prop_sum / batches.max(1) as f64).exp();
        println!(
            "{:<18} {:>10} {:>12.3} {:>12.3} {:>8}",
            bench.name(),
            steps,
            static_geo,
            prop_geo,
            if prop_geo <= static_geo * 1.001 {
                "yes"
            } else {
                "no"
            }
        );
        rows.push(ljqo_json::json!({
            "benchmark": bench.name(),
            "static_geo_q_error": static_geo,
            "propagated_geo_q_error": prop_geo,
            "comparable_steps": steps,
        }));
    }

    let out = ljqo_json::json!({ "experiment": "ext_estimator", "rows": rows });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("ext_estimator.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
