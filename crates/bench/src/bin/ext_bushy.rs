//! Extension experiment: linear vs bushy join trees — the paper's open
//! problem.
//!
//! §2 restricts the search to outer linear trees on the *assumption*
//! that enough low-cost trees are linear, noting that "the validation of
//! this assumption is an open problem". For components small enough to
//! solve exactly, this binary computes both the linear-tree optimum
//! (System-R DP) and the bushy-tree optimum (`O(3^k)` DP) and reports
//! the ratio — per benchmark shape, since stars and chains constrain the
//! tree shapes very differently.

use ljqo::bushy::{optimal_bushy_dp, BUSHY_MAX_RELATIONS};
use ljqo::dp::optimal_order_dp;
use ljqo_bench::Args;
use ljqo_cost::{DiskCostModel, MemoryCostModel};
use ljqo_workload::{generate_query, Benchmark};

fn main() {
    let args = Args::parse();
    let queries_per_bench = args.queries_per_n.unwrap_or(8);
    // N relations = joins + 1 must fit the exact bushy DP.
    let max_joins = BUSHY_MAX_RELATIONS - 1;
    let n_joins = match args.joins {
        Some(j) if j > max_joins => {
            eprintln!(
                "--joins {j} exceeds the exact bushy DP limit of \
                 {BUSHY_MAX_RELATIONS} relations; clamping to {max_joins} joins \
                 (use the bushy_search bench for larger N)"
            );
            max_joins
        }
        Some(j) => j.max(1),
        None => 12,
    };
    let memory = MemoryCostModel::default();
    let disk = DiskCostModel::default();

    println!(
        "ext_bushy — linear-tree optimum / bushy-tree optimum at N={n_joins} \
         (1.000 = linear is exactly optimal)"
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12}",
        "benchmark", "mean(mem)", "max(mem)", "mean(disk)", "bushy wins"
    );

    let mut rows = Vec::new();
    for bench in [
        Benchmark::Default,
        Benchmark::GraphDense,
        Benchmark::GraphStar,
        Benchmark::GraphChain,
        Benchmark::DistinctFewer,
    ] {
        let mut mem_sum = 0.0;
        let mut mem_max = 1.0f64;
        let mut disk_sum = 0.0;
        let mut wins = 0usize;
        for qi in 0..queries_per_bench {
            let seed = args.seed.unwrap_or(0xb5) + qi as u64;
            let query = generate_query(&bench.spec(), n_joins, seed);
            let comp: Vec<_> = query.rel_ids().collect();

            let (_, lin_m) = optimal_order_dp(&query, &comp, &memory).unwrap();
            // The bushy DP returns typed errors for oversized or
            // disconnected inputs; neither can occur here (joins are
            // clamped above, generated queries are connected), so an
            // error is a real bug worth surfacing.
            let (tree, bush_m) = optimal_bushy_dp(&query, &comp, &memory)
                .expect("bushy DP rejected a clamped, connected query")
                .expect("generated queries have at least two relations");
            let ratio_m = lin_m / bush_m;
            mem_sum += ratio_m;
            mem_max = mem_max.max(ratio_m);
            if !tree.is_linear() && ratio_m > 1.0 + 1e-9 {
                wins += 1;
            }

            let (_, lin_d) = optimal_order_dp(&query, &comp, &disk).unwrap();
            let (_, bush_d) = optimal_bushy_dp(&query, &comp, &disk)
                .expect("bushy DP rejected a clamped, connected query")
                .expect("generated queries have at least two relations");
            disk_sum += lin_d / bush_d;
        }
        let q = queries_per_bench as f64;
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>9}/{}",
            bench.name(),
            mem_sum / q,
            mem_max,
            disk_sum / q,
            wins,
            queries_per_bench
        );
        rows.push(ljqo_json::json!({
            "benchmark": bench.name(),
            "mean_ratio_memory": mem_sum / q,
            "max_ratio_memory": mem_max,
            "mean_ratio_disk": disk_sum / q,
            "bushy_strictly_better": wins,
            "queries": queries_per_bench,
        }));
    }
    println!(
        "\nratios near 1.0 support the paper's linear-tree assumption for these\n\
         benchmarks; larger ratios mark shapes where bushy plans genuinely help."
    );

    let out = ljqo_json::json!({ "experiment": "ext_bushy", "n": n_joins, "rows": rows });
    std::fs::create_dir_all(&args.out_dir).ok();
    let path = args.out_dir.join("ext_bushy.json");
    match std::fs::write(&path, out.to_string_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
