//! Differential properties of the bushy search space.
//!
//! The bushy stack makes three strong promises, each tested here across
//! randomized catalogs with the seeded-RNG idiom (one derived seed per
//! case, failures reproduce exactly):
//!
//! 1. **Structural safety** — every tree move, accepted or undone,
//!    preserves the leaf multiset and cross-product-freedom, and the
//!    arena stays internally consistent ([`TreePlan::audit`]).
//! 2. **Bit-identity** — the path-to-root incremental re-cost equals a
//!    full bottom-up re-cost bit for bit, on every move, under every
//!    cost model; and on left-deep trees the tree recurrence equals the
//!    linear [`CostModel::order_cost`] walk bit for bit, so linear and
//!    bushy runs are priced on exactly the same scale.
//! 3. **Quality** — on exactly-solvable instances BUSHYII lands within
//!    an asserted gap of the certified bushy optimum, and the DP's
//!    typed errors ([`OptError::ComponentTooLarge`],
//!    [`OptError::DisconnectedComponent`]) surface for precisely the
//!    inputs that deserve them.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo::catalog::CompiledQuery;
use ljqo::cost::{sanitize_cost, MultiMethodCostModel, TreeEvaluator};
use ljqo::plan::{random_valid_order, TreeMoveSet, TreePlan};
use ljqo::prelude::*;

const CASES: u64 = 16;

/// A query with exactly `n_components` join-graph components, each a
/// small random tree (possibly a singleton relation).
fn component_query(rng: &mut SmallRng, n_components: usize) -> Query {
    let mut b = QueryBuilder::new();
    let mut names: Vec<Vec<String>> = Vec::new();
    for c in 0..n_components {
        let size = if rng.gen_bool(0.2) {
            1
        } else {
            rng.gen_range(2usize..6)
        };
        let mut comp = Vec::new();
        for i in 0..size {
            let name = format!("c{c}_r{i}");
            b = b.relation(&name, rng.gen_range(10u64..100_000));
            comp.push(name);
        }
        names.push(comp);
    }
    for comp in &names {
        for i in 1..comp.len() {
            let j = rng.gen_range(0..i);
            b = b.join(&comp[j], &comp[i], 10f64.powf(rng.gen_range(-4.0..-0.5)));
        }
    }
    b.build().unwrap()
}

/// A connected random tree-shaped query over `n` relations.
fn connected_query(rng: &mut SmallRng, n: usize) -> Query {
    let mut b = QueryBuilder::new();
    for i in 0..n {
        b = b.relation(format!("r{i}"), rng.gen_range(10u64..100_000));
    }
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b = b.join(
            &format!("r{j}"),
            &format!("r{i}"),
            10f64.powf(rng.gen_range(-4.0..-0.5)),
        );
    }
    b.build().unwrap()
}

fn models() -> Vec<(&'static str, Box<dyn CostModel + Sync>)> {
    vec![
        ("memory", Box::new(MemoryCostModel::default())),
        ("disk", Box::new(DiskCostModel::default())),
        ("multi", Box::new(MultiMethodCostModel::default())),
    ]
}

fn sorted(mut v: Vec<RelId>) -> Vec<RelId> {
    v.sort();
    v
}

#[test]
fn tree_moves_preserve_leaves_and_cross_product_freedom() {
    // Random 1–4-component catalogs; on every component with at least
    // two relations, a long randomized accept/undo walk never breaks
    // the arena invariants.
    let moves = TreeMoveSet::default();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xb000_0001 ^ case);
        let n_components = rng.gen_range(1usize..5);
        let q = component_query(&mut rng, n_components);
        let compiled = CompiledQuery::new(&q);
        for comp in q.graph().components() {
            if comp.len() < 2 {
                continue;
            }
            let order = random_valid_order(q.graph(), &comp, &mut rng);
            let mut plan = TreePlan::from_order(&compiled, order.rels());
            let want_leaves = sorted(plan.leaves());
            for step in 0..200 {
                if plan.propose(&moves, &mut rng).is_none() {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    plan.accept();
                } else {
                    plan.undo_last();
                }
                plan.audit(&compiled)
                    .unwrap_or_else(|e| panic!("case {case} step {step}: audit failed: {e}"));
                assert_eq!(
                    sorted(plan.leaves()),
                    want_leaves,
                    "case {case} step {step}: leaf multiset changed"
                );
                assert!(
                    plan.is_cross_product_free(),
                    "case {case} step {step}: a cross product appeared"
                );
            }
        }
    }
}

#[test]
fn incremental_recost_is_bit_identical_to_full_under_every_model() {
    // The promise debug builds assert on every move, re-checked here
    // explicitly so release runs (CI's release test step) cover it too,
    // under all three cost models.
    let moves = TreeMoveSet::default();
    for (name, model) in models() {
        for case in 0..CASES {
            let mut rng = SmallRng::seed_from_u64(0xb000_0002 ^ case);
            let n = rng.gen_range(4usize..10);
            let q = connected_query(&mut rng, n);
            let comp: Vec<RelId> = q.rel_ids().collect();
            let compiled = Arc::new(CompiledQuery::new(&q));
            let order = random_valid_order(q.graph(), &comp, &mut rng);
            let plan = TreePlan::from_order(&compiled, order.rels());
            let mut te = TreeEvaluator::new(model.as_ref(), Arc::clone(&compiled), plan);
            for step in 0..150 {
                let current = te.current_cost();
                if te.propose(&moves, &mut rng).is_none() {
                    continue;
                }
                let incremental = te.eval_pending();
                let full = te.full_cost();
                assert_eq!(
                    incremental.to_bits(),
                    full.to_bits(),
                    "{name} case {case} step {step}: {incremental:e} vs {full:e}"
                );
                if incremental <= current {
                    te.commit();
                } else {
                    te.rollback();
                }
            }
        }
    }
}

#[test]
fn left_deep_trees_price_exactly_like_the_linear_walk() {
    // The scale-identity that makes linear-vs-bushy comparisons honest:
    // a left-deep tree through the tree evaluator costs bit-for-bit
    // what the linear `order_cost` walk says, under every model.
    for (name, model) in models() {
        for case in 0..CASES {
            let mut rng = SmallRng::seed_from_u64(0xb000_0003 ^ case);
            let n = rng.gen_range(2usize..12);
            let q = connected_query(&mut rng, n);
            let comp: Vec<RelId> = q.rel_ids().collect();
            let compiled = Arc::new(CompiledQuery::new(&q));
            for _ in 0..8 {
                let order = random_valid_order(q.graph(), &comp, &mut rng);
                let plan = TreePlan::from_order(&compiled, order.rels());
                let mut te = TreeEvaluator::new(model.as_ref(), Arc::clone(&compiled), plan);
                let tree_cost = te.full_cost();
                let walk_cost = sanitize_cost(model.order_cost(&q, order.rels()));
                assert_eq!(
                    tree_cost.to_bits(),
                    walk_cost.to_bits(),
                    "{name} case {case}: tree {tree_cost:e} vs walk {walk_cost:e}"
                );
            }
        }
    }
}

#[test]
fn bushy_ii_stays_within_the_asserted_gap_of_the_dp() {
    // Exactly-solvable random instances: the searched tree must land
    // within a small constant of the certified bushy optimum.
    const MAX_GAP: f64 = 0.5;
    let model = MemoryCostModel::default();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xb000_0004 ^ case);
        let n = rng.gen_range(4usize..11);
        let q = connected_query(&mut rng, n);
        let comp: Vec<RelId> = q.rel_ids().collect();
        let r = try_optimize_bushy(
            &q,
            &model,
            &OptimizerConfig::new(Method::BushyIi).with_seed(case),
        )
        .unwrap();
        assert_eq!(r.degradation, Degradation::None, "case {case}");
        let gap = bushy_gap_vs_dp(&q, &model, &comp, r.cost)
            .expect("small connected components fit the bushy DP")
            .expect("components here have at least two relations");
        // The DP picks its optimum under its own summation order, so a
        // float-tied search tree can price an ulp *below* the re-costed
        // DP tree — tolerate that, never a materially negative gap.
        assert!(
            (-1e-9..=MAX_GAP).contains(&gap),
            "case {case}: gap {gap} outside [-1e-9, {MAX_GAP}]"
        );
    }
}

#[test]
fn dp_typed_errors_fire_for_exactly_the_inputs_that_deserve_them() {
    let model = MemoryCostModel::default();
    let mut rng = SmallRng::seed_from_u64(0xb000_0005);

    // Oversized component: a connected chain one past the DP limit.
    let big = connected_query(&mut rng, ljqo::bushy::BUSHY_MAX_RELATIONS + 1);
    let comp: Vec<RelId> = big.rel_ids().collect();
    match optimal_bushy_dp(&big, &comp, &model) {
        Err(OptError::ComponentTooLarge { n_relations, limit }) => {
            assert_eq!(n_relations, comp.len());
            assert_eq!(limit, ljqo::bushy::BUSHY_MAX_RELATIONS);
        }
        other => panic!("expected ComponentTooLarge, got {other:?}"),
    }
    // The gap helper propagates the same typed error.
    assert!(matches!(
        bushy_gap_vs_dp(&big, &model, &comp, 1.0),
        Err(OptError::ComponentTooLarge { .. })
    ));

    // A "component" spanning two real components is disconnected.
    let two = component_query(&mut rng, 2);
    let all: Vec<RelId> = two.rel_ids().collect();
    if two.graph().components().len() == 2 {
        match optimal_bushy_dp(&two, &all, &model) {
            Err(OptError::DisconnectedComponent { n_relations }) => {
                assert_eq!(n_relations, all.len());
            }
            other => panic!("expected DisconnectedComponent, got {other:?}"),
        }
    }

    // Singletons are not an error: there is simply nothing to join.
    let single = component_query(&mut rng, 1);
    let first = single.rel_ids().next().unwrap();
    assert!(matches!(
        optimal_bushy_dp(&single, &[first], &model),
        Ok(None)
    ));
}
