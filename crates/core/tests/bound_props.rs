//! Soundness of the LP-style lower-bound certifier (`ljqo::bound`).
//!
//! The certifier's one obligation is admissibility: on every instance,
//! `linear ≤` the exact left-deep DP optimum and `tree ≤` the exact
//! bushy DP optimum. These tests check that obligation against 200
//! seeded random catalogs per model — chains, stars, and random trees
//! with one to four components — at sizes where the DPs are exact
//! (`N ≤ 14` linear, `N ≤ 18` bushy... kept smaller per-case so 200
//! cases stay fast; a few pinned cases exercise the upper sizes).
//!
//! Offline property-test idiom: seeded-RNG loops, one derived seed per
//! case, failures reproduce exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo::cost::MultiMethodCostModel;
use ljqo::prelude::*;

const CASES: u64 = 200;

/// A connected random query of `n` relations: a random spanning tree
/// plus a few chords, selectivities spanning five orders of magnitude.
fn random_query(rng: &mut SmallRng, n: usize) -> Query {
    let mut b = QueryBuilder::new();
    for i in 0..n {
        b = b.relation(format!("r{i}"), rng.gen_range(1u64..1_000_000));
    }
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b = b.join(
            &format!("r{j}"),
            &format!("r{i}"),
            10f64.powf(rng.gen_range(-5.0..0.0)),
        );
    }
    // Chords make some subsets see several selectivities at once — the
    // case where the "multiply ALL shrinking selectivities" relaxation
    // actually under-shoots.
    let chords = rng.gen_range(0..=n / 3);
    for _ in 0..chords {
        let a = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if a != c {
            b = b.join(
                &format!("r{a}"),
                &format!("r{c}"),
                10f64.powf(rng.gen_range(-5.0..0.0)),
            );
        }
    }
    b.build().unwrap()
}

fn models() -> Vec<(&'static str, Box<dyn CostModel + Sync>)> {
    vec![
        ("memory", Box::new(MemoryCostModel::default())),
        ("disk", Box::new(DiskCostModel::default())),
        ("multi", Box::new(MultiMethodCostModel::default())),
    ]
}

fn assert_sound(tag: &str, q: &Query, model: &dyn CostModel) {
    for comp in q.graph().components() {
        let b = component_bound(q, model, &comp);
        if let Some((order, dp_cost)) = optimal_order_dp(q, &comp, model) {
            assert!(
                b.linear <= dp_cost * (1.0 + 1e-12) + 1e-9,
                "{tag}: linear bound {} exceeds linear DP optimum {dp_cost} (order {order:?})",
                b.linear
            );
        }
        if comp.len() <= 18 {
            if let Ok(Some((tree, dp_cost))) = optimal_bushy_dp(q, &comp, model) {
                // Compare against the arena re-costing (the same fold the
                // searches use); the DP's own fold may differ in the last
                // bits.
                let recost = bushy_tree_cost(q, model, &tree);
                let optimum = dp_cost.min(recost);
                assert!(
                    b.tree <= optimum * (1.0 + 1e-12) + 1e-9,
                    "{tag}: tree bound {} exceeds bushy DP optimum {optimum}",
                    b.tree
                );
                // A bushy bound must also hold on the *linear* optimum.
                if let Some((_, lin)) = optimal_order_dp(q, &comp, model) {
                    assert!(
                        b.tree <= lin * (1.0 + 1e-12) + 1e-9,
                        "{tag}: tree bound {} exceeds linear optimum {lin}",
                        b.tree
                    );
                }
            }
        }
    }
}

#[test]
fn bound_is_admissible_on_200_random_catalogs() {
    for (name, model) in models() {
        for case in 0..CASES {
            let mut rng = SmallRng::seed_from_u64(0xb0cd_0001 ^ (case << 8));
            let n = rng.gen_range(2usize..=10);
            let q = random_query(&mut rng, n);
            assert_sound(&format!("{name}/case{case}/n{n}"), &q, model.as_ref());
        }
    }
}

#[test]
fn bound_is_admissible_at_dp_size_limits() {
    // The largest sizes the exact DPs handle comfortably: N = 14 linear,
    // N = 18 bushy (bushy only priced when the component is ≤ 18).
    for (name, model) in models() {
        for (case, n) in [(0u64, 14usize), (1, 16), (2, 18)] {
            let mut rng = SmallRng::seed_from_u64(0x0b0c_da11 ^ case);
            let q = random_query(&mut rng, n);
            assert_sound(&format!("{name}/limit/n{n}"), &q, model.as_ref());
        }
    }
}

#[test]
fn bound_is_admissible_on_multi_component_catalogs() {
    let model = MemoryCostModel::default();
    for case in 0..50u64 {
        let mut rng = SmallRng::seed_from_u64(0x00b0_cdc0 ^ (case << 4));
        let n_components = rng.gen_range(1usize..=4);
        let mut b = QueryBuilder::new();
        let mut names: Vec<Vec<String>> = Vec::new();
        for c in 0..n_components {
            let size = rng.gen_range(1usize..6);
            let mut comp = Vec::new();
            for i in 0..size {
                let name = format!("c{c}_r{i}");
                b = b.relation(&name, rng.gen_range(10u64..100_000));
                comp.push(name);
            }
            names.push(comp);
        }
        for comp in &names {
            for i in 1..comp.len() {
                let j = rng.gen_range(0..i);
                b = b.join(&comp[j], &comp[i], 10f64.powf(rng.gen_range(-4.0..-0.5)));
            }
        }
        let q = b.build().unwrap();
        assert_sound(&format!("multi/case{case}"), &q, &model);

        // The whole-query report must also stay below any end-to-end
        // plan the driver produces (cross products only add cost).
        let whole = bound_report(&q, &model);
        let opt = try_optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_seed(case),
        )
        .expect("driver must produce a plan");
        assert!(
            whole.linear <= opt.cost * (1.0 + 1e-12) + 1e-9,
            "multi/case{case}: whole-query bound {} exceeds driver cost {}",
            whole.linear,
            opt.cost
        );
    }
}
