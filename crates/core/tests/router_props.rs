//! Property tests for the learned portfolio router: the never-worse
//! contract at equal budget, share determinism, the ε exploration
//! floor, and relabel-invariance of the class assignment.

use std::sync::Arc;

use ljqo::cache::{classify, BanditRouter, RouterConfig};
use ljqo::parallel::PORTFOLIO;
use ljqo::prelude::*;
use ljqo_workload::{generate_job_query, JobShape, JobSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn job_query(shape: JobShape, n_joins: usize, seed: u64) -> Query {
    generate_job_query(&JobSpec::new(shape), n_joins, seed)
}

fn portfolio_arms() -> Vec<&'static str> {
    PORTFOLIO.iter().map(|m| m.name()).collect()
}

/// The acceptance contract: a router *warmed on a class* must never
/// return a worse plan than the uniform portfolio for queries of that
/// class at equal total budget. Structure mirrors the robustness
/// suite's 18-cell grid: every shape × two sizes × three seeds, each
/// cell with its own router trained online through the routed driver
/// itself (the same code path a server exercises).
#[test]
fn routed_portfolio_is_never_worse_than_uniform_at_equal_budget() {
    let model = MemoryCostModel::default();
    let arms = portfolio_arms();
    let mut checked = 0usize;
    for (i, shape) in JobShape::ALL.into_iter().enumerate() {
        for n_joins in [12usize, 14] {
            for seed in 0..3u64 {
                let cell = 0x0b5e_0006 ^ ((i as u64) << 12) ^ ((n_joins as u64) << 4) ^ seed;
                let config = OptimizerConfig::new(Method::Ii)
                    .with_seed(seed)
                    .with_time_limit(5.0);
                let router = Arc::new(BanditRouter::new(&arms, RouterConfig::default()));
                let routed_par =
                    Parallelism::portfolio(PORTFOLIO.len()).with_router(Arc::clone(&router));
                // Warm the class through the routed driver itself:
                // comfortably past min_events (eight) so the boosted
                // arm reflects the class, not one noisy instance.
                for t in 0..15u64 {
                    let train = job_query(shape, n_joins, cell ^ (0xa000 + t));
                    try_optimize_parallel(&train, &model, &config, &routed_par).unwrap();
                }
                let eval = job_query(shape, n_joins, cell);
                let uniform = try_optimize_parallel(
                    &eval,
                    &model,
                    &config,
                    &Parallelism::portfolio(PORTFOLIO.len()),
                )
                .unwrap();
                let routed = try_optimize_parallel(&eval, &model, &config, &routed_par).unwrap();
                assert!(
                    routed.cost <= uniform.cost,
                    "{shape:?} n={n_joins} seed={seed}: routed {} > uniform {}",
                    routed.cost,
                    uniform.cost
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 18);
}

/// A cold router must be *bit-identical* to the uniform portfolio —
/// same plan, same cost — because below `min_events` it emits the
/// uniform share vector and the weighted driver delegates wholesale.
#[test]
fn cold_router_is_bit_identical_to_the_uniform_portfolio() {
    let model = MemoryCostModel::default();
    let arms = portfolio_arms();
    for (i, shape) in JobShape::ALL.into_iter().enumerate() {
        let q = job_query(shape, 13, 0x0b5e_0007 ^ i as u64);
        let config = OptimizerConfig::new(Method::Ii)
            .with_seed(7)
            .with_time_limit(3.0);
        let router = Arc::new(BanditRouter::new(&arms, RouterConfig::default()));
        let uniform =
            try_optimize_parallel(&q, &model, &config, &Parallelism::portfolio(4)).unwrap();
        let routed = try_optimize_parallel(
            &q,
            &model,
            &config,
            &Parallelism::portfolio(4).with_router(router),
        )
        .unwrap();
        assert_eq!(routed.cost, uniform.cost, "{shape:?}");
        assert_eq!(
            format!("{:?}", routed.plan),
            format!("{:?}", uniform.plan),
            "{shape:?}: cold-routed plan differs from uniform"
        );
    }
}

/// Two routers fed the identical outcome stream emit identical share
/// vectors — routing is a pure function of the observed history.
#[test]
fn shares_are_deterministic_in_the_event_stream() {
    let arms = portfolio_arms();
    for case in 0..16u64 {
        let a = BanditRouter::new(&arms, RouterConfig::default());
        let b = BanditRouter::new(&arms, RouterConfig::default());
        let mut rng = SmallRng::seed_from_u64(0x0b5e_0008 ^ case);
        let class = classify(&job_query(
            JobShape::ALL[case as usize % 3],
            10 + (case as usize % 5),
            case,
        ));
        for _ in 0..rng.gen_range(1..40usize) {
            let costs: Vec<Option<f64>> = (0..4)
                .map(|_| {
                    if rng.gen_bool(0.85) {
                        Some(rng.gen_range(1.0..1e6f64))
                    } else {
                        None
                    }
                })
                .collect();
            let units: Vec<u64> = (0..4).map(|_| rng.gen_range(0..5000)).collect();
            let winner = if rng.gen_bool(0.9) {
                Some(rng.gen_range(0..4usize))
            } else {
                None
            };
            a.record_outcome(&class, &costs, &units, winner);
            b.record_outcome(&class, &costs, &units, winner);
        }
        assert_eq!(
            a.shares(&class),
            b.shares(&class),
            "case {case}: identical histories, different shares"
        );
        assert_eq!(a.snapshot(), b.snapshot(), "case {case}");
    }
}

/// On arbitrary outcome streams the emitted shares always form a
/// distribution that honors the ε floor: every arm keeps at least the
/// effective ε, the boosted arm keeps at least the uniform share, and
/// the vector sums to one.
#[test]
fn epsilon_floor_holds_on_random_event_streams() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0x0b5e_0009 ^ case);
        let epsilon = rng.gen_range(0.0..0.6f64); // deliberately allows ε > 1/K
        let config = RouterConfig {
            epsilon,
            ..RouterConfig::default()
        };
        let arms = portfolio_arms();
        let router = BanditRouter::new(&arms, config);
        let class = classify(&job_query(JobShape::Star, 12, case));
        let events = rng.gen_range(0..30u64);
        for _ in 0..events {
            let costs: Vec<Option<f64>> =
                (0..4).map(|_| Some(rng.gen_range(1.0..1e4f64))).collect();
            router.record_outcome(&class, &costs, &[100; 4], Some(rng.gen_range(0..4usize)));
        }
        let shares = router.shares(&class);
        let eps = router.effective_epsilon();
        assert!(eps <= 0.25 + 1e-12, "effective ε must be clamped to 1/K");
        assert!(
            (shares.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "case {case}"
        );
        for (j, s) in shares.iter().enumerate() {
            assert!(
                *s >= eps - 1e-12,
                "case {case}: arm {j} share {s} below floor {eps}"
            );
        }
        let max = shares.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max >= 0.25 - 1e-12,
            "case {case}: boosted arm fell below its uniform share"
        );
        if events < RouterConfig::default().min_events {
            assert_eq!(shares, vec![0.25; 4], "case {case}: cold class not uniform");
        }
    }
}

/// Relabeling the relations of a query never changes its router class —
/// the same harness the fingerprint suite uses, aimed at [`classify`].
#[test]
fn class_assignment_is_relabel_invariant() {
    use ljqo::catalog::{JoinEdge, Query as CatQuery, RelId, Relation};

    fn random_query(rng: &mut SmallRng) -> CatQuery {
        let n = rng.gen_range(3usize..12);
        let relations: Vec<Relation> = (0..n)
            .map(|i| Relation::new(format!("r{i}"), rng.gen_range(10u64..1_000_000)))
            .collect();
        let mut edges = Vec::new();
        for i in 1..n {
            let j = rng.gen_range(0..i) as u32;
            edges.push(JoinEdge::new(j, i as u32, 0.01, 10.0, 10.0));
        }
        for _ in 0..rng.gen_range(0usize..4) {
            let a = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(0..n) as u32;
            if a != b {
                edges.push(JoinEdge::new(a, b, 0.02, 5.0, 5.0));
            }
        }
        CatQuery::new(relations, edges).unwrap()
    }

    fn permuted(query: &CatQuery, perm: &[usize]) -> CatQuery {
        let n = query.n_relations();
        let mut relations: Vec<Option<Relation>> = vec![None; n];
        for (old, r) in query.relations().iter().enumerate() {
            relations[perm[old]] = Some(r.clone());
        }
        let relations: Vec<Relation> = relations.into_iter().map(Option::unwrap).collect();
        let edges: Vec<JoinEdge> = query
            .graph()
            .edges()
            .iter()
            .map(|e| JoinEdge {
                a: RelId(perm[e.a.index()] as u32),
                b: RelId(perm[e.b.index()] as u32),
                ..*e
            })
            .collect();
        CatQuery::new(relations, edges).unwrap()
    }

    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x0b5e_000a ^ case);
        let q = random_query(&mut rng);
        let mut perm: Vec<usize> = (0..q.n_relations()).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let p = permuted(&q, &perm);
        assert_eq!(
            classify(&q),
            classify(&p),
            "case {case}: relabeling changed the router class"
        );
    }
}
