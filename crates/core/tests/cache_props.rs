//! Differential tests for the plan-cache serving path.
//!
//! The central claim the cache makes is *observational equivalence*: a
//! query answered from the cache is indistinguishable — bit-for-bit in
//! cost, identical in plan — from the cold solve that populated the
//! entry. These tests check that claim differentially, across all three
//! cost models and join graphs of one to four components, and then check
//! the batch driver's dedup accounting against the plain batch driver.
//!
//! Offline property-test idiom: seeded-RNG loops, one derived seed per
//! case, failures reproduce exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo::cost::MultiMethodCostModel;
use ljqo::prelude::*;

const CASES: u64 = 24;

/// A query with exactly `n_components` join-graph components, each a
/// small random tree (possibly a singleton relation).
fn component_query(rng: &mut SmallRng, n_components: usize) -> Query {
    let mut b = QueryBuilder::new();
    let mut names: Vec<Vec<String>> = Vec::new();
    for c in 0..n_components {
        let size = if rng.gen_bool(0.2) {
            1
        } else {
            rng.gen_range(2usize..6)
        };
        let mut comp = Vec::new();
        for i in 0..size {
            let name = format!("c{c}_r{i}");
            b = b.relation(&name, rng.gen_range(10u64..100_000));
            comp.push(name);
        }
        names.push(comp);
    }
    for comp in &names {
        for i in 1..comp.len() {
            let j = rng.gen_range(0..i);
            b = b.join(&comp[j], &comp[i], 10f64.powf(rng.gen_range(-4.0..-0.5)));
        }
    }
    b.build().unwrap()
}

fn models() -> Vec<(&'static str, Box<dyn CostModel + Sync>)> {
    vec![
        ("memory", Box::new(MemoryCostModel::default())),
        ("disk", Box::new(DiskCostModel::default())),
        ("multi", Box::new(MultiMethodCostModel::default())),
    ]
}

fn assert_bit_identical(tag: &str, a: &Optimized, b: &Optimized) {
    assert_eq!(a.plan, b.plan, "{tag}: plans differ");
    assert_eq!(
        a.cost.to_bits(),
        b.cost.to_bits(),
        "{tag}: total cost differs ({} vs {})",
        a.cost,
        b.cost
    );
    assert_eq!(
        a.segment_costs.len(),
        b.segment_costs.len(),
        "{tag}: segment count differs"
    );
    for (x, y) in a.segment_costs.iter().zip(&b.segment_costs) {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: segment cost differs");
    }
}

#[test]
fn warm_hit_is_bit_identical_to_the_cold_solve() {
    let methods = [Method::Ii, Method::Sa, Method::Iai];
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xcace_0001 ^ case);
        let n_components = rng.gen_range(1usize..5);
        let q = component_query(&mut rng, n_components);
        let method = methods[case as usize % methods.len()];
        let config = OptimizerConfig::new(method)
            .with_seed(rng.gen())
            .with_time_limit(2.0);
        for (name, model) in models() {
            let tag = format!("case {case} model {name} components {n_components}");
            let cold = try_optimize(&q, model.as_ref(), &config).unwrap();

            let cache = PlanCache::new(PlanCacheConfig::default());
            let fp_cfg = FingerprintConfig::default();
            let (first, o1) =
                optimize_cached(&q, model.as_ref(), &config, &cache, &fp_cfg).unwrap();
            assert_eq!(o1, CacheOutcome::Miss, "{tag}: empty cache must miss");
            // The miss path IS the cold path: same config, same seed.
            assert_bit_identical(&format!("{tag} (miss vs cold)"), &first, &cold);

            let (second, o2) =
                optimize_cached(&q, model.as_ref(), &config, &cache, &fp_cfg).unwrap();
            assert_eq!(o2, CacheOutcome::Hit, "{tag}: resident entry must hit");
            assert_bit_identical(&format!("{tag} (hit vs cold)"), &second, &cold);
            assert!(
                second.units_used <= cold.units_used,
                "{tag}: a hit must not cost more budget than the cold solve"
            );
            assert!(!second.degradation.is_degraded(), "{tag}");
        }
    }
}

#[test]
fn warm_hit_serves_relabeled_queries_at_the_same_cost() {
    // A query and a relation-relabeled copy share a fingerprint; the copy
    // must be served from the entry the original populated, at the exact
    // same total cost (its statistics are identical, so the stored
    // per-segment costs survive the re-pricing agreement check).
    //
    // Cardinalities are spaced a factor of 3 apart — more than one bucket
    // width at the default 4 buckets per decade — so every relation has a
    // unique fingerprint color and the canonical mapping is exact. (With
    // bucket-tied relations the serving path may legally map canonical
    // slots to within-bucket different relations and re-price, which is
    // covered by `warm_hit_is_bit_identical_to_the_cold_solve`.)
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xcace_0002 ^ case);
        let n_components = rng.gen_range(1usize..4);
        let q = {
            let mut b = QueryBuilder::new();
            let mut g = 0u32;
            let mut names: Vec<Vec<String>> = Vec::new();
            for c in 0..n_components {
                let size = rng.gen_range(2usize..5);
                let mut comp = Vec::new();
                for i in 0..size {
                    let name = format!("c{c}_r{i}");
                    b = b.relation(&name, 12 * 3u64.pow(g));
                    g += 1;
                    comp.push(name);
                }
                names.push(comp);
            }
            for comp in &names {
                for i in 1..comp.len() {
                    let j = rng.gen_range(0..i);
                    b = b.join(&comp[j], &comp[i], 10f64.powf(rng.gen_range(-4.0..-0.5)));
                }
            }
            b.build().unwrap()
        };
        let n = q.n_relations();
        // Rebuild with relations reversed (a simple relabeling).
        let relations: Vec<_> = q.relations().iter().rev().cloned().collect();
        let edges: Vec<JoinEdge> = q
            .graph()
            .edges()
            .iter()
            .map(|e| JoinEdge {
                a: RelId((n - 1 - e.a.index()) as u32),
                b: RelId((n - 1 - e.b.index()) as u32),
                ..*e
            })
            .collect();
        let relabeled = Query::new(relations, edges).unwrap();

        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Iai)
            .with_seed(case)
            .with_time_limit(2.0);
        let cache = PlanCache::new(PlanCacheConfig::default());
        let fp_cfg = FingerprintConfig::default();

        let (original, o1) = optimize_cached(&q, &model, &config, &cache, &fp_cfg).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (served, o2) = optimize_cached(&relabeled, &model, &config, &cache, &fp_cfg).unwrap();
        assert!(o2.is_hit(), "case {case}: relabeled query must hit");
        assert_eq!(
            served.cost.to_bits(),
            original.cost.to_bits(),
            "case {case}: identical statistics must serve at the identical cost"
        );
        // The served plan is a valid plan of the *relabeled* query.
        for seg in &served.plan.segments {
            assert!(
                seg.len() == 1 || ljqo::plan::validity::is_valid(relabeled.graph(), seg.rels()),
                "case {case}: served segment invalid for the relabeled query"
            );
        }
    }
}

#[test]
fn cached_parallel_driver_hits_bit_identically_too() {
    for case in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xcace_0003 ^ case);
        let n_components = rng.gen_range(1usize..4);
        let q = component_query(&mut rng, n_components);
        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Ii)
            .with_seed(case)
            .with_time_limit(2.0);
        let par = Parallelism::workers(4);
        let cache = PlanCache::new(PlanCacheConfig::default());
        let fp_cfg = FingerprintConfig::default();
        let (cold, o1) =
            optimize_cached_parallel(&q, &model, &config, &par, &cache, &fp_cfg).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (warm, o2) =
            optimize_cached_parallel(&q, &model, &config, &par, &cache, &fp_cfg).unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert_bit_identical(&format!("case {case}"), &warm, &cold);
    }
}

#[test]
fn batch_dedup_solves_each_fingerprint_class_once() {
    // 30 queries, 5 distinct classes (statistics two decades apart, so
    // fingerprints cannot collide), each repeated 6 times.
    let mut rng = SmallRng::seed_from_u64(0xcace_0004);
    let bases: Vec<Query> = (0..5).map(|_| component_query(&mut rng, 2)).collect();
    let mut queries = Vec::new();
    for i in 0..30usize {
        queries.push(bases[i % 5].clone());
    }
    let model = MemoryCostModel::default();
    let config = OptimizerConfig::new(Method::Iai)
        .with_seed(99)
        .with_time_limit(2.0);
    let options = BatchOptions {
        threads: 4,
        per_query_deadline: None,
    };
    let cache = PlanCache::new(PlanCacheConfig::default());
    let fp_cfg = FingerprintConfig::default();

    let report = optimize_batch_cached(&queries, &model, &config, &options, &cache, &fp_cfg);
    assert_eq!(report.results.len(), queries.len());
    assert_eq!(report.n_failed, 0);
    assert!(
        report.n_cold_solves <= 5,
        "5 fingerprint classes must need at most 5 cold solves, got {}",
        report.n_cold_solves
    );
    assert_eq!(
        report.n_cold_solves + report.n_cache_hits + report.n_dedup_reuses,
        queries.len(),
        "every query is either solved cold, served from cache, or deduped"
    );
    assert!(report.n_dedup_reuses >= 25 - report.n_cache_hits);

    // Representatives (first occurrence of each class) are bit-identical
    // to the plain uncached batch: same per-index seed derivation.
    let plain = optimize_batch(&queries, &model, &config, &options);
    for i in 0..5 {
        let a = report.results[i].as_ref().unwrap();
        let b = plain.results[i].as_ref().unwrap();
        assert_eq!(a.plan, b.plan, "representative {i}");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "representative {i}");
    }
    // Every member's plan costs exactly what its class's cold solve found.
    for (i, r) in report.results.iter().enumerate() {
        let member = r.as_ref().unwrap();
        let class = report.results[i % 5].as_ref().unwrap();
        assert_eq!(
            member.cost.to_bits(),
            class.cost.to_bits(),
            "member {i} diverged from its class"
        );
    }

    // A second batch over the same queries is all warm hits.
    let second = optimize_batch_cached(&queries, &model, &config, &options, &cache, &fp_cfg);
    assert_eq!(second.n_cold_solves, 0, "second pass must be fully warm");
    assert_eq!(second.n_cache_hits, queries.len());
    assert_eq!(second.n_dedup_reuses, 0);
    for (a, b) in report.results.iter().zip(&second.results) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.plan, b.plan);
    }
}

#[test]
fn plain_batch_reports_every_query_as_a_cold_solve() {
    let mut rng = SmallRng::seed_from_u64(0xcace_0005);
    let queries: Vec<Query> = (0..6).map(|_| component_query(&mut rng, 1)).collect();
    let model = MemoryCostModel::default();
    let config = OptimizerConfig::new(Method::Ii).with_time_limit(1.0);
    let report = optimize_batch(&queries, &model, &config, &BatchOptions::default());
    assert_eq!(report.n_cold_solves, queries.len());
    assert_eq!(report.n_cache_hits, 0);
    assert_eq!(report.n_dedup_reuses, 0);
}
