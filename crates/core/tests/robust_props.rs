//! Property tests for the estimation-error robustness layer: the
//! perturbation transform, the cardinality-free method, the regret
//! harness, and the never-worse contract of the robust portfolio.

use ljqo::prelude::*;
use ljqo::robust::regret_under;
use ljqo_workload::{generate_job_query, JobShape, JobSpec, PerturbMode, Perturbation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 12;

/// A random catalog with 1–4 join-graph components, each a random
/// connected subgraph (spanning tree plus optional extra edges).
fn multi_component_query(rng: &mut SmallRng) -> Query {
    let n_components = rng.gen_range(1..=4usize);
    let mut b = QueryBuilder::new();
    let mut names: Vec<Vec<String>> = Vec::new();
    for c in 0..n_components {
        let size = rng.gen_range(1..=6usize);
        let mut group = Vec::new();
        for i in 0..size {
            let name = format!("c{c}r{i}");
            b = b.relation(&name, rng.gen_range(10..50_000u64));
            group.push(name);
        }
        names.push(group);
    }
    for group in &names {
        // Spanning tree keeps each group connected...
        for i in 1..group.len() {
            let j = rng.gen_range(0..i);
            b = b.join(&group[j], &group[i], 10f64.powf(rng.gen_range(-4.0..-0.3)));
        }
        // ...plus a few chords for cycles.
        if group.len() > 2 {
            for _ in 0..rng.gen_range(0..=2usize) {
                let i = rng.gen_range(1..group.len());
                let j = rng.gen_range(0..i);
                b = b.join(&group[j], &group[i], 10f64.powf(rng.gen_range(-4.0..-0.3)));
            }
        }
    }
    b.build().unwrap()
}

fn job_query(shape: JobShape, n_joins: usize, seed: u64) -> Query {
    generate_job_query(&JobSpec::new(shape), n_joins, seed)
}

/// Two structurally identical queries must agree on every statistic for
/// this to hold; `Query` has no `PartialEq`, so compare the debug
/// rendering (which covers relations, selections, and edge statistics).
fn same_catalog(a: &Query, b: &Query) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

#[test]
fn perturbation_is_seed_deterministic() {
    for case in 0..CASES {
        let truth = job_query(JobShape::ALL[case as usize % 3], 12, 0x0b5e_0001 ^ case);
        for mode in PerturbMode::ALL {
            for q in [2.0, 10.0, 100.0] {
                let p = Perturbation::new(q, mode, 0x5eed_u64 ^ case);
                let a = p.observed(&truth);
                let b = p.observed(&truth);
                assert!(
                    same_catalog(&a, &b),
                    "same seed must give the same observed catalog (q={q}, {mode:?})"
                );
                let other = Perturbation::new(q, mode, 0x5eed_u64 ^ case ^ 1).observed(&truth);
                // Different seeds should (overwhelmingly) differ.
                assert!(
                    !same_catalog(&a, &other),
                    "different seeds produced identical catalogs (q={q}, {mode:?})"
                );
            }
        }
    }
}

#[test]
fn perturbation_preserves_structure() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0b5e_0002 ^ case);
        let truth = multi_component_query(&mut rng);
        for mode in PerturbMode::ALL {
            let observed = Perturbation::new(10.0, mode, case).observed(&truth);
            assert_eq!(observed.n_relations(), truth.n_relations());
            assert_eq!(observed.graph().edges().len(), truth.graph().edges().len());
            for (a, b) in truth.graph().edges().iter().zip(observed.graph().edges()) {
                assert_eq!((a.a, a.b), (b.a, b.b), "edge endpoints moved");
            }
            assert_eq!(
                observed.graph().components(),
                truth.graph().components(),
                "perturbation changed the component structure"
            );
        }
    }
}

#[test]
fn cardfree_is_valid_on_random_multi_component_catalogs() {
    let model = MemoryCostModel::default();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0b5e_0003 ^ case);
        let q = multi_component_query(&mut rng);
        // The raw heuristic: every component must come back as a valid
        // order over exactly its relations.
        for comp in q.graph().components() {
            let order = ljqo::heuristics::CardFreeHeuristic.generate(q.graph(), &comp);
            assert_eq!(order.rels().len(), comp.len(), "case {case}");
            assert!(
                ljqo::plan::validity::is_valid(q.graph(), order.rels()),
                "case {case}: invalid structural order"
            );
        }
        // The registered method end to end: a full valid plan, never
        // degraded (the structural order needs no statistics).
        let r = try_optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Cardfree).with_seed(case),
        )
        .unwrap();
        assert_eq!(r.degradation, Degradation::None, "case {case}");
        assert!(r.cost.is_finite(), "case {case}");
        for seg in &r.plan.segments {
            assert!(ljqo::plan::validity::is_valid(q.graph(), seg.rels()));
        }
    }
}

#[test]
fn regret_is_exactly_zero_with_exact_statistics() {
    let model = MemoryCostModel::default();
    for (i, shape) in JobShape::ALL.into_iter().enumerate() {
        let truth = job_query(shape, 10, 0x0b5e_0004 ^ i as u64);
        let observed = Perturbation::new(1.0, PerturbMode::Independent, 7).observed(&truth);
        // q = 1 is the identity: the observed catalog IS the truth.
        assert!(same_catalog(&truth, &observed), "{shape:?}");
        for method in [Method::Ii, Method::Agi, Method::Cardfree] {
            let s = regret_under(
                &truth,
                &observed,
                &model,
                &OptimizerConfig::new(method).with_seed(3),
            )
            .unwrap();
            assert_eq!(s.regret, 0.0, "{shape:?}/{method:?}");
            assert_eq!(s.true_cost, s.reference_cost, "{shape:?}/{method:?}");
        }
    }
}

/// The acceptance contract: at material estimation error (q ≥ 10), the
/// portfolio *with* the cardinality-free challenger is never worse than
/// the uniform II/SA/AGI/KBI portfolio at equal budget — measured on the
/// cost each run reports for the catalog it optimized, which is the
/// quantity the challenger mechanism guarantees by construction.
#[test]
fn robust_portfolio_is_never_worse_than_uniform_at_equal_budget() {
    let model = MemoryCostModel::default();
    let mut checked = 0usize;
    for (i, shape) in JobShape::ALL.into_iter().enumerate() {
        for q in [10.0, 100.0] {
            for seed in 0..3u64 {
                let truth = job_query(shape, 14, 0x0b5e_0005 ^ (i as u64) << 8 ^ seed);
                let observed = Perturbation::new(q, PerturbMode::Correlated, seed ^ 0xd15_70c7)
                    .observed(&truth);
                let config = OptimizerConfig::new(Method::Ii).with_seed(seed);
                let plain =
                    try_optimize_parallel(&observed, &model, &config, &Parallelism::portfolio(4))
                        .unwrap();
                let robust = try_optimize_parallel(
                    &observed,
                    &model,
                    &config,
                    &Parallelism::robust_portfolio(4),
                )
                .unwrap();
                assert!(
                    robust.cost <= plain.cost,
                    "{shape:?} q={q} seed={seed}: robust {} > uniform {}",
                    robust.cost,
                    plain.cost
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 18);
}
