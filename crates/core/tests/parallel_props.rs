//! Property-style tests for the cooperative parallel search layer.
//!
//! The repository builds offline, so instead of a property-testing crate
//! these are seeded-RNG loops over randomized `(budget, workers)` inputs
//! (the same idiom as `tests/model_props.rs` at the workspace root): each
//! case derives its own deterministic seed, so failures reproduce
//! exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo::prelude::*;

const CASES: u64 = 48;

/// A connected 8-relation chain-with-shortcuts query — large enough that
/// budgets in the hundreds leave the search genuinely unfinished.
fn query(rng: &mut SmallRng) -> Query {
    let mut b = QueryBuilder::new();
    for i in 0..8 {
        b = b.relation(format!("r{i}"), rng.gen_range(10..50_000));
    }
    for i in 0..7usize {
        b = b.join(
            &format!("r{i}"),
            &format!("r{}", i + 1),
            10f64.powf(rng.gen_range(-4.0..-0.5)),
        );
    }
    // A couple of shortcut edges so the move set has cycles to exploit.
    b = b.join("r0", "r3", 0.01).join("r2", "r6", 0.005);
    b.build().unwrap()
}

/// Per-worker overrun bound: one indivisible step — a move proposal with
/// its validity-check retries (bounded by the generator), plus the
/// `O(N)` heuristic seeding some methods charge as one lump.
fn per_worker_slack(n_relations: usize) -> u64 {
    (64 + 4 * n_relations + n_relations + 1) as u64
}

#[test]
fn shard_budget_always_conserves_the_budget() {
    let mut rng = SmallRng::seed_from_u64(0x9a11_0001);
    for _ in 0..512 {
        let budget = rng.gen_range(0u64..100_000);
        let workers = rng.gen_range(1usize..33);
        let shares = shard_budget(budget, workers);
        assert_eq!(shares.len(), workers);
        assert_eq!(
            shares.iter().sum::<u64>(),
            budget,
            "sum mismatch for {budget}/{workers}"
        );
        let min = *shares.iter().min().unwrap();
        let max = *shares.iter().max().unwrap();
        assert!(max - min <= 1, "uneven shares for {budget}/{workers}");
        // Remainder units go to the lowest-indexed workers, so shares
        // are non-increasing.
        assert!(shares.windows(2).all(|w| w[0] >= w[1]));
    }
}

#[test]
fn total_units_never_exceed_budget_plus_bounded_overrun() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0002 ^ case);
        let q = query(&mut rng);
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let budget = rng.gen_range(0u64..500);
        let workers = rng.gen_range(1usize..12);
        let method = [Method::Ii, Method::Sa, Method::Agi][case as usize % 3];
        let r = run_parallel(&q, &model, &runner, method, &comp, budget, workers, case);
        let Some(r) = r else {
            assert_eq!(budget, 0, "only a zero budget may yield no state");
            continue;
        };
        let active = r.per_worker.iter().filter(|w| w.units_used > 0).count() as u64;
        let bound = budget + active * per_worker_slack(q.n_relations());
        assert!(
            r.units_used <= bound,
            "case {case}: {} units against budget {budget} with {workers} workers \
             ({active} active; bound {bound})",
            r.units_used
        );
        // Accounting is self-consistent: totals are the per-worker sums.
        assert_eq!(
            r.units_used,
            r.per_worker.iter().map(|w| w.units_used).sum::<u64>()
        );
        assert_eq!(
            r.n_evals,
            r.per_worker.iter().map(|w| w.n_evals).sum::<u64>()
        );
    }
}

#[test]
fn isolated_runs_are_bit_deterministic_in_seed_and_workers() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0003 ^ case);
        let q = query(&mut rng);
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let budget = rng.gen_range(50u64..2_000);
        let workers = rng.gen_range(1usize..9);
        let run = || {
            run_parallel(
                &q,
                &model,
                &runner,
                Method::Ii,
                &comp,
                budget,
                workers,
                case,
            )
        };
        let (a, b) = (run().unwrap(), run().unwrap());
        assert_eq!(a.order, b.order, "case {case}");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "case {case}");
        assert_eq!(a.units_used, b.units_used, "case {case}");
        assert_eq!(a.per_worker, b.per_worker, "case {case}");
    }
}

#[test]
fn shared_best_is_never_worse_than_any_workers_isolated_best() {
    for case in 0..CASES / 2 {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0004 ^ case);
        let q = query(&mut rng);
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let budget = rng.gen_range(100u64..3_000);
        let workers = rng.gen_range(2usize..8);
        let base = ParallelOptions::new(budget, workers, case);
        let iso = run_portfolio(&q, &model, &runner, &[Method::Ii], &comp, &base).unwrap();
        let coop = run_portfolio(
            &q,
            &model,
            &runner,
            &[Method::Ii],
            &comp,
            &base.with_cooperation(Cooperation::SharedBest),
        )
        .unwrap();
        // Quality monotonicity at equal total budget: with no stop
        // threshold the cooperative run is unit-for-unit identical to the
        // isolated one, so its result can never be worse.
        assert!(
            coop.cost <= iso.cost,
            "case {case}: coop {} worse than iso {}",
            coop.cost,
            iso.cost
        );
        // The shared cell holds the global minimum: never worse than any
        // single worker's local best, and exactly the winning cost.
        let shared = coop.shared_cost.expect("SharedBest mode fills the cell");
        for w in &coop.per_worker {
            if let Some(c) = w.best_cost {
                assert!(shared <= c, "case {case}: cell {shared} vs worker {c}");
            }
        }
        assert_eq!(shared.to_bits(), coop.cost.to_bits(), "case {case}");
    }
}

#[test]
fn portfolio_runs_stay_budgeted_and_valid() {
    for case in 0..CASES / 2 {
        let mut rng = SmallRng::seed_from_u64(0x9a11_0005 ^ case);
        let q = query(&mut rng);
        let model = MemoryCostModel::default();
        let runner = MethodRunner::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let budget = rng.gen_range(20u64..2_000);
        let workers = rng.gen_range(1usize..9);
        let r = run_portfolio(
            &q,
            &model,
            &runner,
            &PORTFOLIO,
            &comp,
            &ParallelOptions::new(budget, workers, case),
        )
        .unwrap();
        assert!(ljqo::plan::validity::is_valid(q.graph(), r.order.rels()));
        let active = r.per_worker.iter().filter(|w| w.units_used > 0).count() as u64;
        assert!(r.units_used <= budget + active * per_worker_slack(q.n_relations()));
        for (w, report) in r.per_worker.iter().enumerate() {
            assert_eq!(report.method, PORTFOLIO[w % PORTFOLIO.len()]);
        }
    }
}
