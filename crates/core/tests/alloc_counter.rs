//! Zero-allocation guarantee for the steady-state move-evaluation loop.
//!
//! The compiled hot path (bitset-filtered move proposals + incremental
//! cost evaluation with reusable scratch state) is designed so that after
//! the evaluator and generator are constructed, a propose → evaluate →
//! commit/rollback cycle performs **no heap allocation at all**. This test
//! wires a counting `#[global_allocator]` around the real loop and asserts
//! exactly that, for both the static and the propagated estimator.
//!
//! The counter is per-thread (other test threads must not bleed into the
//! measurement) and counts allocation *events* — `alloc`, `alloc_zeroed`
//! and growing `realloc` all bump it, so a single `Vec` regrowth anywhere
//! in the loop fails the test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_catalog::{CompiledQuery, Query, QueryBuilder, RelId};
use ljqo_cost::{Estimator, Evaluator, IncrementalEvaluator, MemoryCostModel, TreeEvaluator};
use ljqo_plan::{random_valid_order, MoveGenerator, MoveSet, TreeMoveSet, TreePlan};

struct CountingAlloc;

thread_local! {
    /// Allocation events observed on this thread. `const` init so reading
    /// the counter never itself triggers lazy initialization mid-count.
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    // `try_with` instead of `with`: the allocator is called during TLS
    // destruction at thread exit, when the key is no longer accessible.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

fn alloc_events() -> u64 {
    ALLOC_EVENTS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// A 12-relation chain with a few extra edges: large enough that moves hit
/// reused tails, recomputed tails, cross-product rejections and multi-edge
/// selectivity folds.
fn test_query() -> Query {
    let mut b = QueryBuilder::new();
    let cards = [3000u64, 12, 700, 55, 1400, 9, 250, 8000, 33, 510, 77, 2600];
    for (i, card) in cards.iter().enumerate() {
        b = b.relation(format!("r{i}"), *card);
    }
    for i in 1..cards.len() {
        b = b.join(
            &format!("r{}", i - 1),
            &format!("r{i}"),
            0.003 + 0.01 * i as f64,
        );
    }
    // Extra edges so the graph is not a pure chain (cycles + a star-ish hub).
    b = b.join("r0", "r5", 0.02);
    b = b.join("r3", "r9", 0.004);
    b = b.join("r3", "r11", 0.05);
    b.build().unwrap()
}

/// A 200-relation chain with periodic chords: big enough that every
/// bitset in the hot loop is multi-word (stride 4 — one full block),
/// so the steady-state guarantee covers the large-N kernel tier, not
/// just the single-word fast path the 12-relation query exercises.
fn large_query() -> Query {
    const N: usize = 200;
    let mut b = QueryBuilder::new();
    for i in 0..N {
        b = b.relation(format!("r{i}"), 10 + ((i as u64 * 37) % 5000));
    }
    for i in 1..N {
        b = b.join(
            &format!("r{}", i - 1),
            &format!("r{i}"),
            0.001 + 0.0004 * (i % 17) as f64,
        );
    }
    // Chords every 13 relations so neighbor rows span several words.
    for i in (13..N).step_by(13) {
        b = b.join(&format!("r{}", i - 13), &format!("r{i}"), 0.01);
    }
    b.build().unwrap()
}

fn all_kinds() -> MoveSet {
    MoveSet {
        adjacent_swap: 0.25,
        swap: 0.35,
        three_cycle: 0.2,
        reinsert: 0.2,
    }
}

/// Allocation events per `ITERS` steady-state iterations of the raw
/// propose → eval → commit/rollback loop on the compiled path.
fn steady_state_events_on(q: &Query, estimator: Estimator, seed: u64) -> u64 {
    const WARMUP: usize = 64;
    const ITERS: usize = 512;

    let model = MemoryCostModel::default();
    let compiled = Arc::new(CompiledQuery::new(q));
    let comp: Vec<RelId> = q.rel_ids().collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let order = random_valid_order(q.graph(), &comp, &mut rng);
    let mut inc =
        IncrementalEvaluator::with_compiled(q, &model, estimator, order, Arc::clone(&compiled));
    let mut gen = MoveGenerator::with_compiled(compiled, all_kinds());
    let mut current = inc.current_cost();
    let graph = q.graph();

    let mut before = 0u64;
    for iter in 0..WARMUP + ITERS {
        if iter == WARMUP {
            before = alloc_events();
        }
        if let Some((mv, _attempts)) = gen.propose_counted(graph, inc.order_mut(), &mut rng) {
            let candidate = inc.eval_applied(&mv);
            if candidate < current {
                inc.commit();
                current = candidate;
            } else {
                inc.rollback();
            }
        }
    }
    alloc_events() - before
}

/// The static-estimator hot loop is allocation-free at steady state — in
/// debug and release builds alike (its debug assertions stay on the
/// pre-sized scratch buffers).
#[test]
fn static_move_loop_is_allocation_free() {
    let events = steady_state_events_on(&test_query(), Estimator::Static, 0xa110c);
    assert_eq!(
        events, 0,
        "static steady-state move loop performed {events} heap allocations"
    );
}

/// The propagated-estimator hot loop is also allocation-free: snapshot
/// resume (`DistinctState::copy_from`), the sparse present-set shrink and
/// the post-commit snapshot rebuild all reuse full-capacity buffers.
#[test]
fn propagated_move_loop_is_allocation_free() {
    let events = steady_state_events_on(&test_query(), Estimator::Propagated, 0xa110c);
    assert_eq!(
        events, 0,
        "propagated steady-state move loop performed {events} heap allocations"
    );
}

/// At N = 200 every mask is one full 4-word block: the windowed
/// validity kernel, the prefix-mask cache and both estimators' scratch
/// state must still run allocation-free at steady state — in debug and
/// release builds alike. This is the load-bearing guarantee of the
/// large-N regime: proposal cost stays O(window), with no hidden heap
/// traffic as N grows.
#[test]
fn static_move_loop_is_allocation_free_at_n200() {
    let events = steady_state_events_on(&large_query(), Estimator::Static, 0xa110c + 3);
    assert_eq!(
        events, 0,
        "static N=200 steady-state move loop performed {events} heap allocations"
    );
}

/// Propagated-estimator counterpart of the N = 200 guarantee.
#[test]
fn propagated_move_loop_is_allocation_free_at_n200() {
    let events = steady_state_events_on(&large_query(), Estimator::Propagated, 0xa110c + 4);
    assert_eq!(
        events, 0,
        "propagated N=200 steady-state move loop performed {events} heap allocations"
    );
}

/// The bushy tree-evaluator loop (propose → `eval_pending` →
/// commit/rollback with path-to-root re-costing) is allocation-free at
/// steady state in release builds: the candidate/memo arrays, the dirty
/// list and the plan's undo log all reuse their warmed-up capacity.
/// Debug builds intentionally run the full bottom-up agreement
/// assertion on every `eval_pending`, which prices the whole tree into
/// temporary buffers — so there the assertion is skipped rather than
/// weakened, mirroring the `cost_move` test below.
#[test]
fn tree_evaluator_move_loop_is_allocation_free_in_release() {
    const WARMUP: usize = 64;
    const ITERS: usize = 512;

    let q = test_query();
    let model = MemoryCostModel::default();
    let compiled = Arc::new(CompiledQuery::new(&q));
    let comp: Vec<RelId> = q.rel_ids().collect();
    let mut rng = SmallRng::seed_from_u64(0xa110c + 2);
    let order = random_valid_order(q.graph(), &comp, &mut rng);
    let plan = TreePlan::from_order(&compiled, order.rels());
    let mut te = TreeEvaluator::new(&model, Arc::clone(&compiled), plan);
    let moves = TreeMoveSet::default();
    let mut current = te.current_cost();
    let mut committed = 0u64;

    let mut before = 0u64;
    for iter in 0..WARMUP + ITERS {
        if iter == WARMUP {
            before = alloc_events();
        }
        if te.propose(&moves, &mut rng).is_some() {
            let candidate = te.eval_pending();
            if candidate < current {
                te.commit();
                current = candidate;
                committed += 1;
            } else {
                te.rollback();
            }
        }
    }
    let events = alloc_events() - before;
    // The loop must have genuinely exercised both resolutions.
    assert!(committed > 0, "no move was ever committed");
    if !cfg!(debug_assertions) {
        assert_eq!(
            events, 0,
            "tree-evaluator steady-state move loop performed {events} heap allocations"
        );
    }
}

/// The full budgeted driver path (`Evaluator::cost_move` with best-order
/// tracking) is allocation-free at steady state in release builds. Debug
/// builds intentionally run a from-scratch agreement assertion on every
/// move (`full_eval`), which walks the order with temporary buffers — so
/// there the assertion is skipped rather than weakened.
#[test]
fn evaluator_cost_move_is_allocation_free_in_release() {
    const WARMUP: usize = 64;
    const ITERS: usize = 512;

    let q = test_query();
    let model = MemoryCostModel::default();
    let mut ev = Evaluator::new(&q, &model);
    let comp: Vec<RelId> = q.rel_ids().collect();
    let mut rng = SmallRng::seed_from_u64(0xa110c + 1);
    let order = random_valid_order(q.graph(), &comp, &mut rng);
    let mut gen = MoveGenerator::with_compiled(ev.compiled().clone(), all_kinds());
    let mut inc = ev.begin_incremental(order);
    let mut current = inc.current_cost();
    let graph = q.graph();

    let mut before = 0u64;
    for iter in 0..WARMUP + ITERS {
        if iter == WARMUP {
            before = alloc_events();
        }
        if let Some((mv, attempts)) = gen.propose_counted(graph, inc.order_mut(), &mut rng) {
            ev.charge(u64::from(attempts) - 1);
            let candidate = ev.cost_move(&mut inc, &mv);
            if candidate < current {
                inc.commit();
                current = candidate;
            } else {
                inc.rollback();
            }
        }
    }
    let events = alloc_events() - before;
    if cfg!(debug_assertions) {
        // The loop still must have run; the count is unconstrained here.
        assert!(ev.n_inc_evals() > 0);
    } else {
        assert_eq!(
            events, 0,
            "Evaluator::cost_move steady-state loop performed {events} heap allocations"
        );
    }
}
