//! End-to-end properties of the hardened driver's degradation ladder.
//!
//! The driver promises: a valid plan whenever one exists, with
//! [`Degradation`] reporting honestly how far down the fallback ladder
//! (method → augmentation heuristic → random valid order) it had to go,
//! and with the plan-cache serving path degrading *cleanly* — a stale or
//! poisoned cache entry may cost latency, never correctness.
//!
//! Offline property-test idiom: seeded-RNG loops, one derived seed per
//! case, failures reproduce exactly.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ljqo::cache::{CachedPlan, CachedSegment};
use ljqo::cost::{FaultMode, FaultyCostModel};
use ljqo::prelude::*;

const CASES: u64 = 16;

fn query(rng: &mut SmallRng) -> Query {
    let n = rng.gen_range(4usize..9);
    let mut b = QueryBuilder::new();
    for i in 0..n {
        b = b.relation(format!("r{i}"), rng.gen_range(10u64..100_000));
    }
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b = b.join(
            &format!("r{j}"),
            &format!("r{i}"),
            10f64.powf(rng.gen_range(-4.0..-0.5)),
        );
    }
    b.build().unwrap()
}

/// A model whose every consultation panics — defeats the method AND the
/// augmentation heuristic, leaving the statistics-free rungs
/// (cardinality-free structural order, then random order).
struct AlwaysPanic;

impl CostModel for AlwaysPanic {
    fn join_cost(&self, _ctx: &JoinCtx) -> f64 {
        panic!("injected: this model always panics")
    }

    fn name(&self) -> &'static str {
        "always-panic"
    }
}

#[test]
fn clean_model_never_degrades() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0001 ^ case);
        let q = query(&mut rng);
        let r = try_optimize(
            &q,
            &MemoryCostModel::default(),
            &OptimizerConfig::new(Method::Iai).with_seed(case),
        )
        .unwrap();
        assert_eq!(r.degradation, Degradation::None, "case {case}");
        assert!(!r.deadline_expired);
        assert!(r.cost.is_finite());
    }
}

#[test]
fn first_eval_panic_degrades_to_the_heuristic() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0002 ^ case);
        let q = query(&mut rng);
        // The method's very first full evaluation panics; the heuristic's
        // own evaluation (the next one) passes.
        let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::PanicOnKth(1));
        let r = try_optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_seed(case),
        )
        .unwrap();
        assert_eq!(r.degradation, Degradation::Heuristic, "case {case}");
        assert!(
            ljqo::plan::validity::is_valid(q.graph(), r.plan.segments[0].rels()),
            "case {case}"
        );
        assert!(r.cost.is_finite(), "case {case}");
    }
}

#[test]
fn total_model_failure_degrades_to_a_structural_order() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0003 ^ case);
        let q = query(&mut rng);
        let r = try_optimize(
            &q,
            &AlwaysPanic,
            &OptimizerConfig::new(Method::Iai).with_seed(case),
        )
        .unwrap();
        // The method and the augmentation heuristic both die inside the
        // panicking model, but the cardinality-free rung generates its
        // order without touching the model at all — only the (failed)
        // pricing is best-effort — so the ladder now stops there instead
        // of falling through to the random rung.
        assert_eq!(r.degradation, Degradation::CardFree, "case {case}");
        assert!(
            ljqo::plan::validity::is_valid(q.graph(), r.plan.segments[0].rels()),
            "case {case}: the rescued order must still be valid"
        );
        // Nothing could be priced; the sentinel cost says so honestly.
        assert_eq!(r.cost, f64::MAX, "case {case}");
    }
}

#[test]
fn nan_costs_are_saturated_not_propagated() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0004 ^ case);
        let q = query(&mut rng);
        let k = rng.gen_range(1u64..20);
        let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::NanOnKth(k));
        let r = try_optimize(
            &q,
            &model,
            &OptimizerConfig::new(Method::Ii).with_seed(case),
        )
        .unwrap();
        assert!(!r.cost.is_nan(), "case {case}: NaN escaped the evaluator");
        assert!(
            ljqo::plan::validity::is_valid(q.graph(), r.plan.segments[0].rels()),
            "case {case}"
        );
    }
}

#[test]
fn expired_deadline_still_returns_a_plan() {
    for case in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0005 ^ case);
        let q = query(&mut rng);
        let config = OptimizerConfig::new(Method::Sa)
            .with_seed(case)
            .with_deadline(Duration::ZERO);
        let r = try_optimize(&q, &MemoryCostModel::default(), &config).unwrap();
        assert!(r.deadline_expired, "case {case}");
        assert!(
            ljqo::plan::validity::is_valid(q.graph(), r.plan.segments[0].rels()),
            "case {case}"
        );
    }
}

/// Insert a structurally-poisoned entry (canonical indices far out of
/// range) under `q`'s fingerprint.
fn poison(cache: &PlanCache, q: &Query, fp_cfg: &FingerprintConfig) {
    let fp = fingerprint(q, fp_cfg);
    cache.insert(
        fp.fingerprint().clone(),
        CachedPlan {
            segments: vec![CachedSegment {
                canon_order: vec![900, 901, 902],
                cost: 1.0,
            }],
            total_cost: 1.0,
            producer: "test-poison",
        },
    );
}

#[test]
fn stale_entry_falls_through_to_a_bit_identical_cold_solve() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0006 ^ case);
        let q = query(&mut rng);
        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Iai).with_seed(case);
        let fp_cfg = FingerprintConfig::default();
        let cache = PlanCache::new(PlanCacheConfig::default());
        poison(&cache, &q, &fp_cfg);

        let cold = try_optimize(&q, &model, &config).unwrap();
        let (served, outcome) = optimize_cached(&q, &model, &config, &cache, &fp_cfg).unwrap();
        assert_eq!(outcome, CacheOutcome::Stale, "case {case}");
        assert_eq!(served.plan, cold.plan, "case {case}");
        assert_eq!(served.cost.to_bits(), cold.cost.to_bits(), "case {case}");
        assert_eq!(served.degradation, Degradation::None, "case {case}");

        // The poisoned entry was invalidated and replaced by the cold
        // result: the next lookup is a clean, bit-identical hit.
        let (warm, again) = optimize_cached(&q, &model, &config, &cache, &fp_cfg).unwrap();
        assert_eq!(again, CacheOutcome::Hit, "case {case}");
        assert_eq!(warm.cost.to_bits(), cold.cost.to_bits(), "case {case}");
    }
}

#[test]
fn stale_entry_plus_faulty_model_degrades_cleanly() {
    // The worst day in production: the cache entry is poisoned AND the
    // cost model panics on its first evaluation. The serving path must
    // report Stale, walk the cold ladder to the heuristic rung, and
    // refuse to cache the degraded result.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xd41e_0007 ^ case);
        let q = query(&mut rng);
        let config = OptimizerConfig::new(Method::Ii).with_seed(case);
        let fp_cfg = FingerprintConfig::default();
        let cache = PlanCache::new(PlanCacheConfig::default());
        poison(&cache, &q, &fp_cfg);

        let model = FaultyCostModel::new(MemoryCostModel::default(), FaultMode::PanicOnKth(1));
        let (served, outcome) = optimize_cached(&q, &model, &config, &cache, &fp_cfg).unwrap();
        assert_eq!(outcome, CacheOutcome::Stale, "case {case}");
        assert_eq!(served.degradation, Degradation::Heuristic, "case {case}");
        assert!(
            ljqo::plan::validity::is_valid(q.graph(), served.plan.segments[0].rels()),
            "case {case}"
        );
        // Degraded results must not be replayed to future queries.
        assert!(cache.is_empty(), "case {case}: degraded result was cached");
    }
}

#[test]
fn degraded_cold_results_are_never_inserted() {
    let mut rng = SmallRng::seed_from_u64(0xd41e_0008);
    let q = query(&mut rng);
    let config = OptimizerConfig::new(Method::Ii).with_seed(1);
    let fp_cfg = FingerprintConfig::default();
    let cache = PlanCache::new(PlanCacheConfig::default());
    let (r, outcome) = optimize_cached(&q, &AlwaysPanic, &config, &cache, &fp_cfg).unwrap();
    assert_eq!(outcome, CacheOutcome::Miss);
    assert_eq!(r.degradation, Degradation::CardFree);
    assert!(cache.is_empty());
    assert_eq!(cache.stats().inserts, 0);
}
