//! Estimation-error robustness harness: observed-vs-true regret.
//!
//! The paper optimizes against catalog statistics it takes at face
//! value. Real catalogs are wrong — sampling error, stale histograms,
//! correlated predicates — and the interesting question is not "how good
//! is the plan under the statistics the optimizer saw" but "how good is
//! it under the *truth*". This module measures exactly that gap:
//!
//! 1. optimize against an **observed** catalog (typically a
//!    `Perturbation`-distorted copy of the truth, see `ljqo-workload`);
//! 2. re-price the resulting plan under the **true** catalog — wired
//!    through the plan cache's serving path, so the
//!    [`CacheOutcome::HitRecosted`] re-pricing machinery is exercised
//!    exactly as a long-running service would exercise it when its
//!    statistics drift under a resident entry;
//! 3. solve the true catalog directly with the same configuration (the
//!    perfect-information reference);
//! 4. report **regret** = `max(0, true_cost / reference_cost − 1)` — by
//!    how much estimation error inflated the plan the user actually
//!    runs.
//!
//! A regret of `0` means the error was harmless (the observed-side plan
//! is as good as the perfect-information one); regret `9.0` means the
//! served plan is 10× the cost it needed to be. With an exact observed
//! catalog (q-error 1) the regret is exactly `0` by construction: the
//! cache replay serves bit-identical costs and the reference solve is
//! the same deterministic search.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ljqo_cache::{
    fingerprint, CachedPlan, CachedSegment, FingerprintConfig, PlanCache, PlanCacheConfig,
};
use ljqo_catalog::Query;
use ljqo_cost::{sanitize_cost, CostModel};
use ljqo_plan::Plan;

use crate::cached::{optimize_cached, optimize_cached_parallel, CacheOutcome};
use crate::driver::{assemble_plan, Optimized, OptimizerConfig};
use crate::error::{Degradation, OptError};
use crate::parallel::Parallelism;

/// One observed-vs-true measurement (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct RegretSample {
    /// Cost the optimizer *believed* its plan had, under the observed
    /// (possibly distorted) catalog.
    pub observed_cost: f64,
    /// The same plan re-priced under the true catalog — what the user
    /// actually pays.
    pub true_cost: f64,
    /// Cost of the plan a perfect-information solve finds on the true
    /// catalog with the identical configuration.
    pub reference_cost: f64,
    /// `max(0, true_cost / reference_cost − 1)`; `0` when estimation
    /// error was harmless, `f64::INFINITY` when the served plan could
    /// not be priced at all.
    pub regret: f64,
    /// How far down the fallback ladder the *observed-side* solve had to
    /// go (missing or non-finite statistics degrade before they
    /// mis-estimate).
    pub degradation: Degradation,
    /// How the cache serving path answered when the observed plan was
    /// replayed against the true catalog: [`CacheOutcome::Hit`] when the
    /// stored prices still agree (no material drift),
    /// [`CacheOutcome::HitRecosted`] when the entry was structurally
    /// reusable but re-priced, [`CacheOutcome::Stale`] when it failed
    /// revalidation outright.
    pub replay: CacheOutcome,
}

/// Re-price `plan` under `query`: every segment's order is costed
/// against the live catalog (panic-isolated, `f64::MAX` on a model
/// fault) and the segments are re-assembled with the standard
/// late-cross-product rule. The plan structure is taken as-is; only
/// prices move.
pub fn recost_plan(query: &Query, model: &dyn CostModel, plan: &Plan) -> f64 {
    let segments: Vec<_> = plan
        .segments
        .iter()
        .map(|order| {
            let cost = catch_unwind(AssertUnwindSafe(|| {
                sanitize_cost(model.order_cost(query, order.rels()))
            }))
            .unwrap_or(f64::MAX);
            (order.clone(), cost)
        })
        .collect();
    catch_unwind(AssertUnwindSafe(|| {
        let (_, total, _) = assemble_plan(query, model, segments);
        total
    }))
    .unwrap_or(f64::MAX)
}

/// `max(0, true_cost / reference_cost − 1)` with the degenerate cases
/// pinned down: a plan no worse than the reference has regret `0` even
/// when both are infinite or the reference is zero, and an unpriceable
/// plan against a priceable reference has regret `f64::INFINITY`.
fn regret_of(true_cost: f64, reference_cost: f64) -> f64 {
    if true_cost <= reference_cost {
        return 0.0;
    }
    if !true_cost.is_finite() || true_cost == f64::MAX {
        return f64::INFINITY;
    }
    if reference_cost <= 0.0 {
        return f64::INFINITY;
    }
    (true_cost / reference_cost - 1.0).max(0.0)
}

/// Shared core of [`regret_under`] / [`regret_under_parallel`]:
/// `observed` is the observed-side solve result; `serve` replays a cache
/// entry holding its plan against the true catalog, and `solve` is the
/// perfect-information reference search.
fn regret_impl(
    true_query: &Query,
    observed: &Optimized,
    config: &OptimizerConfig,
    serve: impl FnOnce(&PlanCache, &FingerprintConfig) -> Result<(Optimized, CacheOutcome), OptError>,
    solve: impl FnOnce() -> Result<Optimized, OptError>,
    model: &dyn CostModel,
) -> Result<RegretSample, OptError> {
    // Plant the observed plan as a cache entry under the TRUE query's
    // fingerprint, then ask the serving path to answer the true query.
    // A hit re-validates and re-prices the observed plan under the true
    // catalog — the exact statistics-drift machinery a resident entry
    // sees in production.
    let fp_config = FingerprintConfig::default();
    let fp = fingerprint(true_query, &fp_config);
    let entry = CachedPlan {
        segments: observed
            .plan
            .segments
            .iter()
            .zip(&observed.segment_costs)
            .map(|(order, &cost)| CachedSegment {
                canon_order: fp.canonize_order(order.rels()),
                cost,
            })
            .collect(),
        total_cost: observed.cost,
        producer: config.method.name(),
    };
    let cache = PlanCache::new(PlanCacheConfig::with_entries(2));
    cache.insert(fp.fingerprint().clone(), entry);

    let (served, replay) = serve(&cache, &fp_config)?;
    let (true_cost, reference_cost) = if replay.is_hit() {
        // The served result *is* the observed plan priced under truth;
        // the reference still needs its own perfect-information solve.
        (served.cost, solve()?.cost)
    } else {
        // The entry failed revalidation (unpriceable under truth), so
        // the serving path solved the true query cold — that cold solve
        // is the reference, and the observed plan is priced directly.
        (recost_plan(true_query, model, &observed.plan), served.cost)
    };

    Ok(RegretSample {
        observed_cost: observed.cost,
        true_cost,
        reference_cost,
        regret: regret_of(true_cost, reference_cost),
        degradation: observed.degradation,
        replay,
    })
}

/// Optimize `observed_query`, replay the plan against `true_query`, and
/// measure the regret (see the module docs for the full protocol). The
/// two queries must be structurally identical — same relations in the
/// same order, same join edges — differing only in statistics; this is
/// exactly what a `Perturbation` produces.
///
/// Errors propagate from either solve (an invalid catalog on either
/// side, or a query no rung of the fallback ladder could plan).
pub fn regret_under(
    true_query: &Query,
    observed_query: &Query,
    model: &dyn CostModel,
    config: &OptimizerConfig,
) -> Result<RegretSample, OptError> {
    let observed = crate::try_optimize(observed_query, model, config)?;
    regret_impl(
        true_query,
        &observed,
        config,
        |cache, fpc| optimize_cached(true_query, model, config, cache, fpc),
        || crate::try_optimize(true_query, model, config),
        model,
    )
}

/// [`regret_under`] with both the observed-side and the reference solve
/// running under `parallelism` — pass
/// [`Parallelism::robust_portfolio`] to measure how much the
/// cardinality-free structural backstop buys under estimation error.
pub fn regret_under_parallel(
    true_query: &Query,
    observed_query: &Query,
    model: &(dyn CostModel + Sync),
    config: &OptimizerConfig,
    parallelism: &Parallelism,
) -> Result<RegretSample, OptError> {
    let observed = crate::try_optimize_parallel(observed_query, model, config, parallelism)?;
    regret_impl(
        true_query,
        &observed,
        config,
        |cache, fpc| optimize_cached_parallel(true_query, model, config, parallelism, cache, fpc),
        || crate::try_optimize_parallel(true_query, model, config, parallelism),
        model,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::Method;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;

    fn chain(selectivities: [f64; 3]) -> Query {
        QueryBuilder::new()
            .relation("a", 5_000)
            .relation("b", 40)
            .relation("c", 900)
            .relation("d", 77)
            .join("a", "b", selectivities[0])
            .join("b", "c", selectivities[1])
            .join("c", "d", selectivities[2])
            .build()
            .unwrap()
    }

    #[test]
    fn identical_catalogs_have_exactly_zero_regret() {
        let truth = chain([0.01, 0.002, 0.05]);
        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Ii).with_seed(3);
        let s = regret_under(&truth, &truth.clone(), &model, &config).unwrap();
        assert_eq!(s.regret, 0.0);
        assert_eq!(s.observed_cost, s.true_cost);
        assert_eq!(s.true_cost, s.reference_cost);
        // The stored prices agree bit-for-bit, so the replay is a plain
        // hit, not a re-cost.
        assert_eq!(s.replay, CacheOutcome::Hit);
        assert_eq!(s.degradation, Degradation::None);
    }

    #[test]
    fn distorted_catalog_triggers_the_recosting_path() {
        let truth = chain([0.01, 0.002, 0.05]);
        // Same structure, very different statistics: the optimizer sees
        // this catalog, the user pays the true one.
        let observed = chain([0.9, 0.9, 0.0001]);
        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Ii).with_seed(3);
        let s = regret_under(&truth, &observed, &model, &config).unwrap();
        // Structure is reusable, prices are not: the serving path must
        // take the HitRecosted branch.
        assert_eq!(s.replay, CacheOutcome::HitRecosted);
        assert!(s.regret >= 0.0);
        assert!(s.regret.is_finite());
        assert!(s.true_cost.is_finite());
        assert!(s.reference_cost.is_finite());
    }

    #[test]
    fn parallel_variant_agrees_on_the_zero_regret_case() {
        let truth = chain([0.01, 0.002, 0.05]);
        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Ii).with_seed(9);
        let s = regret_under_parallel(
            &truth,
            &truth.clone(),
            &model,
            &config,
            &Parallelism::robust_portfolio(3),
        )
        .unwrap();
        assert_eq!(s.regret, 0.0);
        assert_eq!(s.replay, CacheOutcome::Hit);
    }

    #[test]
    fn recost_plan_matches_a_direct_solve_on_the_same_catalog() {
        let truth = chain([0.01, 0.002, 0.05]);
        let model = MemoryCostModel::default();
        let config = OptimizerConfig::new(Method::Agi).with_seed(1);
        let r = crate::try_optimize(&truth, &model, &config).unwrap();
        let repriced = recost_plan(&truth, &model, &r.plan);
        assert_eq!(repriced, r.cost);
    }

    #[test]
    fn regret_of_pins_the_degenerate_cases() {
        assert_eq!(regret_of(10.0, 10.0), 0.0);
        assert_eq!(regret_of(5.0, 10.0), 0.0);
        assert_eq!(regret_of(20.0, 10.0), 1.0);
        assert_eq!(regret_of(f64::MAX, f64::MAX), 0.0);
        assert_eq!(regret_of(f64::MAX, 10.0), f64::INFINITY);
        assert_eq!(regret_of(10.0, 0.0), f64::INFINITY);
    }
}
