//! Iterative improvement (paper Figure 1; SG88).
//!
//! One *run* starts from a valid state and repeatedly samples a random
//! adjacent state, moving there whenever it is cheaper, until a local
//! minimum is reached. Because the neighborhood is too large to enumerate
//! at `N = 100`, a state is *declared* a local minimum after a configurable
//! number of consecutive non-improving sampled moves (SG88's sampling
//! criterion). The surrounding method repeats runs from fresh start states
//! and keeps the best local minimum — which the budgeted
//! [`Evaluator`](ljqo_cost::Evaluator) tracks automatically, since within a
//! run the accepted states decrease monotonically.

use rand::Rng;

use ljqo_catalog::RelId;
use ljqo_cost::Evaluator;
use ljqo_plan::{random_valid_order, JoinOrder, MoveGenerator, MoveSet};

use crate::movepath::MovePath;

/// Iterative improvement parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeImprovement {
    /// Move-set composition used to sample adjacent states.
    pub move_set: MoveSet,
    /// Local-minimum declaration threshold, as a fraction of `n²`: a run
    /// ends after `max(32, fail_factor·n²)` consecutive failed moves.
    /// Larger values descend deeper but finish fewer runs per budget.
    pub fail_factor: f64,
    /// Escape hatch: force from-scratch evaluation of every candidate
    /// instead of the incremental (delta) path. The two agree to within
    /// floating-point re-association noise (asserted in debug builds);
    /// this flag exists for A/B measurement and for distrusting the
    /// delta path in the field. Models with
    /// [`supports_incremental`](ljqo_cost::CostModel::supports_incremental)
    /// `() == false` always take the full path regardless.
    pub full_eval: bool,
    /// Filter move proposals with the compiled windowed bitset checker
    /// ([`MoveGenerator::with_compiled`]) instead of full validity scans.
    /// The two filters accept exactly the same proposals (asserted in
    /// debug builds and by the differential property suite), so this flag
    /// changes throughput only; it exists for A/B measurement.
    pub compiled_moves: bool,
}

impl Default for IterativeImprovement {
    fn default() -> Self {
        IterativeImprovement {
            move_set: MoveSet::default(),
            fail_factor: 0.25,
            full_eval: false,
            compiled_moves: true,
        }
    }
}

impl IterativeImprovement {
    /// Consecutive-failure threshold for an `n`-relation component.
    pub fn fail_limit(&self, n: usize) -> u64 {
        let by_factor = (self.fail_factor * (n * n) as f64) as u64;
        by_factor.max(32)
    }

    /// One greedy descent from (and mutating) `order`. Returns the cost of
    /// the local minimum reached (or of the last state when the budget ran
    /// out first).
    ///
    /// Candidates are costed through the incremental (delta) path unless
    /// [`IterativeImprovement::full_eval`] is set or the model opts out;
    /// budget charges are identical either way (one unit per candidate).
    pub fn descend<R: Rng + ?Sized>(
        &self,
        ev: &mut Evaluator<'_>,
        gen: &mut MoveGenerator,
        order: &mut JoinOrder,
        rng: &mut R,
    ) -> f64 {
        // The caller hands us an arbitrary start state; any windowed
        // validity cache inside the generator refers to the previous one.
        gen.reset();
        let start = std::mem::replace(order, JoinOrder::new(Vec::new()));
        let (mut path, mut current) = MovePath::begin(ev, start, self.full_eval);
        let fail_limit = self.fail_limit(path.order().len());
        let mut fails = 0u64;
        let graph = ev.query().graph();
        while fails < fail_limit && !ev.exhausted() {
            let Some((mv, attempts)) = gen.propose_counted(graph, path.order_mut(), rng) else {
                break; // no perturbable neighborhood (tiny component)
            };
            // Rejected proposals each performed an O(N) validity check;
            // charge them like the paper's wall clock would.
            ev.charge(u64::from(attempts) - 1);
            let candidate = path.cost_applied(ev, &mv);
            if candidate < current {
                path.accept();
                current = candidate;
                fails = 0;
            } else {
                path.reject(&mv);
                // Every sampled perturbation that failed to improve —
                // including the validity-rejected ones — counts toward
                // declaring a local minimum, mirroring the sampled
                // local-minimum test of SG88's wall-clock implementation.
                fails += u64::from(attempts);
            }
        }
        *order = path.into_order();
        current
    }

    /// The full II method: repeated descents from random valid start
    /// states until the budget is exhausted. The best local minimum is
    /// tracked by the evaluator.
    pub fn run<R: Rng + ?Sized>(&self, ev: &mut Evaluator<'_>, component: &[RelId], rng: &mut R) {
        let mut gen = if self.compiled_moves {
            MoveGenerator::with_compiled(ev.compiled().clone(), self.move_set)
        } else {
            MoveGenerator::new(ev.query().n_relations(), self.move_set)
        };
        while !ev.exhausted() {
            let mut order = random_valid_order(ev.query().graph(), component, rng);
            self.descend(ev, &mut gen, &mut order, rng);
            if component.len() < 3 {
                // Nothing more to explore: at most two states exist.
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::{Query, QueryBuilder};
    use ljqo_cost::MemoryCostModel;
    use ljqo_plan::validity::is_valid;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .relation("f", 9)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("e", "f", 0.2)
            .build()
            .unwrap()
    }

    #[test]
    fn descend_is_monotone() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::new(&q, &model);
        let mut rng = SmallRng::seed_from_u64(5);
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut order = random_valid_order(q.graph(), &comp, &mut rng);
        let start_cost = ev.cost_uncharged(&order);
        let ii = IterativeImprovement::default();
        let mut gen = MoveGenerator::new(q.n_relations(), ii.move_set);
        let end_cost = ii.descend(&mut ev, &mut gen, &mut order, &mut rng);
        assert!(end_cost <= start_cost);
        assert!(is_valid(q.graph(), order.rels()));
        // The descent's final state is the evaluator's best state.
        assert_eq!(ev.best().unwrap().1, end_cost);
    }

    #[test]
    fn run_respects_budget_and_finds_good_plans() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 3_000);
        let mut rng = SmallRng::seed_from_u64(17);
        let comp: Vec<RelId> = q.rel_ids().collect();
        IterativeImprovement::default().run(&mut ev, &comp, &mut rng);
        assert!(ev.exhausted());
        let (best, cost) = ev.best().unwrap();
        assert_eq!(best.len(), 6);
        assert!(is_valid(q.graph(), best.rels()));
        // Must clearly beat the average random state.
        let mut sum = 0.0;
        for _ in 0..50 {
            let o = random_valid_order(q.graph(), &comp, &mut rng);
            sum += ev.cost_uncharged(&o);
        }
        assert!(cost < sum / 50.0);
    }

    #[test]
    fn fail_limit_scales_with_n() {
        let ii = IterativeImprovement::default();
        assert_eq!(ii.fail_limit(5), 32); // floor
        assert_eq!(ii.fail_limit(50), 625);
    }

    #[test]
    fn tiny_component_terminates() {
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.1)
            .build()
            .unwrap();
        let model = MemoryCostModel::default();
        let mut ev = Evaluator::with_budget(&q, &model, 10_000);
        let mut rng = SmallRng::seed_from_u64(2);
        let comp: Vec<RelId> = q.rel_ids().collect();
        IterativeImprovement::default().run(&mut ev, &comp, &mut rng);
        // Must not spin forever nor necessarily exhaust the budget.
        assert!(ev.best().is_some());
    }
}
