//! Search trajectory tracing.
//!
//! Records the best-so-far cost as a function of budget consumed — the
//! raw material of the paper's quality-vs-time figures, exposed per run
//! so users can plot and debug individual searches. The
//! [`trace_run`] helper wraps any method with a fine-grained checkpoint
//! grid; for coarse per-τ curves the experiment harness uses evaluator
//! snapshots directly.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ljqo_catalog::Query;
use ljqo_cost::{BudgetSchedule, CostModel, Evaluator, TimeLimit};

use crate::methods::{Method, MethodRunner};

/// One point of a search trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Budget units consumed.
    pub units: u64,
    /// Best cost found within that budget.
    pub best_cost: f64,
}

/// A full trajectory of one method on one query.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The method traced.
    pub method: String,
    /// Trajectory points, ascending in units.
    pub points: Vec<TracePoint>,
    /// Final best cost.
    pub final_cost: f64,
    /// Total units consumed.
    pub units_used: u64,
    /// Plan evaluations performed (full and incremental).
    pub n_evals: u64,
    /// Evaluations that went through the incremental (delta) path —
    /// `n_inc_evals / n_evals` is the fraction of the search that ran on
    /// memoized prefix state.
    pub n_inc_evals: u64,
}

impl Trace {
    /// Render as CSV (`units,best_cost` lines with a header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("units,best_cost\n");
        for p in &self.points {
            out.push_str(&format!("{},{}\n", p.units, p.best_cost));
        }
        out
    }
}

/// Run `method` on the (single-component) `query` with up to
/// `resolution` evenly spaced checkpoints up to the time limit,
/// returning the trajectory. When the budget is smaller than the
/// resolution, the grid degrades gracefully to one checkpoint per unit
/// (duplicates and the zero point are dropped) instead of emitting
/// duplicate or zero checkpoints.
///
/// Panics if the query's join graph is disconnected (trace one component
/// at a time).
#[allow(clippy::too_many_arguments)] // a flat tracing entry point; all knobs are orthogonal
pub fn trace_run(
    query: &Query,
    model: &dyn CostModel,
    method: Method,
    runner: &MethodRunner,
    time_limit: TimeLimit,
    kappa: f64,
    resolution: usize,
    seed: u64,
) -> Trace {
    trace_run_scheduled(
        query,
        model,
        method,
        runner,
        time_limit,
        kappa,
        BudgetSchedule::Quadratic,
        resolution,
        seed,
    )
}

/// As [`trace_run`] but with an explicit [`BudgetSchedule`] deciding how
/// the traced budget grows with query size ([`trace_run`] is the
/// quadratic special case).
#[allow(clippy::too_many_arguments)] // a flat tracing entry point; all knobs are orthogonal
pub fn trace_run_scheduled(
    query: &Query,
    model: &dyn CostModel,
    method: Method,
    runner: &MethodRunner,
    time_limit: TimeLimit,
    kappa: f64,
    schedule: BudgetSchedule,
    resolution: usize,
    seed: u64,
) -> Trace {
    let components = query.graph().components();
    assert_eq!(components.len(), 1, "trace_run wants a connected query");
    let component = &components[0];

    let budget = schedule.units(&time_limit, query.n_joins().max(1), kappa);
    let resolution = resolution.max(2) as u64;
    // The multiply is widened to u128: `budget * i` overflows u64 for
    // budgets past `u64::MAX / resolution` (τ ≈ 1e17 at N = 10 already
    // crosses it), which used to scramble the grid into nonsense.
    let mut checkpoints: Vec<u64> = (1..=resolution)
        .map(|i| ((budget as u128 * i as u128) / resolution as u128) as u64)
        .filter(|&units| units > 0)
        .collect();
    // For budgets below the resolution the division floors several grid
    // indices onto the same unit; keep each once.
    checkpoints.dedup();

    let mut ev = Evaluator::with_budget(query, model, budget);
    ev.set_checkpoints(checkpoints);
    let mut rng = SmallRng::seed_from_u64(seed);
    runner.run(method, &mut ev, component, &mut rng);
    let used = ev.used();
    let n_evals = ev.n_evals();
    let n_inc_evals = ev.n_inc_evals();
    let (_, final_cost, snaps) = ev.finish();
    Trace {
        method: method.name().to_string(),
        points: snaps
            .into_iter()
            .map(|s| TracePoint {
                units: s.units,
                best_cost: s.best_cost,
            })
            .collect(),
        final_cost,
        units_used: used,
        n_evals,
        n_inc_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let q = query();
        let model = MemoryCostModel::default();
        let t = trace_run(
            &q,
            &model,
            Method::Ii,
            &MethodRunner::default(),
            TimeLimit::of(3.0),
            5.0,
            32,
            7,
        );
        assert_eq!(t.points.len(), 32);
        assert!(t
            .points
            .windows(2)
            .all(|w| w[1].best_cost <= w[0].best_cost));
        assert_eq!(
            t.points.last().unwrap().best_cost.min(t.final_cost),
            t.final_cost
        );
        assert!(t.points.windows(2).all(|w| w[0].units < w[1].units));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let q = query();
        let model = MemoryCostModel::default();
        let t = trace_run(
            &q,
            &model,
            Method::Agi,
            &MethodRunner::default(),
            TimeLimit::of(1.0),
            5.0,
            8,
            3,
        );
        let csv = t.to_csv();
        assert!(csv.starts_with("units,best_cost\n"));
        assert_eq!(csv.lines().count(), 9);
    }

    #[test]
    fn tiny_budget_grid_has_no_duplicate_or_zero_checkpoints() {
        // Regression: budget 4 at resolution 32 used to produce a grid
        // full of zeros and duplicates (⌊4·i/32⌋ repeats each value 8
        // times); the evaluator then recorded fewer meaningful snapshots
        // than the points it emitted. Now the grid degrades to one
        // checkpoint per unit: {1, 2, 3, 4}.
        let q = query();
        let model = MemoryCostModel::default();
        let t = trace_run(
            &q,
            &model,
            Method::Ii,
            &MethodRunner::default(),
            TimeLimit::of(4.0 / (16.0 * 5.0)), // 4 joins, κ=5 → budget 4
            5.0,
            32,
            7,
        );
        assert!(!t.points.is_empty());
        assert!(t.points.iter().all(|p| p.units > 0));
        assert!(t.points.windows(2).all(|w| w[0].units < w[1].units));
        assert!(t.points.len() <= 4);
    }

    #[test]
    fn huge_budget_grid_does_not_overflow() {
        // Regression: `budget * i` overflowed u64 once budget exceeded
        // u64::MAX / resolution, scrambling the checkpoint grid. τ = 1e17
        // at N = 4, κ = 5 gives a budget of 8e18 — past the overflow line
        // for every i ≥ 3. A frozen (non-restarting) annealer terminates
        // long before such a budget, so the run itself is quick.
        let q = query();
        let model = MemoryCostModel::default();
        let mut runner = MethodRunner::default();
        runner.sa.restart_on_frozen = false;
        let t = trace_run(
            &q,
            &model,
            Method::Sa,
            &runner,
            TimeLimit::of(1e17),
            5.0,
            16,
            11,
        );
        let budget = TimeLimit::of(1e17).units(4, 5.0);
        assert!(budget > u64::MAX / 16, "test premise: would overflow");
        // The grid is strictly ascending and ends exactly at the budget.
        assert!(t.points.windows(2).all(|w| w[0].units < w[1].units));
        assert!(t.final_cost.is_finite());
    }

    #[test]
    fn traces_are_deterministic() {
        let q = query();
        let model = MemoryCostModel::default();
        let mk = || {
            trace_run(
                &q,
                &model,
                Method::Sa,
                &MethodRunner::default(),
                TimeLimit::of(2.0),
                5.0,
                16,
                11,
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.points, b.points);
        assert_eq!(a.final_cost, b.final_cost);
    }
}
