//! Solution-space analysis — the paper's second stated extension.
//!
//! §7: *"The distribution of solution costs in the space of valid
//! solutions is of interest and is being investigated."* This module
//! provides the instruments: random sampling of the valid-plan space,
//! exhaustive local-minimum testing under the swap neighborhood, and
//! descent-based estimation of how many distinct local minima a query
//! has and how deep they are — the quantities §6.4 speculates about
//! ("a large number of local minima, with a small but significant
//! fraction of them being deep").

use rand::Rng;

use ljqo_catalog::{Query, RelId};
use ljqo_cost::CostModel;
use ljqo_plan::validity::is_valid;
use ljqo_plan::{random_valid_order, JoinOrder, Move};

/// Summary statistics of sampled valid-plan costs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceStats {
    /// Number of samples taken.
    pub samples: usize,
    /// Cheapest sampled cost.
    pub min: f64,
    /// Most expensive sampled cost.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Fraction of samples within 2× of the sampled minimum ("good
    /// plans").
    pub good_fraction: f64,
}

/// Sample `n` random valid orders of `component` and summarize their
/// costs. Panics if `n == 0`.
pub fn sample_space<R: Rng + ?Sized>(
    query: &Query,
    model: &dyn CostModel,
    component: &[RelId],
    n: usize,
    rng: &mut R,
) -> SpaceStats {
    assert!(n > 0, "need at least one sample");
    let mut costs: Vec<f64> = (0..n)
        .map(|_| {
            let order = random_valid_order(query.graph(), component, rng);
            model.order_cost(query, order.rels())
        })
        .collect();
    costs.sort_by(f64::total_cmp);
    let min = costs[0];
    let max = *costs.last().unwrap();
    let mean = costs.iter().sum::<f64>() / n as f64;
    let median = costs[n / 2];
    let p90 = costs[(n * 9 / 10).min(n - 1)];
    let good = costs.iter().filter(|&&c| c <= min * 2.0).count();
    SpaceStats {
        samples: n,
        min,
        max,
        mean,
        median,
        p90,
        good_fraction: good as f64 / n as f64,
    }
}

/// Whether `order` is a local minimum under the *exhaustive* swap
/// neighborhood: no valid single swap lowers the cost. Exact but
/// O(N² · N) — use on moderate N only.
pub fn is_swap_local_minimum(query: &Query, model: &dyn CostModel, order: &JoinOrder) -> bool {
    let current = model.order_cost(query, order.rels());
    let mut probe = order.clone();
    for mv in Move::all_swaps(order.len()) {
        mv.apply(&mut probe);
        let better = is_valid(query.graph(), probe.rels())
            && model.order_cost(query, probe.rels()) < current;
        mv.undo(&mut probe);
        if better {
            return false;
        }
    }
    true
}

/// Descend greedily under the exhaustive swap neighborhood (steepest
/// descent) to a true swap-local minimum. Returns the minimum's cost.
pub fn steepest_descent(query: &Query, model: &dyn CostModel, order: &mut JoinOrder) -> f64 {
    let mut current = model.order_cost(query, order.rels());
    loop {
        let mut best: Option<(Move, f64)> = None;
        let mut probe = order.clone();
        for mv in Move::all_swaps(order.len()) {
            mv.apply(&mut probe);
            if is_valid(query.graph(), probe.rels()) {
                let c = model.order_cost(query, probe.rels());
                if c < current && best.as_ref().is_none_or(|&(_, bc)| c < bc) {
                    best = Some((mv, c));
                }
            }
            mv.undo(&mut probe);
        }
        match best {
            Some((mv, c)) => {
                mv.apply(order);
                current = c;
            }
            None => return current,
        }
    }
}

/// Local-minima census from repeated steepest descents.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimaStats {
    /// Descents performed.
    pub descents: usize,
    /// Number of *distinct* minima found (distinct cost values up to a
    /// relative tolerance of 1e-9).
    pub distinct_minima: usize,
    /// Cheapest minimum found.
    pub best: f64,
    /// Fraction of descents ending within 10% of the best minimum
    /// ("deep" minima, in the paper's sense).
    pub deep_fraction: f64,
}

/// Run `descents` steepest descents from random valid starts and census
/// the minima reached.
pub fn census_local_minima<R: Rng + ?Sized>(
    query: &Query,
    model: &dyn CostModel,
    component: &[RelId],
    descents: usize,
    rng: &mut R,
) -> MinimaStats {
    assert!(descents > 0);
    let mut minima = Vec::with_capacity(descents);
    for _ in 0..descents {
        let mut order = random_valid_order(query.graph(), component, rng);
        minima.push(steepest_descent(query, model, &mut order));
    }
    minima.sort_by(f64::total_cmp);
    let best = minima[0];
    let mut distinct = 1;
    for w in minima.windows(2) {
        if (w[1] - w[0]).abs() > w[1].abs() * 1e-9 {
            distinct += 1;
        }
    }
    let deep = minima.iter().filter(|&&m| m <= best * 1.1).count();
    MinimaStats {
        descents,
        distinct_minima: distinct,
        best,
        deep_fraction: deep as f64 / descents as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .join("b", "e", 0.03)
            .build()
            .unwrap()
    }

    #[test]
    fn space_stats_are_ordered() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let s = sample_space(&q, &model, &comp, 200, &mut rng);
        assert!(s.min <= s.median && s.median <= s.p90 && s.p90 <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!((0.0..=1.0).contains(&s.good_fraction));
        assert!(s.good_fraction > 0.0, "the minimum itself is good");
    }

    #[test]
    fn steepest_descent_reaches_swap_local_minimum() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..5 {
            let mut order = random_valid_order(q.graph(), &comp, &mut rng);
            let before = model.order_cost(&q, order.rels());
            let c = steepest_descent(&q, &model, &mut order);
            assert!(c <= before);
            assert!(is_swap_local_minimum(&q, &model, &order));
            assert!(is_valid(q.graph(), order.rels()));
        }
    }

    #[test]
    fn global_optimum_is_a_local_minimum() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (opt_order, _) = crate::dp::optimal_order_dp(&q, &comp, &model).unwrap();
        assert!(is_swap_local_minimum(&q, &model, &opt_order));
    }

    #[test]
    fn census_counts_minima() {
        let q = query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let mut rng = SmallRng::seed_from_u64(7);
        let census = census_local_minima(&q, &model, &comp, 20, &mut rng);
        assert_eq!(census.descents, 20);
        assert!(census.distinct_minima >= 1);
        assert!(census.deep_fraction > 0.0 && census.deep_fraction <= 1.0);
        // The census's best minimum cannot beat the DP optimum.
        let (_, opt) = crate::dp::optimal_order_dp(&q, &comp, &model).unwrap();
        assert!(census.best >= opt - opt * 1e-9);
    }
}
