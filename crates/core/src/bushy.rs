//! The bushy join-tree type and its exact dynamic program.
//!
//! §2 of the paper restricts the search to outer linear join trees "based
//! on the assumption that a significant fraction of the join trees with
//! low processing cost is to be found in the space of outer linear join
//! trees. The validation of this assumption is an open problem." This
//! module provides the shared [`BushyTree`] representation (both join
//! operands may be intermediates) and two ways to attack that open
//! problem:
//!
//! * [`optimal_bushy_dp`] — the exact optimum over **all**
//!   cross-product-free bushy trees for small components (`O(3^k)`
//!   submask enumeration, hard-limited to [`BUSHY_MAX_RELATIONS`]), used
//!   as the ground truth the linear DP ([`crate::dp`]) and the bushy
//!   local search are compared against;
//! * the full bushy **local search** lives in [`crate::bushy_search`]: it
//!   runs II/SA-style moves over arena-backed trees
//!   ([`ljqo_plan::TreePlan`]) with path-to-root incremental re-costing,
//!   and scales far past the DP limit.
//!
//! Oversized or disconnected inputs yield typed [`OptError`]s (not
//! panics), so the driver's degradation ladder can route around them; the
//! width convention for [`JoinCtx::outer_rels`] is `output width − 1`
//! everywhere, matching the left-deep walks.

use ljqo_catalog::{Query, RelId};
use ljqo_cost::estimate::clamp_card;
use ljqo_cost::{CostModel, JoinCtx};

use crate::error::OptError;

/// Maximum component size accepted by [`optimal_bushy_dp`].
pub const BUSHY_MAX_RELATIONS: usize = 18;

/// A (possibly bushy) join tree over base relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BushyTree {
    /// A base relation scan.
    Leaf(RelId),
    /// A join of two subtrees (left = outer/probe, right = inner/build).
    Join(Box<BushyTree>, Box<BushyTree>),
}

impl BushyTree {
    /// Build the outer-linear (left-deep) tree for a relation sequence —
    /// the shape that embeds a [`ljqo_plan::JoinOrder`] into the bushy
    /// space.
    ///
    /// Panics on an empty sequence.
    pub fn left_deep(rels: &[RelId]) -> Self {
        let (&first, rest) = rels.split_first().expect("empty join order");
        let mut tree = BushyTree::Leaf(first);
        for &r in rest {
            tree = BushyTree::Join(Box::new(tree), Box::new(BushyTree::Leaf(r)));
        }
        tree
    }

    /// Number of base relations in the tree.
    pub fn n_leaves(&self) -> usize {
        match self {
            BushyTree::Leaf(_) => 1,
            BushyTree::Join(l, r) => l.n_leaves() + r.n_leaves(),
        }
    }

    /// Whether the tree is outer linear (every right operand is a leaf).
    pub fn is_linear(&self) -> bool {
        match self {
            BushyTree::Leaf(_) => true,
            BushyTree::Join(l, r) => matches!(**r, BushyTree::Leaf(_)) && l.is_linear(),
        }
    }

    /// All leaves, left to right.
    pub fn leaves(&self) -> Vec<RelId> {
        match self {
            BushyTree::Leaf(r) => vec![*r],
            BushyTree::Join(l, r) => {
                let mut v = l.leaves();
                v.extend(r.leaves());
                v
            }
        }
    }
}

impl std::fmt::Display for BushyTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BushyTree::Leaf(r) => write!(f, "{r}"),
            BushyTree::Join(l, r) => write!(f, "({l} ⋈ {r})"),
        }
    }
}

/// The optimal cross-product-free **bushy** join tree of `component` and
/// its cost.
///
/// `Ok(None)` for singleton components (nothing to join);
/// [`OptError::ComponentTooLarge`] beyond [`BUSHY_MAX_RELATIONS`] and
/// [`OptError::DisconnectedComponent`] when `component` is not one
/// connected piece of the join graph — typed errors rather than the
/// `assert!`s this function used to carry, so the search-validation path
/// and `ext_bushy` can degrade instead of aborting. The width convention
/// for [`JoinCtx::outer_rels`] is `output width − 1`, consistent with the
/// left-deep walks where the inner always contributes one relation.
pub fn optimal_bushy_dp(
    query: &Query,
    component: &[RelId],
    model: &dyn CostModel,
) -> Result<Option<(BushyTree, f64)>, OptError> {
    let k = component.len();
    if k < 2 {
        return Ok(None);
    }
    if k > BUSHY_MAX_RELATIONS {
        return Err(OptError::ComponentTooLarge {
            n_relations: k,
            limit: BUSHY_MAX_RELATIONS,
        });
    }
    let n_states = 1usize << k;
    let full = n_states - 1;

    // Adjacency bitmasks within the component.
    let mut adj = vec![0u32; k];
    for (i, &ri) in component.iter().enumerate() {
        for (j, &rj) in component.iter().enumerate() {
            if i != j && query.graph().joined(ri, rj) {
                adj[i] |= 1 << j;
            }
        }
    }

    // Connectivity and cardinality per subset. Reject a disconnected
    // input before running the DP at all: no cross-product-free tree
    // covers it, and the caller (which should have split components
    // upstream) needs the typed error, not `f64::INFINITY` artifacts.
    let mut connected = vec![false; n_states];
    let mut card = vec![0.0f64; n_states];
    for mask in 1usize..n_states {
        connected[mask] = is_connected_mask(mask as u32, &adj);
        if connected[mask] {
            card[mask] = subset_cardinality(query, component, mask as u32);
        }
    }
    if !connected[full] {
        return Err(OptError::DisconnectedComponent { n_relations: k });
    }

    // DP over connected subsets: best (cost, split) with split = the
    // outer-side submask (0 for leaves).
    let mut cost = vec![f64::INFINITY; n_states];
    let mut split = vec![0u32; n_states];
    for i in 0..k {
        cost[1 << i] = 0.0;
    }
    for mask in 1usize..n_states {
        if !connected[mask] || (mask & (mask - 1)) == 0 {
            continue; // disconnected or singleton
        }
        let width = mask.count_ones() as usize;
        // Enumerate proper submasks as the outer side.
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            let other = mask & !sub;
            if connected[sub]
                && connected[other]
                && cost[sub].is_finite()
                && cost[other].is_finite()
            {
                let step = model.join_cost(&JoinCtx {
                    outer_card: card[sub],
                    inner_card: card[other],
                    output_card: card[mask],
                    outer_rels: width - 1,
                    is_cross_product: false,
                });
                let total = cost[sub] + cost[other] + step;
                if total < cost[mask] {
                    cost[mask] = total;
                    split[mask] = sub as u32;
                }
            }
            sub = (sub - 1) & mask;
        }
    }

    if !cost[full].is_finite() {
        // Connected, yet no finite-cost tree: a model emitted `INFINITY`
        // or `NaN` for every split. There is no tree to rebuild (`split`
        // was never set), so this degrades like a disconnection.
        return Err(OptError::DisconnectedComponent { n_relations: k });
    }
    Ok(Some((rebuild(component, &split, full as u32), cost[full])))
}

fn rebuild(component: &[RelId], split: &[u32], mask: u32) -> BushyTree {
    if mask & (mask - 1) == 0 {
        return BushyTree::Leaf(component[mask.trailing_zeros() as usize]);
    }
    let outer = split[mask as usize];
    let inner = mask & !outer;
    BushyTree::Join(
        Box::new(rebuild(component, split, outer)),
        Box::new(rebuild(component, split, inner)),
    )
}

fn is_connected_mask(mask: u32, adj: &[u32]) -> bool {
    let start = mask.trailing_zeros();
    let mut seen = 1u32 << start;
    let mut frontier = seen;
    while frontier != 0 {
        let mut next = 0u32;
        let mut f = frontier;
        while f != 0 {
            let i = f.trailing_zeros() as usize;
            next |= adj[i] & mask & !seen;
            f &= f - 1;
        }
        seen |= next;
        frontier = next;
    }
    seen == mask
}

fn subset_cardinality(query: &Query, component: &[RelId], mask: u32) -> f64 {
    let mut c = 1.0f64;
    for (i, &r) in component.iter().enumerate() {
        if mask & (1 << i) != 0 {
            c = clamp_card(c * query.cardinality(r));
        }
    }
    for e in query.graph().edges() {
        let ia = component.iter().position(|&r| r == e.a);
        let ib = component.iter().position(|&r| r == e.b);
        if let (Some(ia), Some(ib)) = (ia, ib) {
            if mask & (1 << ia) != 0 && mask & (1 << ib) != 0 {
                c = clamp_card(c * e.selectivity);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_order_dp;
    use ljqo_catalog::QueryBuilder;
    use ljqo_cost::MemoryCostModel;

    fn chain_query() -> Query {
        QueryBuilder::new()
            .relation("a", 3000)
            .relation("b", 12)
            .relation("c", 700)
            .relation("d", 55)
            .relation("e", 1400)
            .join("a", "b", 0.01)
            .join("b", "c", 0.002)
            .join("c", "d", 0.05)
            .join("d", "e", 0.001)
            .build()
            .unwrap()
    }

    /// Two heavy chains hanging off a hub: the classic shape where a
    /// bushy plan (reduce each chain, then join the small results) beats
    /// every linear plan.
    fn bushy_friendly_query() -> Query {
        QueryBuilder::new()
            .relation("hub", 100_000)
            .relation("l1", 80_000)
            .relation("l2", 50)
            .relation("r1", 90_000)
            .relation("r2", 60)
            .join("hub", "l1", 0.00002)
            .join("l1", "l2", 0.001)
            .join("hub", "r1", 0.00002)
            .join("r1", "r2", 0.001)
            .build()
            .unwrap()
    }

    #[test]
    fn bushy_optimum_never_exceeds_linear_optimum() {
        let model = MemoryCostModel::default();
        for q in [chain_query(), bushy_friendly_query()] {
            let comp: Vec<RelId> = q.rel_ids().collect();
            let (_, linear) = optimal_order_dp(&q, &comp, &model).unwrap();
            let (tree, bushy) = optimal_bushy_dp(&q, &comp, &model).unwrap().unwrap();
            assert!(
                bushy <= linear * (1.0 + 1e-12),
                "bushy {bushy} > linear {linear}"
            );
            assert_eq!(tree.n_leaves(), comp.len());
            // Every leaf appears exactly once.
            let mut leaves = tree.leaves();
            leaves.sort_unstable();
            let mut expect = comp.clone();
            expect.sort_unstable();
            assert_eq!(leaves, expect);
        }
    }

    #[test]
    fn linear_trees_are_a_special_case() {
        // When the bushy optimum IS linear, costs agree exactly with the
        // linear DP (same recurrences, same width convention).
        let q = chain_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (tree, bushy) = optimal_bushy_dp(&q, &comp, &model).unwrap().unwrap();
        let (_, linear) = optimal_order_dp(&q, &comp, &model).unwrap();
        if tree.is_linear() {
            assert!((bushy - linear).abs() <= linear * 1e-12);
        } else {
            assert!(bushy < linear);
        }
    }

    #[test]
    fn bushy_beats_linear_on_two_heavy_chains() {
        let q = bushy_friendly_query();
        let model = MemoryCostModel::default();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let (_, linear) = optimal_order_dp(&q, &comp, &model).unwrap();
        let (tree, bushy) = optimal_bushy_dp(&q, &comp, &model).unwrap().unwrap();
        assert!(
            !tree.is_linear() && bushy < linear,
            "expected a strictly better bushy plan, got {tree} at {bushy} vs {linear}"
        );
    }

    #[test]
    fn display_and_shape_helpers() {
        let t = BushyTree::Join(
            Box::new(BushyTree::Join(
                Box::new(BushyTree::Leaf(RelId(0))),
                Box::new(BushyTree::Leaf(RelId(1))),
            )),
            Box::new(BushyTree::Join(
                Box::new(BushyTree::Leaf(RelId(2))),
                Box::new(BushyTree::Leaf(RelId(3))),
            )),
        );
        assert_eq!(t.to_string(), "((R0 ⋈ R1) ⋈ (R2 ⋈ R3))");
        assert_eq!(t.n_leaves(), 4);
        assert!(!t.is_linear());
        let linear = BushyTree::Join(
            Box::new(BushyTree::Join(
                Box::new(BushyTree::Leaf(RelId(0))),
                Box::new(BushyTree::Leaf(RelId(1))),
            )),
            Box::new(BushyTree::Leaf(RelId(2))),
        );
        assert!(linear.is_linear());
    }

    #[test]
    fn singleton_is_none() {
        let q = chain_query();
        let model = MemoryCostModel::default();
        assert!(optimal_bushy_dp(&q, &[RelId(0)], &model).unwrap().is_none());
    }

    #[test]
    fn left_deep_embeds_an_order() {
        let t = BushyTree::left_deep(&[RelId(0), RelId(1), RelId(2)]);
        assert!(t.is_linear());
        assert_eq!(t.to_string(), "((R0 ⋈ R1) ⋈ R2)");
        assert_eq!(t.leaves(), vec![RelId(0), RelId(1), RelId(2)]);
    }

    #[test]
    fn oversized_component_is_a_typed_error() {
        // Regression: this used to `assert!` and abort the process.
        let mut b = QueryBuilder::new();
        let n = BUSHY_MAX_RELATIONS + 1;
        for i in 0..n {
            b = b.relation(format!("r{i}"), 100);
        }
        for i in 1..n {
            b = b.join(&format!("r{}", i - 1), &format!("r{i}"), 0.01);
        }
        let q = b.build().unwrap();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let model = MemoryCostModel::default();
        match optimal_bushy_dp(&q, &comp, &model) {
            Err(OptError::ComponentTooLarge { n_relations, limit }) => {
                assert_eq!(n_relations, n);
                assert_eq!(limit, BUSHY_MAX_RELATIONS);
            }
            other => panic!("expected ComponentTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_component_is_a_typed_error() {
        // Regression: this used to `assert!` (after burning the whole DP).
        let q = QueryBuilder::new()
            .relation("a", 10)
            .relation("b", 20)
            .relation("c", 30)
            .relation("d", 40)
            .join("a", "b", 0.1)
            .join("c", "d", 0.1)
            .build()
            .unwrap();
        let comp: Vec<RelId> = q.rel_ids().collect();
        let model = MemoryCostModel::default();
        match optimal_bushy_dp(&q, &comp, &model) {
            Err(OptError::DisconnectedComponent { n_relations }) => {
                assert_eq!(n_relations, 4);
            }
            other => panic!("expected DisconnectedComponent, got {other:?}"),
        }
    }
}
